#!/usr/bin/env bash
# Chaos CLI gate — invoked by the `chaos` job in
# .github/workflows/ci.yml (extracted from an inline blob so the logic
# is reviewable, shellcheck-able, and runnable locally:
# `bash scripts/chaos_gate.sh`).
#
# A degraded sweep (injected panics + stalls) must exit 0 with a
# survivor CI line; the abort policy must journal the hole, then fail.
set -euo pipefail

cargo build --release -p pv-bench

out=$(./target/release/repro sweep --quick --devices 12 \
  --chaos-seed 3053 --chaos-panics 2 --chaos-stalls 1 --threads 4)
echo "$out" | grep "fleet degraded: 3 device(s) quarantined"
echo "$out" | grep "survivor score:"

# Abort policy must journal the hole, then fail the process.
if ./target/release/repro sweep --quick --devices 12 \
  --chaos-seed 3053 --chaos-panics 2 --chaos-stalls 1 \
  --on-failure abort --threads 4; then
  echo "FAIL: abort policy exited 0"; exit 1
fi

echo "OK: chaos CLI gates passed"
