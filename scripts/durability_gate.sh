#!/usr/bin/env bash
# Durability CLI gate — invoked by the `durability` job in
# .github/workflows/ci.yml (extracted from an inline blob so the logic
# is reviewable, shellcheck-able, and runnable locally:
# `bash scripts/durability_gate.sh`).
#
# Exercises the storage-degradation, fsck, abort-escalation, and
# export-verification paths end-to-end through the repro binary.
set -euo pipefail

cargo build --release -p pv-bench

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Persistent EIO from storage op 6 on: journaling dies mid-sweep, the
# sweep must still complete with exit 0 and say so.
cat > "$workdir/storage-plan.toml" <<'EOF'
[[event]]
kind = "storage-eio-persistent"
at = 6.0
duration = 1.0
EOF
out=$(./target/release/repro sweep --quick --devices 6 --threads 2 \
  --journal "$workdir/degraded.journal" \
  --storage-faults "$workdir/storage-plan.toml" 2>&1)
echo "$out" | grep "storage degraded:"
echo "$out" | grep "fleet verdict: storage-degraded"

# The surviving journal prefix must be clean and fsck must say so.
./target/release/repro fsck "$workdir/degraded.journal"

# Same plan under abort escalation must fail the process.
rm -f "$workdir/abort.journal"
if ./target/release/repro sweep --quick --devices 6 --threads 2 \
  --journal "$workdir/abort.journal" \
  --storage-faults "$workdir/storage-plan.toml" \
  --storage-escalation abort; then
  echo "FAIL: abort escalation exited 0"; exit 1
fi

# Exporter self-check: tamper with an exported file and require
# `repro verify` to fail naming the file and both checksums.
./target/release/repro fig2 --quick --export "$workdir/figs" > /dev/null
./target/release/repro verify "$workdir/figs"
f=$(ls "$workdir"/figs/*.dat | head -1)
printf 'tampered\n' >> "$f"
if ./target/release/repro verify "$workdir/figs"; then
  echo "FAIL: verify accepted a tampered export"; exit 1
fi
# (the verify is expected to exit non-zero; don't let pipefail eat the grep)
out=$(./target/release/repro verify "$workdir/figs" 2>&1 || true)
echo "$out" | grep "checksum mismatch" | grep "expected"

echo "OK: durability CLI gates passed"
