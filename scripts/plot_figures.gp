# Plots the .dat files written by `repro <fig> --export <dir>`.
#
#   gnuplot -e "datadir='figs'" scripts/plot_figures.gp
#
# Produces PNGs next to the data. Each block is skipped gracefully if its
# input file is missing.

if (!exists("datadir")) datadir = "figs"
set terminal pngcairo size 900,600 font "sans,11"
set grid

# --- Fig 4 / Fig 5: ACCUBENCH timelines ---------------------------------
do for [f in "fig4 fig5"] {
    infile = sprintf("%s/%s.dat", datadir, f)
    if (system(sprintf("test -f %s && echo 1 || echo 0", infile)) + 0) {
        set output sprintf("%s/%s.png", datadir, f)
        set title sprintf("%s: ACCUBENCH phases (die temperature & frequency)", f)
        set xlabel "time (s)"
        set ylabel "die temperature (°C)"
        set y2label "frequency (MHz)"
        set y2tics
        set ytics nomirror
        plot infile using 1:2 with lines lw 2 title "die °C", \
             infile using 1:5 axes x1y2 with steps lw 1 title "freq MHz"
        unset y2tics
        unset y2label
    }
}

# --- Fig 2: energy vs ambient -------------------------------------------
fig2a = sprintf("%s/fig2_bin-1.dat", datadir)
fig2b = sprintf("%s/fig2_bin-3.dat", datadir)
if (system(sprintf("test -f %s && echo 1 || echo 0", fig2a)) + 0) {
    set output sprintf("%s/fig2.png", datadir)
    set title "Fig 2: energy to complete fixed work vs ambient"
    set xlabel "ambient (°C)"
    set ylabel "energy (normalized to coolest)"
    plot fig2a using 1:3 with linespoints lw 2 title "bin-1", \
         fig2b using 1:3 with linespoints lw 2 title "bin-3"
}

# --- Fig 6-9: normalized study bars --------------------------------------
do for [f in "fig6 fig7 fig8 fig9"] {
    infile = sprintf("%s/%s.dat", datadir, f)
    if (system(sprintf("test -f %s && echo 1 || echo 0", infile)) + 0) {
        set output sprintf("%s/%s.png", datadir, f)
        set title sprintf("%s: normalized performance and energy per device", f)
        set style data histogram
        set style histogram clustered gap 1
        set style fill solid 0.8 border -1
        set ylabel "normalized"
        set yrange [0:*]
        plot infile using 3:xtic(2) title "perf (norm to best)", \
             infile using 5 title "energy (norm to best)"
        set style data points
        set yrange [*:*]
    }
}

# --- Fig 11/12: frequency distributions ----------------------------------
do for [pair in "fig11 fig12"] {
    # Device names differ per pair; glob the freq files.
    files = system(sprintf("ls %s/%s_*_freq.dat 2>/dev/null", datadir, pair))
    if (strlen(files) > 0) {
        set output sprintf("%s/%s_freq.png", datadir, pair)
        set title sprintf("%s: frequency residency", pair)
        set xlabel "frequency (MHz)"
        set ylabel "fraction of workload time"
        set style fill solid 0.5
        plot for [f in files] f using (($1+$2)/2):4 with boxes title system(sprintf("basename %s .dat", f))
    }
}
