//! # process-variation
//!
//! A full-system reproduction of *"Quantifying Process Variations and Its
//! Impacts on Smartphones"* (ISPASS 2019) as a Rust library suite.
//!
//! The paper measures how manufacturing variation makes seemingly-identical
//! smartphones differ by 5–20 % in performance and energy, using a
//! temperature-stabilized measurement methodology (ACCUBENCH) inside a
//! controlled thermal chamber (THERMABOX). This workspace rebuilds that
//! entire apparatus as a deterministic simulation substrate and reproduces
//! every table and figure of the paper's evaluation:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`pv_units`] | Typed physical quantities (°C, W, J, V, MHz, …) |
//! | [`pv_silicon`] | Die sampling, leakage/dynamic power laws, speed & voltage binning |
//! | [`pv_thermal`] | Lumped RC thermal networks, sensor probes, the THERMABOX chamber |
//! | [`pv_power`] | Monsoon power-monitor and Li-ion battery models, energy meters |
//! | [`pv_workload`] | The π-spigot workload (real, host-runnable) + simulated work accounting |
//! | [`pv_soc`] | Device models: clusters, OPPs, governors, throttling, RBCPR, catalog |
//! | [`accubench`] | The paper's methodology + the experiment suite |
//!
//! # Quickstart
//!
//! ```no_run
//! use process_variation::prelude::*;
//!
//! // A bin-0 (slow, frugal silicon) Nexus 5 in the paper's chamber.
//! let mut device = catalog::nexus5(BinId(0))?;
//! let mut harness = Harness::new(Protocol::unconstrained(), Ambient::paper_chamber()?)?;
//! let session = harness.run_session(&mut device, 5)?;
//! let perf = session.performance_summary()?;
//! println!("{:.1} iterations ± {:.2}% RSD", perf.mean(), perf.rsd_percent());
//! # Ok::<(), accubench::BenchError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `cargo run -p pv-bench --bin
//! repro -- all` for the full paper reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accubench;
pub use pv_faults;
pub use pv_json;
pub use pv_power;
pub use pv_rng;
pub use pv_silicon;
pub use pv_soc;
pub use pv_stats;
pub use pv_thermal;
pub use pv_units;
pub use pv_workload;

/// The most common imports, for examples and downstream experiments.
pub mod prelude {
    pub use accubench::crowd::{
        populate_journaled, populate_resilient, CrowdDatabase, CrowdScore, SweepConfig, SweepReport,
    };
    pub use accubench::experiments::ExperimentConfig;
    pub use accubench::harness::{Ambient, Harness, QualityGates, RetryPolicy};
    pub use accubench::journal::{CancelToken, Journal, Record};
    pub use accubench::protocol::{CooldownTarget, Protocol};
    pub use accubench::session::{Iteration, QuarantinedIteration, Session, Verdict};
    pub use accubench::BenchError;
    pub use pv_faults::{FaultHandle, FaultKind, FaultPlan};
    pub use pv_power::{Battery, EnergyMeter, Monsoon, PowerSupply};
    pub use pv_silicon::binning::BinId;
    pub use pv_silicon::{DieSample, ProcessNode};
    pub use pv_soc::catalog;
    pub use pv_soc::device::{CpuDemand, Device, Dut, FrequencyMode};
    pub use pv_soc::faulty::FaultyDevice;
    pub use pv_stats::Summary;
    pub use pv_thermal::thermabox::{ThermaBox, ThermaBoxConfig};
    pub use pv_units::{Celsius, Joules, MegaHertz, Seconds, Volts, Watts};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_stack() {
        use crate::prelude::*;
        let device = catalog::nexus5(BinId(0)).unwrap();
        assert_eq!(device.spec().model, "Nexus 5");
        let _ = Protocol::unconstrained();
        let _ = Summary::from_slice(&[1.0, 2.0]).unwrap();
    }
}
