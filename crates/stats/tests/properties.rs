//! Property-based tests for pv-stats invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use pv_stats::dist::{normal_cdf, normal_quantile};
use pv_stats::histogram::Histogram;
use pv_stats::kmeans::kmeans_1d;
use pv_stats::{normalize_to_max, normalize_to_min, quantile, Summary};

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    vec(-1.0e6..1.0e6f64, 1..60)
}

fn positive_vec() -> impl Strategy<Value = Vec<f64>> {
    vec(1.0e-3..1.0e6f64, 1..60)
}

proptest! {
    #[test]
    fn summary_mean_is_bounded_by_min_max(values in finite_vec()) {
        let s = Summary::from_slice(&values).unwrap();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.std() >= 0.0);
        prop_assert_eq!(s.n(), values.len());
    }

    #[test]
    fn summary_is_translation_covariant(values in finite_vec(), shift in -1.0e3..1.0e3f64) {
        let a = Summary::from_slice(&values).unwrap();
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let b = Summary::from_slice(&shifted).unwrap();
        let scale = a.mean().abs().max(1.0);
        prop_assert!((b.mean() - a.mean() - shift).abs() < 1e-8 * scale);
        // Std is translation-invariant.
        prop_assert!((b.std() - a.std()).abs() < 1e-6 * a.std().max(1.0));
    }

    #[test]
    fn normalize_to_max_tops_at_one(values in positive_vec()) {
        let n = normalize_to_max(&values).unwrap();
        let top = n.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((top - 1.0).abs() < 1e-12);
        prop_assert!(n.iter().all(|&v| v <= 1.0 + 1e-12 && v > 0.0));
    }

    #[test]
    fn normalize_to_min_bottoms_at_one(values in positive_vec()) {
        let n = normalize_to_min(&values).unwrap();
        let bottom = n.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((bottom - 1.0).abs() < 1e-12);
        prop_assert!(n.iter().all(|&v| v >= 1.0 - 1e-12));
    }

    #[test]
    fn quantile_is_monotone(values in finite_vec(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001..0.999f64) {
        let x = normal_quantile(p).unwrap();
        prop_assert!((normal_cdf(x) - p).abs() < 5e-6);
    }

    #[test]
    fn normal_quantile_is_odd(p in 0.001..0.5f64) {
        let a = normal_quantile(p).unwrap();
        let b = normal_quantile(1.0 - p).unwrap();
        prop_assert!((a + b).abs() < 1e-6);
    }

    #[test]
    fn histogram_conserves_weight(values in finite_vec()) {
        let mut h = Histogram::new(-100.0, 100.0, 16).unwrap();
        for &v in &values {
            h.add(v);
        }
        let binned: f64 = h.counts().iter().sum();
        let total = binned + h.underflow() + h.overflow();
        prop_assert!((total - values.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn histogram_mean_matches_summary(values in vec(-99.0..99.0f64, 1..60)) {
        let mut h = Histogram::new(-100.0, 100.0, 8).unwrap();
        h.extend(values.iter().copied());
        let s = Summary::from_slice(&values).unwrap();
        prop_assert!((h.mean().unwrap() - s.mean()).abs() < 1e-9 * s.mean().abs().max(1.0));
    }

    #[test]
    fn kmeans_assignments_in_range(values in vec(-10.0..10.0f64, 4..40), k in 1usize..4) {
        let r = kmeans_1d(&values, k, 50, 42).unwrap();
        prop_assert_eq!(r.assignments.len(), values.len());
        prop_assert!(r.assignments.iter().all(|&a| a < k));
        prop_assert!(r.inertia >= 0.0);
        // Centroids sorted ascending by construction.
        for w in r.centroids.windows(2) {
            prop_assert!(w[0][0] <= w[1][0] + 1e-12);
        }
    }

    #[test]
    fn kmeans_more_clusters_never_increase_inertia(values in vec(-10.0..10.0f64, 6..40)) {
        let one = kmeans_1d(&values, 1, 100, 9).unwrap();
        let three = kmeans_1d(&values, 3, 100, 9).unwrap();
        // k-means++ with Lloyd won't always find the global optimum, but
        // 3 clusters should never do *worse* than the single-cluster optimum
        // by more than floating noise.
        prop_assert!(three.inertia <= one.inertia + 1e-9);
    }
}
