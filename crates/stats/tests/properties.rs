//! Property-style tests for pv-stats invariants, swept over seeded random
//! samples (deterministic across runs).

use pv_rng::{Rng, SeedableRng, StdRng};
use pv_stats::dist::{normal_cdf, normal_quantile};
use pv_stats::histogram::Histogram;
use pv_stats::kmeans::kmeans_1d;
use pv_stats::{normalize_to_max, normalize_to_min, quantile, Summary};

const CASES: usize = 200;

fn vec_in(rng: &mut StdRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

fn finite_vec(rng: &mut StdRng) -> Vec<f64> {
    vec_in(rng, -1.0e6, 1.0e6, 1, 60)
}

fn positive_vec(rng: &mut StdRng) -> Vec<f64> {
    vec_in(rng, 1.0e-3, 1.0e6, 1, 60)
}

#[test]
fn summary_mean_is_bounded_by_min_max() {
    let mut rng = StdRng::seed_from_u64(401);
    for _ in 0..CASES {
        let values = finite_vec(&mut rng);
        let s = Summary::from_slice(&values).unwrap();
        assert!(s.min() <= s.mean() + 1e-9);
        assert!(s.mean() <= s.max() + 1e-9);
        assert!(s.std() >= 0.0);
        assert_eq!(s.n(), values.len());
    }
}

#[test]
fn summary_is_translation_covariant() {
    let mut rng = StdRng::seed_from_u64(402);
    for _ in 0..CASES {
        let values = finite_vec(&mut rng);
        let shift = rng.gen_range(-1.0e3..1.0e3);
        let a = Summary::from_slice(&values).unwrap();
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let b = Summary::from_slice(&shifted).unwrap();
        let scale = a.mean().abs().max(1.0);
        assert!((b.mean() - a.mean() - shift).abs() < 1e-8 * scale);
        // Std is translation-invariant.
        assert!((b.std() - a.std()).abs() < 1e-6 * a.std().max(1.0));
    }
}

#[test]
fn normalize_to_max_tops_at_one() {
    let mut rng = StdRng::seed_from_u64(403);
    for _ in 0..CASES {
        let values = positive_vec(&mut rng);
        let n = normalize_to_max(&values).unwrap();
        let top = n.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((top - 1.0).abs() < 1e-12);
        assert!(n.iter().all(|&v| v <= 1.0 + 1e-12 && v > 0.0));
    }
}

#[test]
fn normalize_to_min_bottoms_at_one() {
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..CASES {
        let values = positive_vec(&mut rng);
        let n = normalize_to_min(&values).unwrap();
        let bottom = n.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((bottom - 1.0).abs() < 1e-12);
        assert!(n.iter().all(|&v| v >= 1.0 - 1e-12));
    }
}

#[test]
fn quantile_is_monotone() {
    let mut rng = StdRng::seed_from_u64(405);
    for _ in 0..CASES {
        let values = finite_vec(&mut rng);
        let q1 = rng.gen_range(0.0..1.0);
        let q2 = rng.gen_range(0.0..1.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        assert!(a <= b + 1e-9);
    }
}

#[test]
fn normal_quantile_inverts_cdf() {
    let mut rng = StdRng::seed_from_u64(406);
    for _ in 0..CASES {
        let p = rng.gen_range(0.001..0.999);
        let x = normal_quantile(p).unwrap();
        assert!((normal_cdf(x) - p).abs() < 5e-6);
    }
}

#[test]
fn normal_quantile_is_odd() {
    let mut rng = StdRng::seed_from_u64(407);
    for _ in 0..CASES {
        let p = rng.gen_range(0.001..0.5);
        let a = normal_quantile(p).unwrap();
        let b = normal_quantile(1.0 - p).unwrap();
        assert!((a + b).abs() < 1e-6);
    }
}

#[test]
fn histogram_conserves_weight() {
    let mut rng = StdRng::seed_from_u64(408);
    for _ in 0..CASES {
        let values = finite_vec(&mut rng);
        let mut h = Histogram::new(-100.0, 100.0, 16).unwrap();
        for &v in &values {
            h.add(v);
        }
        let binned: f64 = h.counts().iter().sum();
        let total = binned + h.underflow() + h.overflow();
        assert!((total - values.len() as f64).abs() < 1e-9);
    }
}

#[test]
fn histogram_mean_matches_summary() {
    let mut rng = StdRng::seed_from_u64(409);
    for _ in 0..CASES {
        let values = vec_in(&mut rng, -99.0, 99.0, 1, 60);
        let mut h = Histogram::new(-100.0, 100.0, 8).unwrap();
        h.extend(values.iter().copied());
        let s = Summary::from_slice(&values).unwrap();
        assert!((h.mean().unwrap() - s.mean()).abs() < 1e-9 * s.mean().abs().max(1.0));
    }
}

#[test]
fn kmeans_assignments_in_range() {
    let mut rng = StdRng::seed_from_u64(410);
    for _ in 0..CASES {
        let values = vec_in(&mut rng, -10.0, 10.0, 4, 40);
        let k = rng.gen_range(1..4usize);
        let r = kmeans_1d(&values, k, 50, 42).unwrap();
        assert_eq!(r.assignments.len(), values.len());
        assert!(r.assignments.iter().all(|&a| a < k));
        assert!(r.inertia >= 0.0);
        // Centroids sorted ascending by construction.
        for w in r.centroids.windows(2) {
            assert!(w[0][0] <= w[1][0] + 1e-12);
        }
    }
}

#[test]
fn kmeans_more_clusters_never_increase_inertia() {
    let mut rng = StdRng::seed_from_u64(411);
    for _ in 0..CASES {
        let values = vec_in(&mut rng, -10.0, 10.0, 6, 40);
        let one = kmeans_1d(&values, 1, 100, 9).unwrap();
        let three = kmeans_1d(&values, 3, 100, 9).unwrap();
        // k-means++ with Lloyd won't always find the global optimum, but
        // 3 clusters should never do *worse* than the single-cluster optimum
        // by more than floating noise.
        assert!(three.inertia <= one.inertia + 1e-9);
    }
}
