//! Fixed-bin histograms.
//!
//! Figures 11 and 12 of the paper show the *distribution* of observed CPU
//! frequencies and temperatures over the course of an experiment iteration.
//! [`Histogram`] accumulates those time series into bins; the optional
//! per-sample weight supports time-weighted histograms (weight = sample
//! interval), which is what "time spent at temperature" means.

use crate::StatsError;
use core::fmt;

/// A histogram over a fixed, uniform set of bins spanning `[lo, hi)`.
///
/// Samples below `lo` land in an underflow counter and samples at or above
/// `hi` in an overflow counter, so no observation is ever silently dropped.
///
/// # Examples
///
/// ```
/// use pv_stats::histogram::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.5);
/// assert_eq!(h.counts()[0], 1.0);
/// assert_eq!(h.counts()[4], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    underflow: f64,
    overflow: f64,
    total_weight: f64,
    weighted_sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0`, `lo >= hi`,
    /// or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("zero bins"));
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::NonFiniteValue);
        }
        if lo >= hi {
            return Err(StatsError::InvalidParameter("lo >= hi"));
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
            total_weight: 0.0,
            weighted_sum: 0.0,
        })
    }

    /// Adds a sample with weight 1.
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Adds a sample with an explicit weight (e.g. the sampling interval for
    /// time-weighted distributions). Non-finite samples and non-positive
    /// weights are ignored.
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || !weight.is_finite() || weight <= 0.0 {
            return;
        }
        self.total_weight += weight;
        self.weighted_sum += value * weight;
        if value < self.lo {
            self.underflow += weight;
        } else if value >= self.hi {
            self.overflow += weight;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Guard the upper edge against floating rounding.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += weight;
        }
    }

    /// Extends the histogram from an iterator of unweighted samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }

    /// Merges another histogram over the *same* bin layout into this one.
    ///
    /// Bin counts are sums of unit (or sample-interval) weights, so for
    /// unweighted use the merged counts are exact regardless of merge
    /// order; `weighted_sum` is a float accumulation and is only
    /// order-deterministic for a fixed merge order.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when the bin layouts
    /// (bounds or bin count) differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), StatsError> {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return Err(StatsError::InvalidParameter("histogram layout mismatch"));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total_weight += other.total_weight;
        self.weighted_sum += other.weighted_sum;
        Ok(())
    }

    /// Per-bin accumulated weights.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Weight accumulated below the range.
    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    /// Weight accumulated at or above the range.
    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    /// Total accumulated weight, including under/overflow.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Weighted mean of all samples (including those out of range).
    /// Returns `None` if nothing has been added.
    pub fn mean(&self) -> Option<f64> {
        if self.total_weight > 0.0 {
            Some(self.weighted_sum / self.total_weight)
        } else {
            None
        }
    }

    /// Lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edge(&self, i: usize) -> f64 {
        assert!(i <= self.counts.len(), "bin index out of range");
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Fraction of total weight at or above `threshold`.
    ///
    /// This answers the Fig 11 question "how much time did the device spend
    /// at high temperature?". Returns 0 when the histogram is empty.
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let mut acc = self.overflow;
        for (i, &c) in self.counts.iter().enumerate() {
            // A bin contributes if its lower edge is at or above the threshold;
            // the bin containing the threshold contributes proportionally.
            let lo = self.bin_edge(i);
            let hi = self.bin_edge(i + 1);
            if lo >= threshold {
                acc += c;
            } else if hi > threshold {
                acc += c * (hi - threshold) / (hi - lo);
            }
        }
        if threshold <= self.lo {
            acc += self.underflow.min(0.0); // underflow is below lo, never above.
        }
        acc / self.total_weight
    }

    /// Normalized bin fractions (each bin's weight over total in-range weight).
    /// Returns an all-zero vector when empty.
    pub fn fractions(&self) -> Vec<f64> {
        let in_range: f64 = self.counts.iter().sum();
        if in_range == 0.0 {
            vec![0.0; self.counts.len()]
        } else {
            self.counts.iter().map(|c| c / in_range).collect()
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "histogram [{:.3}, {:.3}) bins={} total_weight={:.3}",
            self.lo,
            self.hi,
            self.counts.len(),
            self.total_weight
        )?;
        let max = self.counts.iter().copied().fold(0.0f64, f64::max);
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = if max > 0.0 {
                ((c / max) * 40.0).round() as usize
            } else {
                0
            };
            writeln!(
                f,
                "  [{:>9.2}, {:>9.2}) {:>10.2} {}",
                self.bin_edge(i),
                self.bin_edge(i + 1),
                c,
                "#".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

pv_json::impl_to_json!(Histogram {
    lo,
    hi,
    counts,
    underflow,
    overflow,
    total_weight,
    weighted_sum
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn samples_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(99.999);
        assert_eq!(h.counts()[0], 2.0);
        assert_eq!(h.counts()[1], 1.0);
        assert_eq!(h.counts()[9], 1.0);
    }

    #[test]
    fn out_of_range_is_tracked_not_dropped() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(-1.0);
        h.add(10.0);
        h.add(1e9);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 2.0);
        assert_eq!(h.total_weight(), 3.0);
    }

    #[test]
    fn weighted_mean() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add_weighted(2.0, 1.0);
        h.add_weighted(6.0, 3.0);
        assert!((h.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_mean_is_none() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.mean(), None);
        assert_eq!(h.fraction_at_or_above(0.5), 0.0);
    }

    #[test]
    fn invalid_samples_ignored() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(f64::NAN);
        h.add_weighted(5.0, 0.0);
        h.add_weighted(5.0, -1.0);
        h.add_weighted(5.0, f64::NAN);
        assert_eq!(h.total_weight(), 0.0);
    }

    #[test]
    fn fraction_at_or_above_counts_tail() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for v in [5.0, 15.0, 25.0, 85.0, 95.0] {
            h.add(v);
        }
        // Threshold at a bin edge: bins [80,90) and [90,100) → 2/5.
        assert!((h.fraction_at_or_above(80.0) - 0.4).abs() < 1e-12);
        // Everything is ≥ 0.
        assert!((h.fraction_at_or_above(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_interpolates_within_bin() {
        let mut h = Histogram::new(0.0, 10.0, 1).unwrap();
        h.add(5.0); // a single bin [0,10) with one sample
                    // Half the bin lies above 5.0, so proportional attribution gives 0.5.
        assert!((h.fraction_at_or_above(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 4).unwrap();
        h.extend([1.0, 2.0, 3.0, 7.0, 8.0]);
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_bins_and_rejects_layout_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        a.extend([1.0, -2.0]);
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        b.extend([1.5, 99.0]);
        a.merge(&b).unwrap();
        assert_eq!(a.counts()[0], 2.0);
        assert_eq!(a.underflow(), 1.0);
        assert_eq!(a.overflow(), 1.0);
        assert_eq!(a.total_weight(), 4.0);
        let c = Histogram::new(0.0, 10.0, 4).unwrap();
        assert!(a.merge(&c).is_err());
        let d = Histogram::new(0.0, 11.0, 5).unwrap();
        assert!(a.merge(&d).is_err());
    }

    #[test]
    fn extend_and_edges() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend([0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.counts(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(h.bin_edge(0), 0.0);
        assert_eq!(h.bin_edge(4), 4.0);
        assert_eq!(h.bins(), 4);
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.add(0.5);
        let s = format!("{h}");
        assert!(s.contains('#'));
        assert!(s.contains("bins=2"));
    }
}
