//! Seeded k-means clustering.
//!
//! The paper's future work (§VI) proposes inferring CPU bins from crowd
//! performance data "by clustering the performance data using unstructured
//! learning algorithms". This module implements the standard Lloyd iteration
//! with k-means++ initialisation over points of arbitrary (small, fixed)
//! dimension, fully deterministic given a seed.

use crate::StatsError;
use pv_rng::rngs::StdRng;
use pv_rng::{Rng, SeedableRng};

/// Result of a k-means run: final centroids, per-point assignments, and the
/// total within-cluster sum of squared distances (inertia).
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `k` rows of `dim` values each.
    pub centroids: Vec<Vec<f64>>,
    /// For each input point, the index of its assigned centroid.
    pub assignments: Vec<usize>,
    /// Sum over points of squared distance to the assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed before convergence or cap.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ initialisation.
///
/// `points` must all share the same dimension. The algorithm runs Lloyd
/// iterations until assignments stabilise or `max_iters` is reached.
/// Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] if `points` is empty,
/// [`StatsError::InvalidParameter`] if `k == 0`, `k > points.len()`,
/// dimensions are ragged, or any coordinate is non-finite.
///
/// # Examples
///
/// ```
/// use pv_stats::kmeans::kmeans;
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let r = kmeans(&pts, 2, 100, 42).unwrap();
/// assert_eq!(r.assignments[0], r.assignments[1]);
/// assert_ne!(r.assignments[0], r.assignments[2]);
/// ```
pub fn kmeans(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> Result<KMeansResult, StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if k == 0 {
        return Err(StatsError::InvalidParameter("k must be at least 1"));
    }
    if k > points.len() {
        return Err(StatsError::InvalidParameter("k exceeds number of points"));
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(StatsError::InvalidParameter("zero-dimensional points"));
    }
    for p in points {
        if p.len() != dim {
            return Err(StatsError::InvalidParameter("ragged point dimensions"));
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteValue);
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = kmeans_plus_plus_init(points, k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (c, squared_distance(p, centroid)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
                .map(|(c, _)| c)
                .expect("at least one centroid");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            } else {
                // Re-seed an empty cluster on the point farthest from its centroid.
                let (far_idx, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, squared_distance(p, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .expect("non-empty points");
                centroids[c] = points[far_idx].clone();
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| squared_distance(p, &centroids[a]))
        .sum();

    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn kmeans_plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Convenience wrapper for 1-D data (e.g. clustering per-device performance
/// scores into inferred bins). Returns the result with centroids flattened
/// and **sorted ascending**, with assignments remapped to match.
///
/// # Errors
///
/// Same as [`kmeans`].
pub fn kmeans_1d(
    values: &[f64],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> Result<KMeansResult, StatsError> {
    let points: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
    let mut result = kmeans(&points, k, max_iters, seed)?;
    // Sort centroids ascending and remap assignments so cluster 0 is the
    // slowest bin, mirroring how the paper orders bins.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        result.centroids[a][0]
            .partial_cmp(&result.centroids[b][0])
            .expect("centroids are finite")
    });
    let mut remap = vec![0usize; k];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        remap[old_idx] = new_idx;
    }
    let centroids = order.iter().map(|&i| result.centroids[i].clone()).collect();
    for a in &mut result.assignments {
        *a = remap[*a];
    }
    result.centroids = centroids;
    Ok(result)
}

pv_json::impl_to_json!(KMeansResult {
    centroids,
    assignments,
    inertia,
    iterations
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let pts: Vec<Vec<f64>> = [1.0, 1.1, 0.9, 8.0, 8.1, 7.9]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let r = kmeans(&pts, 2, 100, 7).unwrap();
        let a = r.assignments[0];
        assert!(r.assignments[..3].iter().all(|&x| x == a));
        assert!(r.assignments[3..].iter().all(|&x| x != a));
        assert!(r.inertia < 0.2);
    }

    #[test]
    fn kmeans_1d_orders_centroids() {
        let r = kmeans_1d(&[10.0, 10.2, 5.0, 5.1, 1.0, 1.2], 3, 100, 3).unwrap();
        assert!(r.centroids[0][0] < r.centroids[1][0]);
        assert!(r.centroids[1][0] < r.centroids[2][0]);
        // The slowest values map to cluster 0.
        assert_eq!(r.assignments[4], 0);
        assert_eq!(r.assignments[0], 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i % 7)]).collect();
        let a = kmeans(&pts, 3, 100, 99).unwrap();
        let b = kmeans(&pts, 3, 100, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let r = kmeans(&pts, 3, 50, 1).unwrap();
        assert!(r.inertia < 1e-18);
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(kmeans(&[], 1, 10, 0).is_err());
        assert!(kmeans(&pts, 0, 10, 0).is_err());
        assert!(kmeans(&pts, 3, 10, 0).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, 0).is_err());
        assert!(kmeans(&[vec![f64::NAN]], 1, 10, 0).is_err());
        assert!(kmeans(&[vec![]], 1, 10, 0).is_err());
    }

    #[test]
    fn identical_points_collapse() {
        let pts = vec![vec![4.0]; 10];
        let r = kmeans(&pts, 2, 50, 5).unwrap();
        assert!(r.inertia < 1e-18);
        assert_eq!(r.centroids[0], vec![4.0]);
    }

    #[test]
    fn multidimensional_clustering() {
        let mut pts = Vec::new();
        for i in 0..10 {
            let o = f64::from(i) * 0.01;
            pts.push(vec![0.0 + o, 0.0]);
            pts.push(vec![10.0 + o, 10.0]);
        }
        let r = kmeans(&pts, 2, 100, 11).unwrap();
        let sizes = r.cluster_sizes();
        assert_eq!(sizes, vec![10, 10]);
    }

    #[test]
    fn recovers_paper_style_bins() {
        // Simulated crowd data: three voltage bins whose performance scores
        // cluster around 0.86, 0.93, 1.00 (the Fig 6 spread) with small noise.
        let mut values = Vec::new();
        for i in 0..20 {
            let noise = f64::from(i % 5) * 0.002;
            values.push(0.86 + noise);
            values.push(0.93 + noise);
            values.push(1.00 + noise);
        }
        let r = kmeans_1d(&values, 3, 200, 17).unwrap();
        assert!((r.centroids[0][0] - 0.864).abs() < 0.01);
        assert!((r.centroids[1][0] - 0.934).abs() < 0.01);
        assert!((r.centroids[2][0] - 1.004).abs() < 0.01);
        assert_eq!(r.cluster_sizes(), vec![20, 20, 20]);
    }
}
