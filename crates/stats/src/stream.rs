//! Streaming, mergeable moment accumulators.
//!
//! Million-device sweeps cannot afford to retain every score: the streaming
//! aggregation pipeline folds each device's score into a constant-size
//! [`Moments`] accumulator and merges per-worker partials in a canonical
//! order. The algebra is chosen so that the same fold produces *bitwise*
//! identical results regardless of how the stream was chunked, provided the
//! merge order is fixed:
//!
//! - [`Moments::push`] is defined as `merge` with a singleton accumulator
//!   (`n = 1, mean = x, m2 = 0`). With `other.n == 1`, Chan's parallel merge
//!   formula reduces exactly to Welford's online update, so merging width-1
//!   chunks left-to-right *is* the sequential fold, bit for bit.
//! - [`Moments::merge`] uses Chan et al.'s pairwise update with `self` as
//!   the lower-index block. Callers must merge partials in ascending block
//!   order; the combining step is then deterministic for a fixed chunking.
//!
//! Floating-point addition is not associative, so different chunkings of the
//! same stream agree with each other (and with the sequential fold) only
//! within a small relative error (see the property tests in `pv-core`). The
//! crowd aggregation pipeline therefore fixes the chunk grid *absolutely*
//! (aligned to device index, independent of worker count and batch width),
//! which makes the aggregate bitwise reproducible across thread counts and
//! kill+resume even though it is not bitwise equal to the width-1 fold.

use crate::StatsError;

/// Constant-size running count/mean/M2 accumulator (Welford/Chan).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// An empty accumulator (identity element for [`Moments::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An accumulator holding a single observation.
    pub fn singleton(x: f64) -> Self {
        Self {
            n: 1,
            mean: x,
            m2: 0.0,
        }
    }

    /// Folds one observation in. Defined as `merge(singleton(x))`, which for
    /// a single-element right operand is exactly Welford's update.
    pub fn push(&mut self, x: f64) {
        self.merge(&Self::singleton(x));
    }

    /// Merges `other` into `self` using Chan's parallel update.
    ///
    /// Order contract: `self` must be the lower-index (earlier-in-stream)
    /// block. Merging partials in ascending block order reproduces the exact
    /// operation sequence of the canonical single-writer fold when each
    /// partial was built by sequential [`Moments::push`] calls.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.n += other.n;
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] when nothing has been pushed.
    pub fn mean(&self) -> Result<f64, StatsError> {
        if self.n == 0 {
            return Err(StatsError::EmptySample);
        }
        Ok(self.mean)
    }

    /// Sample variance (n − 1 denominator, matching [`crate::Summary`]).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] with fewer than two observations.
    pub fn sample_variance(&self) -> Result<f64, StatsError> {
        if self.n < 2 {
            return Err(StatsError::EmptySample);
        }
        Ok(self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation (n − 1 denominator).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] with fewer than two observations.
    pub fn sample_std(&self) -> Result<f64, StatsError> {
        Ok(self.sample_variance()?.sqrt())
    }

    /// Relative standard deviation as a percentage of the mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] with fewer than two observations
    /// and [`StatsError::InvalidParameter`] when the mean is zero.
    pub fn rsd_percent(&self) -> Result<f64, StatsError> {
        let std = self.sample_std()?;
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter("zero mean"));
        }
        Ok(std / self.mean.abs() * 100.0)
    }

    /// Standard error of the mean (sample std / √n).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] with fewer than two observations.
    pub fn standard_error(&self) -> Result<f64, StatsError> {
        Ok(self.sample_std()? / (self.n as f64).sqrt())
    }
}

pv_json::impl_to_json!(Moments { n, mean, m2 });

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 40.0 + 17.0 * ((i as f64 * 0.7311).sin() + 1.0))
            .collect()
    }

    #[test]
    fn push_matches_summary() {
        let xs = scores(257);
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        let summary = crate::Summary::from_slice(&xs).unwrap();
        assert!((m.mean().unwrap() - summary.mean()).abs() < 1e-12);
        assert!((m.sample_std().unwrap() - summary.std()).abs() < 1e-12);
        assert!((m.rsd_percent().unwrap() - summary.rsd_percent()).abs() < 1e-10);
        assert_eq!(m.count(), 257);
    }

    fn fold_chunked(xs: &[f64], chunk_width: usize) -> Moments {
        let mut merged = Moments::new();
        for chunk in xs.chunks(chunk_width) {
            let mut part = Moments::new();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        merged
    }

    #[test]
    fn width_one_chunking_is_the_sequential_fold_bitwise() {
        let xs = scores(100);
        let mut seq = Moments::new();
        for &x in &xs {
            seq.push(x);
        }
        assert_eq!(seq, fold_chunked(&xs, 1));
    }

    #[test]
    fn fixed_chunking_is_deterministic_and_near_sequential() {
        let xs = scores(1000);
        let mut seq = Moments::new();
        for &x in &xs {
            seq.push(x);
        }
        for chunk_width in [7, 32, 64, 1000] {
            let a = fold_chunked(&xs, chunk_width);
            // Same chunking → bitwise identical, always.
            assert_eq!(a, fold_chunked(&xs, chunk_width));
            // Different association → tiny relative error only.
            assert_eq!(a.count(), seq.count());
            let rel_mean =
                (a.mean().unwrap() - seq.mean().unwrap()).abs() / seq.mean().unwrap().abs();
            let rel_std = (a.sample_std().unwrap() - seq.sample_std().unwrap()).abs()
                / seq.sample_std().unwrap();
            assert!(rel_mean < 1e-12, "width {chunk_width}: {rel_mean}");
            assert!(rel_std < 1e-12, "width {chunk_width}: {rel_std}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Moments::singleton(3.0);
        m.merge(&Moments::new());
        assert_eq!(m, Moments::singleton(3.0));
        let mut e = Moments::new();
        e.merge(&Moments::singleton(3.0));
        assert_eq!(e, Moments::singleton(3.0));
    }

    #[test]
    fn empty_errors() {
        let m = Moments::new();
        assert_eq!(m.mean(), Err(StatsError::EmptySample));
        assert_eq!(m.sample_std(), Err(StatsError::EmptySample));
        let one = Moments::singleton(1.0);
        assert_eq!(one.sample_variance(), Err(StatsError::EmptySample));
    }

    #[test]
    fn zero_mean_rsd_rejected() {
        let mut m = Moments::new();
        m.push(-1.0);
        m.push(1.0);
        assert!(matches!(
            m.rsd_percent(),
            Err(StatsError::InvalidParameter(_))
        ));
    }
}
