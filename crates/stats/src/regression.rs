//! Ordinary least-squares line fitting.
//!
//! Used for trend analysis in the efficiency experiment (Fig 13): fitting
//! iterations-per-joule against SoC generation index quantifies whether
//! efficiency improves monotonically (it does overall, with the SD-805 dip).

use crate::StatsError;

/// A fitted line `y = slope·x + intercept` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when the fit
    /// explains nothing beyond the mean; can be negative only for forced
    /// fits, which OLS never produces).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a·x + b` by ordinary least squares.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] if the slices are empty,
/// [`StatsError::InvalidParameter`] if they differ in length, have fewer
/// than two points, or all `x` values coincide, and
/// [`StatsError::NonFiniteValue`] on NaN/infinite input.
///
/// # Examples
///
/// ```
/// let fit = pv_stats::regression::linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, StatsError> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter("x and y lengths differ"));
    }
    if x.len() < 2 {
        return Err(StatsError::InvalidParameter("need at least two points"));
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteValue);
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx).powi(2)).sum();
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter("all x values identical"));
    }
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|yi| (yi - my).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(xi, yi)| (yi - (slope * xi + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

pv_json::impl_to_json!(LinearFit {
    slope,
    intercept,
    r_squared
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_data_has_partial_r2() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.1, 1.2, 1.8, 3.3, 3.9, 5.2];
        let f = linear_fit(&x, &y).unwrap();
        assert!(f.r_squared > 0.97 && f.r_squared < 1.0);
        assert!((f.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn flat_data_r2_is_one() {
        // Constant y: model predicts it exactly, define R² = 1.
        let f = linear_fit(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(linear_fit(&[], &[]).is_err());
        assert!(linear_fit(&[1.0], &[1.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_err());
        assert!(linear_fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn negative_slope() {
        let f = linear_fit(&[0.0, 1.0, 2.0], &[10.0, 8.0, 6.0]).unwrap();
        assert!((f.slope + 2.0).abs() < 1e-12);
    }
}
