//! Normal-distribution primitives.
//!
//! The silicon population model draws die quality from a standard normal and
//! needs the inverse CDF to map a *quantile grade* (e.g. "this die is at the
//! 85th percentile of leakiness") to a z-score deterministically. The
//! quantile function uses Acklam's rational approximation (relative error
//! < 1.15e−9 over the open unit interval), which is far more than enough for
//! a power-model input.

use crate::StatsError;

/// Probability density of the standard normal at `x`.
///
/// # Examples
///
/// ```
/// let peak = pv_stats::dist::normal_pdf(0.0);
/// assert!((peak - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)] // 1/sqrt(2*pi) to full f64 digits
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution of the standard normal at `x`.
///
/// Computed via the complementary error function using the Abramowitz &
/// Stegun 7.1.26 polynomial (absolute error < 1.5e−7), symmetrized for
/// negative arguments.
pub fn normal_cdf(x: f64) -> f64 {
    // erf via A&S 7.1.26 on |x|/sqrt(2).
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Quantile (inverse CDF) of the standard normal.
///
/// Uses Peter Acklam's rational approximation (relative error below
/// 1.15e−9 across the whole open unit interval).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`.
///
/// # Examples
///
/// ```
/// let z = pv_stats::dist::normal_quantile(0.975).unwrap();
/// assert!((z - 1.959964).abs() < 1e-5);
/// ```
pub fn normal_quantile(p: f64) -> Result<f64, StatsError> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidParameter("probability outside (0,1)"));
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    Ok(x)
}

/// A normal distribution with configurable mean and standard deviation.
///
/// # Examples
///
/// ```
/// use pv_stats::dist::Normal;
/// let iq = Normal::new(100.0, 15.0).unwrap();
/// assert!((iq.quantile(0.5).unwrap() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || !std.is_finite() {
            return Err(StatsError::NonFiniteValue);
        }
        if std < 0.0 {
            return Err(StatsError::InvalidParameter("negative std"));
        }
        Ok(Self { mean, std })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        normal_cdf((x - self.mean) / self.std)
    }

    /// Quantile at probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        Ok(self.mean + self.std * normal_quantile(p)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
        assert!(normal_pdf(0.0) > normal_pdf(0.1));
    }

    #[test]
    fn cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn quantile_known_points() {
        assert!(normal_quantile(0.5).unwrap().abs() < 1e-9);
        assert!((normal_quantile(0.841_344_746).unwrap() - 1.0).abs() < 1e-6);
        assert!((normal_quantile(0.975).unwrap() - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025).unwrap() + 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    fn quantile_rejects_degenerate_probabilities() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.3).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p).unwrap();
            assert!(
                (normal_cdf(x) - p).abs() < 2e-6,
                "p={p} x={x} cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn parameterized_normal() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-7);
        assert!((n.quantile(0.841_344_746).unwrap() - 12.0).abs() < 1e-5);
        assert_eq!(n.mean(), 10.0);
        assert_eq!(n.std(), 2.0);
    }

    #[test]
    fn degenerate_normal_is_step_function() {
        let n = Normal::new(5.0, 0.0).unwrap();
        assert_eq!(n.cdf(4.999), 0.0);
        assert_eq!(n.cdf(5.0), 1.0);
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }
}
