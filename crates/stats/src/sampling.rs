//! Population subsampling for crowd-scale sweeps.
//!
//! The paper's crowd statistics (mean ACCUBENCH score, RSD, percentiles) are
//! population-level claims. Simulating every device in a 10⁶-unit fleet is
//! infeasible, but the silicon generator already knows each die's process
//! grade *before* any expensive thermal simulation runs — a cheap auxiliary
//! variable that is strongly correlated with the final score. This module
//! exploits that with three designs:
//!
//! - **SRS** — simple random sampling without replacement; the unbiased
//!   baseline with no use of the auxiliary variable.
//! - **RSS** — ranked set sampling: draw candidate sets, rank them by the
//!   auxiliary grade, and measure one unit per rank. More efficient than SRS
//!   whenever ranking correlates with the response.
//! - **Stratified** — two-phase stratified sampling: phase one assigns every
//!   unit to a stratum from its silicon-grade bin (the same `floor(grade·H)`
//!   rule the binning layer uses), phase two draws a proportional SRS within
//!   each stratum with deterministic largest-remainder allocation.
//!
//! All selection is deterministic for a fixed seed, and every estimate
//! carries a percentile-bootstrap confidence interval (resampling within
//! strata so stratification survives the resample).

use crate::bootstrap::ConfidenceInterval;
use crate::StatsError;
use pv_rng::rngs::StdRng;
use pv_rng::{Rng, SeedableRng};

/// Subsampling design for a crowd sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Simple random sampling without replacement.
    Srs,
    /// Ranked set sampling on the auxiliary variable.
    Rss,
    /// Two-phase stratified sampling with proportional allocation.
    Stratified,
}

impl Strategy {
    /// Parses a CLI strategy name (`srs`, `rss`, `stratified`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, StatsError> {
        match name {
            "srs" => Ok(Self::Srs),
            "rss" => Ok(Self::Rss),
            "stratified" => Ok(Self::Stratified),
            _ => Err(StatsError::InvalidParameter(
                "unknown sampling strategy (expected srs, rss, or stratified)",
            )),
        }
    }

    /// Canonical CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Srs => "srs",
            Self::Rss => "rss",
            Self::Stratified => "stratified",
        }
    }
}

/// One group of selected units sharing an estimation weight.
///
/// SRS and RSS selections produce a single group; stratified selections
/// produce one group per non-empty stratum with `weight = N_h / N`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionGroup {
    /// Relative population weight of the group (normalized at estimation).
    pub weight: f64,
    /// Population indices selected into this group, ascending.
    pub indices: Vec<usize>,
}

/// The result of a sampling design: which population indices to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Design that produced the selection.
    pub strategy: Strategy,
    /// All selected population indices, ascending and distinct.
    pub indices: Vec<usize>,
    /// Weighted groups for estimation (partition of `indices`).
    pub groups: Vec<SelectionGroup>,
}

/// Selects `n` of the `aux.len()` population units using `strategy`.
///
/// `aux` is the auxiliary ranking variable (silicon grade in `[0, 1]`);
/// `strata` is the stratum/rank-set count (the silicon bin count). The
/// selection is deterministic for a fixed `seed`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `n` is zero or exceeds the
/// population, or `strata == 0`; [`StatsError::NonFiniteValue`] when any
/// auxiliary value is non-finite.
pub fn select(
    strategy: Strategy,
    aux: &[f64],
    n: usize,
    strata: usize,
    seed: u64,
) -> Result<Selection, StatsError> {
    if n == 0 {
        return Err(StatsError::InvalidParameter("zero sample size"));
    }
    if n > aux.len() {
        return Err(StatsError::InvalidParameter(
            "sample size exceeds population",
        ));
    }
    if strata == 0 {
        return Err(StatsError::InvalidParameter("zero strata"));
    }
    if aux.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteValue);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        Strategy::Srs => {
            let mut indices = srs_indices(&mut rng, aux.len(), n);
            indices.sort_unstable();
            Ok(Selection {
                strategy,
                groups: vec![SelectionGroup {
                    weight: 1.0,
                    indices: indices.clone(),
                }],
                indices,
            })
        }
        Strategy::Rss => {
            let indices = rss_indices(&mut rng, aux, n, strata);
            Ok(Selection {
                strategy,
                groups: vec![SelectionGroup {
                    weight: 1.0,
                    indices: indices.clone(),
                }],
                indices,
            })
        }
        Strategy::Stratified => stratified_selection(&mut rng, aux, n, strata),
    }
}

/// Partial Fisher–Yates: `n` distinct indices from `0..pop`, unsorted.
fn srs_indices(rng: &mut StdRng, pop: usize, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..pop).collect();
    for i in 0..n {
        let j = rng.gen_range(i..pop);
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

/// Ranked set sampling with set size `m`: cycle over ranks, draw `m`
/// candidates per quantified unit, rank by `aux`, keep the unit holding the
/// current rank. Candidates never include already-measured units, so the
/// measured sample is without replacement.
fn rss_indices(rng: &mut StdRng, aux: &[f64], n: usize, m: usize) -> Vec<usize> {
    let pop = aux.len();
    let m = m.min(pop).max(1);
    let mut measured = vec![false; pop];
    let mut out = Vec::with_capacity(n);
    let mut candidates: Vec<usize> = Vec::with_capacity(m);
    for draw in 0..n {
        let rank = draw % m;
        candidates.clear();
        // Draw up to m distinct un-measured candidates; fall back to fewer
        // when the un-measured pool runs low (n close to the population).
        let available = pop - out.len();
        let want = m.min(available);
        let mut guard = 0usize;
        while candidates.len() < want && guard < pop * 4 {
            let c = rng.gen_range(0..pop);
            guard += 1;
            if !measured[c] && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        if candidates.is_empty() {
            // Degenerate fallback: linear scan for any free unit.
            if let Some(c) = measured.iter().position(|&u| !u) {
                candidates.push(c);
            } else {
                break;
            }
        }
        // Rank candidates by the auxiliary variable (ties by index so the
        // choice is deterministic).
        candidates.sort_unstable_by(|&a, &b| {
            aux[a].partial_cmp(&aux[b]).unwrap_or(core::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let pick = candidates[rank.min(candidates.len() - 1)];
        measured[pick] = true;
        out.push(pick);
    }
    out.sort_unstable();
    out
}

/// Two-phase stratified selection: assign strata from the auxiliary grade,
/// allocate proportionally (largest remainder, ties to the lower stratum),
/// then SRS within each stratum.
fn stratified_selection(
    rng: &mut StdRng,
    aux: &[f64],
    n: usize,
    strata: usize,
) -> Result<Selection, StatsError> {
    // Phase one: stratum membership from the grade bin, matching the
    // silicon layer's `floor(grade · H)` rule with the top edge clamped.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); strata];
    for (i, &g) in aux.iter().enumerate() {
        let h = ((g.max(0.0) * strata as f64) as usize).min(strata - 1);
        members[h].push(i);
    }
    let pop = aux.len() as f64;
    // Proportional allocation via largest remainder.
    let mut alloc: Vec<usize> = Vec::with_capacity(strata);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(strata);
    let mut assigned = 0usize;
    for (h, m) in members.iter().enumerate() {
        let quota = n as f64 * m.len() as f64 / pop;
        let base = quota.floor() as usize;
        alloc.push(base.min(m.len()));
        assigned += alloc[h];
        remainders.push((h, quota - base as f64));
    }
    // Hand out the remaining draws by descending fractional remainder,
    // ties broken toward the lower stratum index.
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut cursor = 0usize;
    while assigned < n {
        let (h, _) = remainders[cursor % remainders.len()];
        cursor += 1;
        if alloc[h] < members[h].len() {
            alloc[h] += 1;
            assigned += 1;
        }
        if cursor > strata * (n + 1) {
            return Err(StatsError::InvalidParameter(
                "stratified allocation failed to converge",
            ));
        }
    }
    // Every non-empty stratum should contribute at least one unit when the
    // budget allows; otherwise its weight would silently vanish from the
    // estimator.
    let nonempty = members.iter().filter(|m| !m.is_empty()).count();
    if n >= nonempty {
        while let Some(starved) = (0..strata).find(|&h| !members[h].is_empty() && alloc[h] == 0) {
            let donor = (0..strata)
                .filter(|&h| alloc[h] > 1)
                .max_by_key(|&h| (alloc[h], core::cmp::Reverse(h)))
                .ok_or(StatsError::InvalidParameter(
                    "stratified allocation cannot cover all strata",
                ))?;
            alloc[donor] -= 1;
            alloc[starved] += 1;
        }
    }
    // Phase two: SRS within each stratum, in ascending stratum order so the
    // RNG consumption (and hence the selection) is deterministic.
    let mut groups = Vec::new();
    let mut indices = Vec::with_capacity(n);
    for (h, m) in members.iter().enumerate() {
        if m.is_empty() || alloc[h] == 0 {
            continue;
        }
        let mut pool = m.clone();
        for i in 0..alloc[h] {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(alloc[h]);
        pool.sort_unstable();
        indices.extend_from_slice(&pool);
        groups.push(SelectionGroup {
            weight: m.len() as f64 / pop,
            indices: pool,
        });
    }
    indices.sort_unstable();
    Ok(Selection {
        strategy: Strategy::Stratified,
        indices,
        groups,
    })
}

/// Measured responses for one selection group.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSample {
    /// Relative population weight (normalized over all groups).
    pub weight: f64,
    /// Observed responses for the group's units.
    pub values: Vec<f64>,
}

/// Point estimates with bootstrap confidence intervals for the crowd
/// statistics a sweep reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimates {
    /// Total measured units across all groups.
    pub n: usize,
    /// Population mean estimate.
    pub mean: ConfidenceInterval,
    /// Population relative standard deviation (percent of mean, plug-in
    /// `√(E[y²] − mean²)` — the population σ, not the n−1 sample σ).
    pub rsd_percent: ConfidenceInterval,
    /// Median estimate (weighted empirical quantile).
    pub p50: ConfidenceInterval,
    /// 90th-percentile estimate (weighted empirical quantile).
    pub p90: ConfidenceInterval,
}

pv_json::impl_to_json!(Estimates {
    n,
    mean,
    rsd_percent,
    p50,
    p90
});

/// Computes weighted point estimates over `groups` and percentile-bootstrap
/// confidence intervals by resampling *within* each group (so a stratified
/// design stays stratified across resamples). Deterministic for a fixed
/// `seed`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] when no group holds a value,
/// [`StatsError::NonFiniteValue`] on non-finite responses or weights, and
/// [`StatsError::InvalidParameter`] on a bad level/resample count or
/// non-positive weight.
pub fn estimate(
    groups: &[StratumSample],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<Estimates, StatsError> {
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidParameter("level outside (0,1)"));
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter("zero resamples"));
    }
    let live: Vec<&StratumSample> = groups.iter().filter(|g| !g.values.is_empty()).collect();
    if live.is_empty() {
        return Err(StatsError::EmptySample);
    }
    for g in &live {
        if !g.weight.is_finite() || g.weight <= 0.0 {
            return Err(StatsError::InvalidParameter("non-positive group weight"));
        }
        if g.values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteValue);
        }
    }
    let n: usize = live.iter().map(|g| g.values.len()).sum();
    let point = point_estimates(&live)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut boots: [Vec<f64>; 4] = [
        Vec::with_capacity(resamples),
        Vec::with_capacity(resamples),
        Vec::with_capacity(resamples),
        Vec::with_capacity(resamples),
    ];
    let mut resampled: Vec<StratumSample> = live
        .iter()
        .map(|g| StratumSample {
            weight: g.weight,
            values: vec![0.0; g.values.len()],
        })
        .collect();
    for _ in 0..resamples {
        for (dst, src) in resampled.iter_mut().zip(&live) {
            for slot in dst.values.iter_mut() {
                *slot = src.values[rng.gen_range(0..src.values.len())];
            }
        }
        let refs: Vec<&StratumSample> = resampled.iter().collect();
        let p = point_estimates(&refs)?;
        boots[0].push(p[0]);
        boots[1].push(p[1]);
        boots[2].push(p[2]);
        boots[3].push(p[3]);
    }
    let alpha = (1.0 - level) / 2.0;
    let ci = |stat: &[f64], point: f64| -> Result<ConfidenceInterval, StatsError> {
        Ok(ConfidenceInterval {
            lo: crate::quantile(stat, alpha)?,
            hi: crate::quantile(stat, 1.0 - alpha)?,
            point,
            level,
        })
    };
    Ok(Estimates {
        n,
        mean: ci(&boots[0], point[0])?,
        rsd_percent: ci(&boots[1], point[1])?,
        p50: ci(&boots[2], point[2])?,
        p90: ci(&boots[3], point[3])?,
    })
}

/// `[mean, rsd_percent, p50, p90]` for one set of weighted groups.
fn point_estimates(groups: &[&StratumSample]) -> Result<[f64; 4], StatsError> {
    let wsum: f64 = groups.iter().map(|g| g.weight).sum();
    let mut mean = 0.0;
    let mut mean_sq = 0.0;
    for g in groups {
        let w = g.weight / wsum;
        let gn = g.values.len() as f64;
        let gm: f64 = g.values.iter().sum::<f64>() / gn;
        let gm2: f64 = g.values.iter().map(|v| v * v).sum::<f64>() / gn;
        mean += w * gm;
        mean_sq += w * gm2;
    }
    let var = (mean_sq - mean * mean).max(0.0);
    let rsd = if mean != 0.0 {
        var.sqrt() / mean.abs() * 100.0
    } else {
        return Err(StatsError::InvalidParameter("zero mean"));
    };
    let p50 = weighted_quantile(groups, wsum, 0.50)?;
    let p90 = weighted_quantile(groups, wsum, 0.90)?;
    Ok([mean, rsd, p50, p90])
}

/// Weighted empirical quantile: each value in group `h` carries weight
/// `W_h / n_h`; returns the smallest value whose cumulative weight reaches
/// `q`.
fn weighted_quantile(
    groups: &[&StratumSample],
    wsum: f64,
    q: f64,
) -> Result<f64, StatsError> {
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for g in groups {
        let per = g.weight / wsum / g.values.len() as f64;
        pairs.extend(g.values.iter().map(|&v| (v, per)));
    }
    if pairs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(core::cmp::Ordering::Equal));
    let mut acc = 0.0;
    for &(v, w) in &pairs {
        acc += w;
        if acc >= q - 1e-12 {
            return Ok(v);
        }
    }
    Ok(pairs[pairs.len() - 1].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grades(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n.max(2) - 1) as f64).collect()
    }

    #[test]
    fn strategy_parse_round_trips() {
        for s in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
            assert_eq!(Strategy::parse(s.as_str()).unwrap(), s);
        }
        assert!(Strategy::parse("bogus").is_err());
    }

    #[test]
    fn selection_is_deterministic_and_distinct() {
        let aux = grades(5000);
        for strategy in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
            let a = select(strategy, &aux, 200, 7, 42).unwrap();
            let b = select(strategy, &aux, 200, 7, 42).unwrap();
            assert_eq!(a, b, "{strategy:?}");
            assert_eq!(a.indices.len(), 200, "{strategy:?}");
            let mut sorted = a.indices.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 200, "{strategy:?} produced duplicates");
            assert!(a.indices.windows(2).all(|w| w[0] < w[1]));
            let c = select(strategy, &aux, 200, 7, 43).unwrap();
            assert_ne!(a.indices, c.indices, "{strategy:?} ignores the seed");
        }
    }

    #[test]
    fn selection_groups_partition_indices() {
        let aux = grades(1000);
        let sel = select(Strategy::Stratified, &aux, 100, 7, 1).unwrap();
        let mut from_groups: Vec<usize> = sel
            .groups
            .iter()
            .flat_map(|g| g.indices.iter().copied())
            .collect();
        from_groups.sort_unstable();
        assert_eq!(from_groups, sel.indices);
        // Proportional allocation: every stratum of a uniform population
        // gets a near-equal share.
        for g in &sel.groups {
            assert!(g.indices.len() >= 100 / 7, "starved stratum");
        }
    }

    #[test]
    fn stratified_covers_every_nonempty_stratum() {
        // Heavily skewed population: stratum 6 holds two units only.
        let mut aux = vec![0.05; 500];
        aux.push(0.99);
        aux.push(0.98);
        let sel = select(Strategy::Stratified, &aux, 50, 7, 9).unwrap();
        assert_eq!(sel.groups.len(), 2);
        assert!(sel.indices.contains(&500) || sel.indices.contains(&501));
    }

    #[test]
    fn selection_validates_inputs() {
        let aux = grades(10);
        assert!(select(Strategy::Srs, &aux, 0, 7, 1).is_err());
        assert!(select(Strategy::Srs, &aux, 11, 7, 1).is_err());
        assert!(select(Strategy::Stratified, &aux, 2, 0, 1).is_err());
        assert!(select(Strategy::Srs, &[f64::NAN; 4], 2, 7, 1).is_err());
    }

    #[test]
    fn full_census_selects_everyone() {
        let aux = grades(64);
        for strategy in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
            let sel = select(strategy, &aux, 64, 7, 3).unwrap();
            assert_eq!(sel.indices, (0..64).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn estimates_recover_known_population() {
        // Synthetic response linear in grade: y = 30 + 20·g over a uniform
        // population → mean 40, p50 ≈ 40, p90 ≈ 48.
        let aux = grades(20_000);
        let y: Vec<f64> = aux.iter().map(|g| 30.0 + 20.0 * g).collect();
        for strategy in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
            let sel = select(strategy, &aux, 500, 7, 11).unwrap();
            let groups: Vec<StratumSample> = sel
                .groups
                .iter()
                .map(|g| StratumSample {
                    weight: g.weight,
                    values: g.indices.iter().map(|&i| y[i]).collect(),
                })
                .collect();
            let est = estimate(&groups, 0.95, 500, 99).unwrap();
            assert_eq!(est.n, 500);
            assert!(
                (est.mean.point - 40.0).abs() < 1.0,
                "{strategy:?} mean {:?}",
                est.mean
            );
            assert!(est.mean.contains(est.mean.point));
            assert!((est.p50.point - 40.0).abs() < 2.0, "{strategy:?}");
            assert!((est.p90.point - 48.0).abs() < 2.0, "{strategy:?}");
            // Population RSD of U(30,50): σ = 20/√12 ≈ 5.77 → ~14.4%.
            assert!(
                (est.rsd_percent.point - 14.4).abs() < 2.0,
                "{strategy:?} rsd {:?}",
                est.rsd_percent
            );
        }
    }

    #[test]
    fn stratified_beats_srs_variance_on_correlated_response() {
        let aux = grades(50_000);
        let y: Vec<f64> = aux.iter().map(|g| 30.0 + 20.0 * g).collect();
        let width = |strategy| {
            let sel = select(strategy, &aux, 400, 7, 5).unwrap();
            let groups: Vec<StratumSample> = sel
                .groups
                .iter()
                .map(|g| StratumSample {
                    weight: g.weight,
                    values: g.indices.iter().map(|&i| y[i]).collect(),
                })
                .collect();
            estimate(&groups, 0.95, 400, 17).unwrap().mean.width()
        };
        assert!(width(Strategy::Stratified) < width(Strategy::Srs));
    }

    #[test]
    fn estimate_is_deterministic() {
        let groups = [StratumSample {
            weight: 1.0,
            values: (0..50).map(|i| 40.0 + (i % 7) as f64).collect(),
        }];
        let a = estimate(&groups, 0.95, 300, 4).unwrap();
        let b = estimate(&groups, 0.95, 300, 4).unwrap();
        assert_eq!(a, b);
        let c = estimate(&groups, 0.95, 300, 5).unwrap();
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn estimate_validates_inputs() {
        let ok = [StratumSample {
            weight: 1.0,
            values: vec![1.0, 2.0],
        }];
        assert!(estimate(&ok, 0.0, 100, 1).is_err());
        assert!(estimate(&ok, 0.95, 0, 1).is_err());
        assert!(estimate(&[], 0.95, 100, 1).is_err());
        let bad_w = [StratumSample {
            weight: -1.0,
            values: vec![1.0],
        }];
        assert!(estimate(&bad_w, 0.95, 100, 1).is_err());
        let bad_v = [StratumSample {
            weight: 1.0,
            values: vec![f64::NAN],
        }];
        assert!(estimate(&bad_v, 0.95, 100, 1).is_err());
    }

    #[test]
    fn weighted_quantile_respects_weights() {
        // Two strata: 90% of weight at value 10, 10% at value 100.
        let groups = [
            StratumSample {
                weight: 0.9,
                values: vec![10.0; 9],
            },
            StratumSample {
                weight: 0.1,
                values: vec![100.0; 9],
            },
        ];
        let refs: Vec<&StratumSample> = groups.iter().collect();
        assert_eq!(weighted_quantile(&refs, 1.0, 0.5).unwrap(), 10.0);
        assert_eq!(weighted_quantile(&refs, 1.0, 0.95).unwrap(), 100.0);
    }
}
