//! Statistics toolkit for the process-variation measurement stack.
//!
//! The paper reports all its results as normalized means with Relative
//! Standard Deviation (RSD) error bars, frequency/temperature *distributions*
//! (Figures 11 and 12), and proposes k-means-style clustering of crowd data
//! into inferred CPU bins (§VI). This crate provides exactly those tools:
//!
//! * [`Summary`] — n/mean/std/min/max/RSD over a sample, plus normalization
//!   helpers used to produce the paper's normalized bar charts.
//! * [`histogram::Histogram`] — fixed-bin histograms for the Fig 11/12
//!   frequency and temperature distributions.
//! * [`dist`] — normal pdf/cdf/quantile (Acklam's inverse-CDF approximation)
//!   used by the silicon sampling model.
//! * [`kmeans`] — seeded k-means (with k-means++ initialisation) for the
//!   future-work bin-clustering experiment.
//! * [`bootstrap`] — bootstrap confidence intervals for means.
//! * [`regression`] — ordinary least-squares line fits for trend analysis.
//! * [`stream`] — mergeable count/mean/M2 accumulators for streaming,
//!   memory-bounded crowd aggregation.
//! * [`sampling`] — SRS / ranked-set / stratified subsampling designs with
//!   bootstrap confidence intervals for million-device sweeps.
//!
//! # Examples
//!
//! ```
//! use pv_stats::Summary;
//! let s = Summary::from_slice(&[10.0, 10.2, 9.9, 10.1]).unwrap();
//! assert!(s.rsd_percent() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod dist;
pub mod histogram;
pub mod kmeans;
pub mod regression;
pub mod sampling;
pub mod stream;

use core::fmt;

/// Error produced when a statistic is requested over an invalid sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty.
    EmptySample,
    /// The input contained a NaN or infinite value.
    NonFiniteValue,
    /// A parameter was outside its valid domain (e.g. `k = 0` clusters).
    InvalidParameter(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::NonFiniteValue => write!(f, "sample contains a non-finite value"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Summary statistics over a sample of `f64` observations.
///
/// `std` is the *sample* standard deviation (n−1 denominator), matching how
/// measurement papers report run-to-run error. [`Summary::rsd_percent`] is
/// the paper's error metric: the absolute coefficient of variation in
/// percent.
///
/// # Examples
///
/// ```
/// use pv_stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.n(), 3);
/// assert_eq!(s.std(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Computes summary statistics over a slice.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty slice and
    /// [`StatsError::NonFiniteValue`] if any observation is NaN or infinite.
    pub fn from_slice(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteValue);
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        })
    }

    /// Computes summary statistics over anything iterable.
    ///
    /// # Errors
    ///
    /// Same as [`Summary::from_slice`].
    #[allow(clippy::should_implement_trait)] // fallible, unlike FromIterator
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Result<Self, StatsError> {
        let values: Vec<f64> = iter.into_iter().collect();
        Self::from_slice(&values)
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1 denominator; 0 for a single point).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative Standard Deviation in percent: `100·|std/mean|`.
    ///
    /// This is the error metric the paper reports ("errors are represented
    /// in the form of Relative Standard Deviation"). Returns infinity when
    /// the mean is zero and the std is not.
    pub fn rsd_percent(&self) -> f64 {
        if self.std == 0.0 {
            0.0
        } else {
            (self.std / self.mean).abs() * 100.0
        }
    }

    /// Full range of the sample (`max − min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Peak-to-peak spread in percent of the best (largest) observation:
    /// `100·(max − min)/max`.
    ///
    /// This is how the paper quotes variation ("bin-0 … 14% faster than
    /// bin-3"): the gap between best and worst device relative to the best.
    pub fn spread_percent_of_max(&self) -> f64 {
        if self.max == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.max * 100.0
        }
    }

    /// Peak-to-peak spread in percent of the smallest observation:
    /// `100·(max − min)/min`.
    ///
    /// Used for "consumes X% more energy" style comparisons where the best
    /// device is the one with the *lowest* value.
    pub fn spread_percent_of_min(&self) -> f64 {
        if self.min == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.min * 100.0
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} rsd={:.2}% min={:.4} max={:.4}",
            self.n,
            self.mean,
            self.std,
            self.rsd_percent(),
            self.min,
            self.max
        )
    }
}

/// Normalizes a sample so its largest element is 1.0.
///
/// The paper presents per-device results "in a normalized form"; performance
/// charts normalize to the best (fastest) device.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for empty input,
/// [`StatsError::NonFiniteValue`] for non-finite input, and
/// [`StatsError::InvalidParameter`] if the maximum is zero.
pub fn normalize_to_max(values: &[f64]) -> Result<Vec<f64>, StatsError> {
    let s = Summary::from_slice(values)?;
    if s.max() == 0.0 {
        return Err(StatsError::InvalidParameter("maximum is zero"));
    }
    Ok(values.iter().map(|v| v / s.max()).collect())
}

/// Normalizes a sample so its smallest element is 1.0.
///
/// Energy charts normalize to the most frugal device, so worse devices show
/// as ratios above 1.
///
/// # Errors
///
/// Same as [`normalize_to_max`], with the zero check on the minimum.
pub fn normalize_to_min(values: &[f64]) -> Result<Vec<f64>, StatsError> {
    let s = Summary::from_slice(values)?;
    if s.min() == 0.0 {
        return Err(StatsError::InvalidParameter("minimum is zero"));
    }
    Ok(values.iter().map(|v| v / s.min()).collect())
}

/// Computes the mean of a slice.
///
/// # Errors
///
/// Returns an error for empty or non-finite input (see [`Summary::from_slice`]).
pub fn mean(values: &[f64]) -> Result<f64, StatsError> {
    Summary::from_slice(values).map(|s| s.mean())
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between
/// order statistics (type-7 / NumPy default).
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for empty input,
/// [`StatsError::NonFiniteValue`] for non-finite input, and
/// [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteValue);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile outside [0,1]"));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

pv_json::impl_to_json!(Summary {
    n,
    mean,
    std,
    min,
    max
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_slice(&[5.0; 10]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.rsd_percent(), 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std with n-1: variance = 32/7.
        assert!((s.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_single_point_has_zero_std() {
        let s = Summary::from_slice(&[3.25]).unwrap();
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.n(), 1);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert_eq!(Summary::from_slice(&[]), Err(StatsError::EmptySample));
        assert_eq!(
            Summary::from_slice(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteValue)
        );
        assert_eq!(
            Summary::from_slice(&[f64::INFINITY]),
            Err(StatsError::NonFiniteValue)
        );
    }

    #[test]
    fn rsd_matches_hand_computation() {
        // mean 10, std 1 → RSD 10%.
        let s = Summary::from_slice(&[9.0, 10.0, 11.0]).unwrap();
        assert!((s.rsd_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn spreads_match_paper_style_quotes() {
        // Best = 100, worst = 86: "best is 14% faster" → spread of max = 14%.
        let s = Summary::from_slice(&[86.0, 95.0, 100.0]).unwrap();
        assert!((s.spread_percent_of_max() - 14.0).abs() < 1e-9);
        // Energy: best 100 J, worst 119 J → "19% more energy".
        let e = Summary::from_slice(&[100.0, 110.0, 119.0]).unwrap();
        assert!((e.spread_percent_of_min() - 19.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_to_max_puts_best_at_one() {
        let n = normalize_to_max(&[50.0, 100.0, 75.0]).unwrap();
        assert_eq!(n, vec![0.5, 1.0, 0.75]);
    }

    #[test]
    fn normalize_to_min_puts_best_at_one() {
        let n = normalize_to_min(&[50.0, 100.0, 75.0]).unwrap();
        assert_eq!(n, vec![1.0, 2.0, 1.5]);
    }

    #[test]
    fn normalize_rejects_zero_reference() {
        assert!(normalize_to_max(&[0.0, 0.0]).is_err());
        assert!(normalize_to_min(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&v, 0.5).unwrap(), 2.5);
        assert!(quantile(&v, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn from_iter_matches_from_slice() {
        let a = Summary::from_iter((1..=5).map(f64::from)).unwrap();
        let b = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        assert!(!format!("{s}").is_empty());
        assert!(!format!("{}", StatsError::EmptySample).is_empty());
    }
}
