//! Bootstrap confidence intervals.
//!
//! With only 3–5 devices per SoC generation (Table II), parametric error
//! bars are fragile; the percentile bootstrap gives a distribution-free
//! interval for the mean that the experiment reports can quote alongside the
//! RSD.

use crate::{StatsError, Summary};
use pv_rng::rngs::StdRng;
use pv_rng::{Rng, SeedableRng};

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// The point estimate the interval brackets.
    pub point: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Percentile-bootstrap confidence interval for the mean.
///
/// Resamples `values` with replacement `resamples` times, computes the mean
/// of each resample, and returns the `(1−level)/2` and `(1+level)/2`
/// percentiles. Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] / [`StatsError::NonFiniteValue`] on
/// bad input, and [`StatsError::InvalidParameter`] if `level` is outside
/// `(0, 1)` or `resamples == 0`.
///
/// # Examples
///
/// ```
/// use pv_stats::bootstrap::bootstrap_mean_ci;
/// let ci = bootstrap_mean_ci(&[9.8, 10.0, 10.1, 10.2, 9.9], 0.95, 2000, 42).unwrap();
/// assert!(ci.contains(10.0));
/// ```
pub fn bootstrap_mean_ci(
    values: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<ConfidenceInterval, StatsError> {
    let point = Summary::from_slice(values)?.mean();
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidParameter("level outside (0,1)"));
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter("zero resamples"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = values.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += values[rng.gen_range(0..n)];
        }
        means.push(acc / n as f64);
    }
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantile(&means, alpha)?;
    let hi = crate::quantile(&means, 1.0 - alpha)?;
    Ok(ConfidenceInterval {
        lo,
        hi,
        point,
        level,
    })
}

pv_json::impl_to_json!(ConfidenceInterval {
    lo,
    hi,
    point,
    level
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_mean() {
        let data = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9];
        let ci = bootstrap_mean_ci(&data, 0.95, 1000, 1).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.contains(10.0));
        assert!(ci.width() < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let a = bootstrap_mean_ci(&data, 0.9, 500, 7).unwrap();
        let b = bootstrap_mean_ci(&data, 0.9, 500, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean_ci(&data, 0.9, 500, 7).unwrap();
        let b = bootstrap_mean_ci(&data, 0.9, 500, 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn constant_sample_gives_degenerate_interval() {
        let ci = bootstrap_mean_ci(&[5.0; 8], 0.95, 200, 3).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn wider_level_is_wider_interval() {
        let data = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        let narrow = bootstrap_mean_ci(&data, 0.5, 4000, 9).unwrap();
        let wide = bootstrap_mean_ci(&data, 0.99, 4000, 9).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 0).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.0, 100, 0).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.0, 100, 0).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, 0).is_err());
        assert!(bootstrap_mean_ci(&[f64::NAN], 0.95, 100, 0).is_err());
    }
}
