//! Minimal deterministic pseudo-random number generation.
//!
//! The simulation needs seeded, reproducible randomness in a handful of
//! places (die sampling, sensor noise, bootstrap resampling, k-means++
//! seeding, fault scheduling). This crate provides exactly that surface —
//! a [`StdRng`] built on xoshiro256++ seeded through SplitMix64, and the
//! [`Rng`]/[`SeedableRng`] traits mirroring the subset of the `rand` API
//! the workspace uses — with no external dependencies, so the whole
//! workspace builds offline.
//!
//! Streams are stable: the same seed always produces the same sequence,
//! across platforms and releases. Determinism tests across the workspace
//! rely on this.
//!
//! # Examples
//!
//! ```
//! use pv_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! // Same seed ⇒ same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0.0..1.0), x);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Bare generator core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// independent-looking streams (the seed is diffused via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start >= end`), matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX.wrapping_sub(span).wrapping_add(1)) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $ty;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 stream expands the seed into the full state; it cannot
        // produce the all-zero state xoshiro must avoid.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Namespaced re-exports mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_range_is_uniformish_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn works_through_unsized_reference() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let _ = draw(&mut rng);
    }
}
