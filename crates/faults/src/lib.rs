//! Deterministic fault injection for benchmark sessions.
//!
//! Real measurement campaigns fail in mundane ways: a thermocouple reads a
//! stuck value, a power meter drops off the USB bus, the chamber controller
//! wedges, a big core hot-unplugs mid-workload. This crate models those
//! failures as *seeded, schedulable plans* so the resilience machinery in
//! the harness (retry, quarantine, quality gates) can be exercised — and
//! regression-tested — fully deterministically.
//!
//! The moving parts:
//!
//! - [`FaultKind`] — the taxonomy of injectable failures.
//! - [`FaultEvent`] — one failure window: start time, duration, kind, and a
//!   kind-specific magnitude.
//! - [`FaultPlan`] — a seed plus a sorted list of events. Plans can be
//!   written by hand, parsed from a small TOML subset, or generated
//!   pseudo-randomly from a seed (same seed ⇒ same plan, always).
//! - [`Injector`] / [`FaultHandle`] — the runtime side. Wrappers around the
//!   probe, meter, chamber, and device share one cloneable handle, ask it
//!   "is fault X active now?", and log a [`FaultReport`] whenever a fault
//!   actually perturbed an observation.
//!
//! A disarmed handle ([`FaultHandle::disarmed`]) answers "no" to every
//! query without consuming randomness or doing arithmetic, so wrapped
//! components are bit-identical to bare ones when no plan is armed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use pv_json::{Json, ToJson};
use pv_rng::{Rng, SeedableRng, StdRng};

/// Every failure mode the injector knows how to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Temperature probe repeats its last reading regardless of the plant.
    ProbeStuck,
    /// Temperature probe returns nothing (sample lost).
    ProbeDropout,
    /// Temperature probe adds a large transient offset to one reading.
    ProbeSpike,
    /// Energy meter silently skips samples (under-counts energy).
    MeterMissedSample,
    /// Energy meter drops off the bus entirely for the window.
    MeterDisconnect,
    /// Energy meter gain drifts by a multiplicative factor.
    MeterGainDrift,
    /// Chamber air temperature is pushed outside its control band.
    ChamberBandExcursion,
    /// Chamber controller stops actuating (holds last heater/cooler mode).
    ChamberControllerStall,
    /// Governor glitch: device is forced to its lowest frequency.
    ThrottleGlitch,
    /// A core cluster hot-unplugs and replugs; reads during the window fail.
    HotplugFlap,
    /// The benchmark session itself panics at the next cooperative
    /// checkpoint inside the window — a crashed runner process, injected
    /// to exercise the sweep supervisor's `catch_unwind` isolation.
    SessionPanic,
    /// The benchmark session wedges: simulated time keeps passing but the
    /// protocol makes no progress until the window ends (or a watchdog
    /// budget expires). Injected to exercise `TimedOut` supervision.
    SessionStall,
    /// Storage: writes fail with `ENOSPC` (disk full) inside the window.
    /// Shrinking truncates and fsyncs still succeed, so a journal can seal
    /// its prefix and degrade gracefully.
    StorageEnospc,
    /// Storage: operations fail with a *transient* `EIO` inside the
    /// window — a retry after the window clears succeeds.
    StorageEioTransient,
    /// Storage: operations fail with a *persistent* `EIO` from the window
    /// start onward, forever — the medium is gone. Retries never help;
    /// only rotation to a fresh segment (a different "disk region") or
    /// degradation can.
    StorageEioPersistent,
    /// Storage: a write persists only a prefix of its buffer, then errors.
    /// Transient — but retrying blindly would duplicate the prefix, so the
    /// writer must repair its tail first.
    StorageShortWrite,
    /// Storage: `fsync` reports success without making anything durable.
    /// Invisible until a crash; the torture harness pairs it with a
    /// simulated power cycle.
    StorageFsyncLie,
    /// Storage: the unsynced tail written before a crash lands torn and
    /// bit-corrupted. Injected at *crash* time (see the crash-simulating
    /// in-memory backend), not on the live I/O path.
    StorageTornWrite,
}

/// The *instrument* fault kinds, in a stable order (used by plan
/// generation and tests). The session-level chaos kinds
/// ([`FaultKind::SessionPanic`], [`FaultKind::SessionStall`]) are
/// deliberately excluded: random instrument faults model a flaky lab,
/// while session chaos is injected explicitly by supervision tests.
pub const ALL_KINDS: [FaultKind; 10] = [
    FaultKind::ProbeStuck,
    FaultKind::ProbeDropout,
    FaultKind::ProbeSpike,
    FaultKind::MeterMissedSample,
    FaultKind::MeterDisconnect,
    FaultKind::MeterGainDrift,
    FaultKind::ChamberBandExcursion,
    FaultKind::ChamberControllerStall,
    FaultKind::ThrottleGlitch,
    FaultKind::HotplugFlap,
];

/// The session-level chaos kinds, in a stable order. These terminate (or
/// wedge) the *session task* rather than perturbing an instrument, so they
/// are injected deliberately — never drawn by [`FaultPlan::generate`] unless
/// a caller asks for them by name.
pub const SESSION_KINDS: [FaultKind; 2] = [FaultKind::SessionPanic, FaultKind::SessionStall];

/// The storage fault kinds, in a stable order. These bite the durability
/// layer (journal, exporter) rather than an instrument or the session
/// task, and their events run on an *operation-index* clock: `at` is the
/// ordinal of the first affected storage operation and `duration` a count
/// of operations, not seconds. Like [`SESSION_KINDS`] they are excluded
/// from [`FaultPlan::generate`] unless asked for by name.
pub const STORAGE_KINDS: [FaultKind; 6] = [
    FaultKind::StorageEnospc,
    FaultKind::StorageEioTransient,
    FaultKind::StorageEioPersistent,
    FaultKind::StorageShortWrite,
    FaultKind::StorageFsyncLie,
    FaultKind::StorageTornWrite,
];

impl FaultKind {
    /// Stable kebab-case name used in TOML plans and JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ProbeStuck => "probe-stuck",
            FaultKind::ProbeDropout => "probe-dropout",
            FaultKind::ProbeSpike => "probe-spike",
            FaultKind::MeterMissedSample => "meter-missed-sample",
            FaultKind::MeterDisconnect => "meter-disconnect",
            FaultKind::MeterGainDrift => "meter-gain-drift",
            FaultKind::ChamberBandExcursion => "chamber-band-excursion",
            FaultKind::ChamberControllerStall => "chamber-controller-stall",
            FaultKind::ThrottleGlitch => "throttle-glitch",
            FaultKind::HotplugFlap => "hotplug-flap",
            FaultKind::SessionPanic => "session-panic",
            FaultKind::SessionStall => "session-stall",
            FaultKind::StorageEnospc => "storage-enospc",
            FaultKind::StorageEioTransient => "storage-eio-transient",
            FaultKind::StorageEioPersistent => "storage-eio-persistent",
            FaultKind::StorageShortWrite => "storage-short-write",
            FaultKind::StorageFsyncLie => "storage-fsync-lie",
            FaultKind::StorageTornWrite => "storage-torn-write",
        }
    }

    /// Inverse of [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        ALL_KINDS
            .iter()
            .chain(SESSION_KINDS.iter())
            .chain(STORAGE_KINDS.iter())
            .copied()
            .find(|k| k.as_str() == s)
    }

    /// Whether this kind targets the storage layer (see [`STORAGE_KINDS`]).
    pub fn is_storage(self) -> bool {
        STORAGE_KINDS.contains(&self)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for FaultKind {
    fn to_json(&self) -> Json {
        Json::String(self.as_str().to_string())
    }
}

/// One scheduled failure window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Start time, seconds from session start.
    pub at: f64,
    /// Window length in seconds. Zero-duration events fire exactly once,
    /// at the first query at or after `at`.
    pub duration: f64,
    /// What fails.
    pub kind: FaultKind,
    /// Kind-specific severity. For gain drift this is the multiplicative
    /// error (e.g. `0.05` ⇒ ×1.05); for spikes, the offset in kelvin; for
    /// band excursions, the push in kelvin; kinds that are purely on/off
    /// ignore it.
    pub magnitude: f64,
}

impl FaultEvent {
    /// Whether the window covers time `t` (half-open, `[at, at+duration)`,
    /// except zero-duration windows which cover exactly `t == at`).
    pub fn active_at(&self, t: f64) -> bool {
        if self.duration <= 0.0 {
            (t - self.at).abs() < f64::EPSILON
        } else {
            t >= self.at && t < self.at + self.duration
        }
    }
}

pv_json::impl_to_json!(FaultEvent {
    at,
    duration,
    kind,
    magnitude
});

/// A complete, deterministic schedule of faults for one session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed recorded for provenance (and used by [`FaultPlan::generate`]).
    pub seed: u64,
    /// Events, kept sorted by start time.
    pub events: Vec<FaultEvent>,
}

pv_json::impl_to_json!(FaultPlan { seed, events });

impl FaultPlan {
    /// An empty plan: nothing ever fails.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds one event, keeping the schedule sorted by start time.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self.events
            .sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));
        self
    }

    /// Generates a plan pseudo-randomly: fault arrivals follow an
    /// exponential inter-arrival process with mean `mean_interval_s`
    /// seconds over `[0, horizon_s)`, each drawing a kind uniformly from
    /// `kinds`, a duration in `[1, 30)` s, and a magnitude in `[0, 1)`.
    ///
    /// The same `(seed, horizon_s, mean_interval_s, kinds)` always yields
    /// the same plan.
    pub fn generate(seed: u64, horizon_s: f64, mean_interval_s: f64, kinds: &[FaultKind]) -> Self {
        assert!(mean_interval_s > 0.0, "mean interval must be positive");
        assert!(!kinds.is_empty(), "need at least one fault kind");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            // Inverse-CDF exponential gap; u in [0,1) so 1-u in (0,1].
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() * mean_interval_s;
            if t >= horizon_s {
                break;
            }
            events.push(FaultEvent {
                at: t,
                duration: rng.gen_range(1.0..30.0),
                kind: kinds[rng.gen_range(0..kinds.len())],
                magnitude: rng.gen_range(0.0..1.0),
            });
        }
        Self { seed, events }
    }

    /// Parses the small TOML subset written by [`FaultPlan::to_toml_string`]:
    ///
    /// ```toml
    /// seed = 42
    ///
    /// [[event]]
    /// at = 120.0
    /// duration = 10.0
    /// kind = "probe-dropout"
    /// magnitude = 0.0
    /// ```
    ///
    /// Comments (`#`) and blank lines are ignored. Unknown keys, unknown
    /// kinds, and malformed lines are errors.
    pub fn from_toml_str(input: &str) -> Result<Self, PlanParseError> {
        #[derive(Default)]
        struct Partial {
            at: Option<f64>,
            duration: Option<f64>,
            kind: Option<FaultKind>,
            magnitude: Option<f64>,
        }
        fn finish(p: Partial, line: usize) -> Result<FaultEvent, PlanParseError> {
            let err = |what: &str| PlanParseError {
                line,
                message: format!("event is missing `{what}`"),
            };
            Ok(FaultEvent {
                at: p.at.ok_or_else(|| err("at"))?,
                duration: p.duration.ok_or_else(|| err("duration"))?,
                kind: p.kind.ok_or_else(|| err("kind"))?,
                magnitude: p.magnitude.unwrap_or(0.0),
            })
        }

        let mut plan = FaultPlan::empty();
        let mut current: Option<(Partial, usize)> = None;
        for (idx, raw) in input.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[event]]" {
                if let Some((partial, opened)) = current.take() {
                    plan.events.push(finish(partial, opened)?);
                }
                current = Some((Partial::default(), lineno));
                continue;
            }
            if line.starts_with('[') {
                return Err(PlanParseError {
                    line: lineno,
                    message: format!("unknown section `{line}`"),
                });
            }
            let (key, value) = line.split_once('=').ok_or_else(|| PlanParseError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let num = |v: &str| -> Result<f64, PlanParseError> {
                v.parse::<f64>().map_err(|_| PlanParseError {
                    line: lineno,
                    message: format!("`{key}` is not a number: `{v}`"),
                })
            };
            match (&mut current, key) {
                (None, "seed") => {
                    plan.seed = value.parse::<u64>().map_err(|_| PlanParseError {
                        line: lineno,
                        message: format!("`seed` is not an unsigned integer: `{value}`"),
                    })?;
                }
                (None, _) => {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("unknown top-level key `{key}`"),
                    });
                }
                (Some((partial, _)), "at") => partial.at = Some(num(value)?),
                (Some((partial, _)), "duration") => partial.duration = Some(num(value)?),
                (Some((partial, _)), "magnitude") => partial.magnitude = Some(num(value)?),
                (Some((partial, _)), "kind") => {
                    let name = value.trim_matches('"');
                    partial.kind = Some(FaultKind::parse(name).ok_or_else(|| PlanParseError {
                        line: lineno,
                        message: format!("unknown fault kind `{name}`"),
                    })?);
                }
                (Some(_), _) => {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("unknown event key `{key}`"),
                    });
                }
            }
        }
        if let Some((partial, opened)) = current.take() {
            plan.events.push(finish(partial, opened)?);
        }
        plan.events
            .sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));
        Ok(plan)
    }

    /// Serialises the plan in the format accepted by
    /// [`FaultPlan::from_toml_str`].
    pub fn to_toml_string(&self) -> String {
        let mut out = format!("seed = {}\n", self.seed);
        for e in &self.events {
            out.push_str(&format!(
                "\n[[event]]\nat = {}\nduration = {}\nkind = \"{}\"\nmagnitude = {}\n",
                e.at,
                e.duration,
                e.kind.as_str(),
                e.magnitude
            ));
        }
        out
    }
}

/// Error from [`FaultPlan::from_toml_str`], carrying the 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// One record of a fault actually perturbing the session.
///
/// Reports are appended by the wrapper that applied the fault, in
/// simulation-time order, so for a fixed plan and workload the report
/// sequence is exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Simulation time (seconds from session start) the fault bit.
    pub at: f64,
    /// Which failure mode.
    pub kind: FaultKind,
    /// Magnitude of the scheduled event that caused it.
    pub magnitude: f64,
    /// What the wrapper did about it.
    pub detail: String,
}

pv_json::impl_to_json!(FaultReport {
    at,
    kind,
    magnitude,
    detail
});

/// Runtime state: the armed plan, the simulation clock, and the report log.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    now: f64,
    reports: Vec<FaultReport>,
    reported: HashSet<(FaultKind, u64)>,
}

impl Injector {
    fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            now: 0.0,
            reports: Vec::new(),
            reported: HashSet::new(),
        }
    }
}

/// Cloneable handle shared by every fault-aware wrapper in a session.
///
/// All wrappers (probe, meter, chamber, device) hold clones of one handle,
/// so they agree on the simulation clock and append to a single report log.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Option<Rc<RefCell<Injector>>>,
}

impl FaultHandle {
    /// A handle with no plan: every query is a cheap `None`, nothing is
    /// recorded, and wrapped components behave bit-identically to bare
    /// ones.
    pub fn disarmed() -> Self {
        Self { inner: None }
    }

    /// Arms a plan. The clock starts at zero.
    pub fn armed(plan: FaultPlan) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Injector::new(plan)))),
        }
    }

    /// Whether a plan is armed.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the shared simulation clock by `dt` seconds.
    pub fn advance(&self, dt: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now += dt;
        }
    }

    /// Resets the clock to zero (start of a fresh session) without
    /// clearing the report log.
    pub fn reset_clock(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now = 0.0;
        }
    }

    /// Current simulation time in seconds (zero when disarmed).
    pub fn now(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.borrow().now)
    }

    /// The first scheduled event of `kind` covering the current time, if
    /// any. Disarmed handles always return `None`.
    pub fn active(&self, kind: FaultKind) -> Option<FaultEvent> {
        let inner = self.inner.as_ref()?;
        let inner = inner.borrow();
        inner
            .plan
            .events
            .iter()
            .find(|e| e.kind == kind && e.active_at(inner.now))
            .cloned()
    }

    /// Records that `event` actually perturbed the session, with a short
    /// description of the effect. No-op when disarmed.
    pub fn report(&self, event: &FaultEvent, detail: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let at = inner.now;
            inner.reports.push(FaultReport {
                at,
                kind: event.kind,
                magnitude: event.magnitude,
                detail: detail.into(),
            });
        }
    }

    /// Like [`FaultHandle::report`], but deduplicated per scheduled event:
    /// the first call for a given `(kind, at)` logs and returns `true`,
    /// repeats (e.g. one fault window perturbing thousands of samples, or
    /// the same window biting several retry attempts) return `false`
    /// silently. Keeps report logs bounded and replay-comparable.
    pub fn report_once(&self, event: &FaultEvent, detail: impl Into<String>) -> bool {
        if let Some(inner) = &self.inner {
            let fresh = inner
                .borrow_mut()
                .reported
                .insert((event.kind, event.at.to_bits()));
            if fresh {
                self.report(event, detail);
            }
            fresh
        } else {
            false
        }
    }

    /// Snapshot of the report log so far.
    pub fn reports(&self) -> Vec<FaultReport> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().reports.clone())
    }

    /// Number of reports logged so far (cheaper than [`FaultHandle::reports`]).
    pub fn report_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().reports.len())
    }
}

impl Default for FaultHandle {
    fn default() -> Self {
        Self::disarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in ALL_KINDS
            .iter()
            .chain(SESSION_KINDS.iter())
            .chain(STORAGE_KINDS.iter())
            .copied()
        {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }

    #[test]
    fn session_kinds_stay_out_of_the_instrument_list() {
        for kind in SESSION_KINDS {
            assert!(!ALL_KINDS.contains(&kind));
        }
    }

    #[test]
    fn storage_kinds_stay_out_of_the_instrument_list() {
        for kind in STORAGE_KINDS {
            assert!(!ALL_KINDS.contains(&kind));
            assert!(kind.is_storage());
        }
        for kind in ALL_KINDS.iter().chain(SESSION_KINDS.iter()) {
            assert!(!kind.is_storage());
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(9, 3600.0, 120.0, &ALL_KINDS);
        let b = FaultPlan::generate(9, 3600.0, 120.0, &ALL_KINDS);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let c = FaultPlan::generate(10, 3600.0, 120.0, &ALL_KINDS);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_events_are_sorted_and_in_horizon() {
        let plan = FaultPlan::generate(3, 1800.0, 60.0, &ALL_KINDS);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &plan.events {
            assert!(e.at >= 0.0 && e.at < 1800.0);
            assert!(e.duration >= 1.0 && e.duration < 30.0);
        }
    }

    #[test]
    fn toml_round_trip() {
        let plan = FaultPlan::generate(17, 900.0, 90.0, &ALL_KINDS);
        let parsed = FaultPlan::from_toml_str(&plan.to_toml_string()).unwrap();
        assert_eq!(plan.seed, parsed.seed);
        assert_eq!(plan.events.len(), parsed.events.len());
        for (a, b) in plan.events.iter().zip(&parsed.events) {
            assert_eq!(a.kind, b.kind);
            assert!((a.at - b.at).abs() < 1e-9);
            assert!((a.duration - b.duration).abs() < 1e-9);
            assert!((a.magnitude - b.magnitude).abs() < 1e-9);
        }
    }

    #[test]
    fn toml_parse_errors_carry_line_numbers() {
        let err = FaultPlan::from_toml_str("seed = x").unwrap_err();
        assert_eq!(err.line, 1);
        let err = FaultPlan::from_toml_str("seed = 1\n\n[[event]]\nat = 0\n").unwrap_err();
        assert_eq!(err.line, 3, "missing keys reported at the section header");
        let err = FaultPlan::from_toml_str("[[event]]\nat = 0\nduration = 1\nkind = \"bogus\"\n")
            .unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn toml_accepts_comments_and_unquoted_kind() {
        let text =
            "# plan\nseed = 5 # trailing\n[[event]]\nat = 1.5\nduration = 2\nkind = probe-spike\n";
        let plan = FaultPlan::from_toml_str(text).unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.events[0].kind, FaultKind::ProbeSpike);
        assert_eq!(plan.events[0].magnitude, 0.0);
    }

    #[test]
    fn disarmed_handle_is_inert() {
        let h = FaultHandle::disarmed();
        assert!(!h.is_armed());
        h.advance(100.0);
        assert_eq!(h.now(), 0.0);
        assert_eq!(h.active(FaultKind::ProbeStuck), None);
        let e = FaultEvent {
            at: 0.0,
            duration: 1.0,
            kind: FaultKind::ProbeStuck,
            magnitude: 0.0,
        };
        h.report(&e, "ignored");
        assert!(h.reports().is_empty());
    }

    #[test]
    fn armed_handle_activates_events_in_window() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 10.0,
            duration: 5.0,
            kind: FaultKind::MeterDisconnect,
            magnitude: 0.0,
        });
        let h = FaultHandle::armed(plan);
        assert_eq!(h.active(FaultKind::MeterDisconnect), None);
        h.advance(10.0);
        let e = h.active(FaultKind::MeterDisconnect).expect("in window");
        assert_eq!(h.active(FaultKind::ProbeStuck), None, "kind-scoped");
        h.report(&e, "meter offline");
        h.advance(5.0);
        assert_eq!(h.active(FaultKind::MeterDisconnect), None, "window closed");
        let reports = h.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].at, 10.0);
        assert_eq!(reports[0].kind, FaultKind::MeterDisconnect);
    }

    #[test]
    fn clones_share_clock_and_log() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 1.0,
            duration: 1.0,
            kind: FaultKind::HotplugFlap,
            magnitude: 0.5,
        });
        let a = FaultHandle::armed(plan);
        let b = a.clone();
        a.advance(1.0);
        let e = b.active(FaultKind::HotplugFlap).expect("shared clock");
        b.report(&e, "flap");
        assert_eq!(a.report_count(), 1);
    }

    #[test]
    fn zero_duration_event_fires_at_exact_time() {
        let e = FaultEvent {
            at: 2.0,
            duration: 0.0,
            kind: FaultKind::ProbeSpike,
            magnitude: 3.0,
        };
        assert!(!e.active_at(1.9));
        assert!(e.active_at(2.0));
        assert!(!e.active_at(2.1));
    }
}
