//! Microbenchmarks of the simulation substrates.
//!
//! These quantify the cost of the building blocks the experiment harness is
//! made of — including the *real* π-spigot workload the paper's app runs
//! (one iteration at the paper's 4,285-digit size).

use pv_bench::timing::Criterion;
use pv_bench::{criterion_group, criterion_main};
use pv_silicon::binning::{nexus5, voltage_bin_table, BinId};
use pv_silicon::power::PowerParams;
use pv_silicon::{DieSample, ProcessNode};
use pv_soc::catalog;
use pv_soc::device::{CpuDemand, FrequencyMode};
use pv_stats::kmeans::kmeans_1d;
use pv_thermal::network::ThermalNetworkBuilder;
use pv_thermal::thermabox::{ThermaBox, ThermaBoxConfig};
use pv_units::{Celsius, MegaHertz, Seconds, ThermalCapacitance, ThermalResistance, Volts, Watts};
use pv_workload::pi;
use std::hint::black_box;

fn bench_pi(c: &mut Criterion) {
    let mut group = c.benchmark_group("pi_spigot");
    group.sample_size(10);
    // The paper's actual work unit: 4,285 digits of π.
    group.bench_function("paper_iteration_4285_digits", |b| {
        b.iter(|| black_box(pi::pi_iteration()))
    });
    group.bench_function("digits_500", |b| {
        b.iter(|| black_box(pi::pi_digits(500).unwrap()))
    });
    group.finish();
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    group.bench_function("nexus5_step_100ms", |b| {
        let mut device = catalog::nexus5(BinId(2)).unwrap();
        b.iter(|| {
            black_box(
                device
                    .step(
                        Seconds(0.1),
                        CpuDemand::busy(),
                        FrequencyMode::Unconstrained,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("nexus6p_biglittle_step_100ms", |b| {
        let mut device = catalog::nexus6p(0.5, "bench").unwrap();
        b.iter(|| {
            black_box(
                device
                    .step(
                        Seconds(0.1),
                        CpuDemand::busy(),
                        FrequencyMode::Unconstrained,
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal");
    group.bench_function("network_step", |b| {
        let mut builder = ThermalNetworkBuilder::new();
        let die = builder
            .add_node("die", ThermalCapacitance(3.0), Celsius(26.0))
            .unwrap();
        let pkg = builder
            .add_node("pkg", ThermalCapacitance(10.0), Celsius(26.0))
            .unwrap();
        let case = builder
            .add_node("case", ThermalCapacitance(6.0), Celsius(26.0))
            .unwrap();
        let amb = builder.add_boundary("amb", Celsius(26.0)).unwrap();
        builder.connect(die, pkg, ThermalResistance(3.0)).unwrap();
        builder.connect(pkg, case, ThermalResistance(3.0)).unwrap();
        builder.connect(case, amb, ThermalResistance(9.0)).unwrap();
        let mut net = builder.build().unwrap();
        b.iter(|| {
            net.step(Seconds(0.1), &[(die, Watts(4.0))]).unwrap();
            black_box(net.temperature(die))
        })
    });
    group.bench_function("thermabox_step", |b| {
        let mut chamber = ThermaBox::new(ThermaBoxConfig::default()).unwrap();
        b.iter(|| {
            chamber.step(Seconds(1.0), Watts(4.0)).unwrap();
            black_box(chamber.air_temp())
        })
    });
    group.finish();
}

fn bench_silicon(c: &mut Criterion) {
    let mut group = c.benchmark_group("silicon");
    group.bench_function("power_laws", |b| {
        let params =
            PowerParams::new(0.42e-9, Watts(0.13), Volts(0.9), Celsius(26.0), 2.0, 0.029).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.3).unwrap();
        b.iter(|| {
            black_box(params.total_power(
                &die,
                Volts(1.05),
                MegaHertz(2265.0),
                Celsius(70.0),
                4.0,
                4.0,
            ))
        })
    });
    group.bench_function("voltage_bin_table", |b| {
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.37).unwrap();
        b.iter(|| black_box(voltage_bin_table(&slow, &fast, &die).unwrap()))
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.bench_function("kmeans_1d_300pts", |b| {
        let values: Vec<f64> = (0..300)
            .map(|i| f64::from(i % 7) + f64::from(i) * 1e-4)
            .collect();
        b.iter(|| black_box(kmeans_1d(&values, 7, 100, 42).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pi,
    bench_device,
    bench_thermal,
    bench_silicon,
    bench_stats
);
criterion_main!(benches);
