//! One Criterion benchmark per paper artifact.
//!
//! Each benchmark regenerates its table/figure end-to-end (at a reduced
//! protocol scale so a full `cargo bench` stays tractable) and reports how
//! long the regeneration takes. The *numbers* the paper reports come from
//! `cargo run -p pv-bench --bin repro -- all`, which runs the full-length
//! protocol; these benches exercise exactly the same code paths.

use accubench::experiments::{self, study, ExperimentConfig};
use pv_bench::timing::Criterion;
use pv_bench::{criterion_group, criterion_main};
use std::hint::black_box;

/// Small-but-representative protocol: long enough that devices heat into
/// their throttle bands, short enough to iterate.
fn bench_cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.12,
        iterations: 1,
        ..ExperimentConfig::quick()
    }
}

fn bench_artifacts(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("artifacts");
    group.sample_size(10);

    group.bench_function("table1", |b| {
        b.iter(|| black_box(experiments::table1::run().unwrap()))
    });
    group.bench_function("fig1", |b| {
        b.iter(|| black_box(experiments::fig1::run(&cfg).unwrap()))
    });
    group.bench_function("fig2", |b| {
        b.iter(|| black_box(experiments::fig2::run(&cfg).unwrap()))
    });
    group.bench_function("fig3", |b| {
        b.iter(|| black_box(experiments::fig3::run(&cfg).unwrap()))
    });
    group.bench_function("fig4_fig5", |b| {
        b.iter(|| black_box(experiments::fig45::run(&cfg).unwrap()))
    });
    group.bench_function("fig6_sd800", |b| {
        b.iter(|| black_box(study::plans::nexus5(&cfg).unwrap()))
    });
    group.bench_function("fig7_sd810", |b| {
        b.iter(|| black_box(study::plans::nexus6p(&cfg).unwrap()))
    });
    group.bench_function("fig8_sd820", |b| {
        b.iter(|| black_box(study::plans::lg_g5(&cfg).unwrap()))
    });
    group.bench_function("fig9_sd821", |b| {
        b.iter(|| black_box(study::plans::pixel(&cfg).unwrap()))
    });
    group.bench_function("fig10", |b| {
        b.iter(|| black_box(experiments::fig10::run(&cfg).unwrap()))
    });
    group.bench_function("fig11_fig12", |b| {
        b.iter(|| black_box(experiments::fig1112::run(&cfg).unwrap()))
    });
    group.bench_function("fig13", |b| {
        b.iter(|| black_box(experiments::fig13::run(&cfg).unwrap()))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(experiments::table2::run(&cfg).unwrap()))
    });
    group.bench_function("rsd", |b| {
        b.iter(|| black_box(experiments::rsd::run(&cfg).unwrap()))
    });
    group.bench_function("cluster", |b| {
        b.iter(|| black_box(experiments::cluster::run(&cfg, 10, 3, 7).unwrap()))
    });
    group.bench_function("ablation", |b| {
        b.iter(|| black_box(experiments::ablation::run(&cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
