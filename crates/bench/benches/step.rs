//! Per-device step throughput: Euler / RK4 reference vs the exponential
//! fast path.
//!
//! Three measurements per integrator, written to `BENCH_step.json` for
//! CI's perf gate:
//!
//! * **thermal step-rate** — `ThermalNetwork::step` throughput on the
//!   catalog Pixel RC topology at the protocol's busy cadence. This is
//!   the number the ≥ 5× gate reads: the exponential propagator replaces
//!   RK4's four derivative sweeps with one dense mat-vec pair;
//! * a **raw device-step loop** on one Pixel (`ns/step`, `steps/s`),
//!   with a counting global allocator snapshotted around the measured
//!   region — steady-state stepping must make **zero** heap allocations
//!   once caches are warm, and the bench aborts if the fast path does;
//! * **aggregated full sessions** at *default protocol settings*
//!   (3 min warmup, cooldown, 5 min workload) through the real harness.
//!   A single session is ~2 ms of wall-clock, so many repeats are summed
//!   to get a measurable number. The session ratio is reported honestly:
//!   probe sampling, battery accounting and throttle bookkeeping are
//!   integrator-independent, so the end-to-end ratio is smaller than the
//!   thermal step-rate ratio (Amdahl; see DESIGN.md §11).
//!
//! ```text
//! cargo bench -p pv-bench --bench step -- --steps 200000
//! ```
//!
//! Flags: `--steps N` (raw/thermal loop length, default 200000),
//! `--sessions N` (session repeats, default 60), `--out PATH` (default
//! `BENCH_step.json`), `--test` (libtest smoke mode: short loops so
//! `cargo bench -- --test` stays fast).

use accubench::harness::{Ambient, Harness};
use accubench::protocol::Protocol;
use pv_json::Json;
use pv_soc::catalog;
use pv_soc::device::{CpuDemand, Device, FrequencyMode, StepReport};
use pv_thermal::network::{Integrator, NodeId, ThermalNetwork, ThermalNetworkBuilder};
use pv_units::{Celsius, Seconds, ThermalCapacitance, ThermalResistance, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pass-through allocator that counts every allocation, so the bench can
/// prove the fast path's steady state touches the heap zero times.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

const INTEGRATORS: [Integrator; 3] = [Integrator::Euler, Integrator::Rk4, Integrator::Exponential];

struct Options {
    steps: usize,
    sessions: usize,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cargo bench -p pv-bench --bench step -- \
         [--steps N] [--sessions N] [--out PATH] [--test]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        steps: 200_000,
        sessions: 60,
        out: "BENCH_step.json".to_owned(),
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--steps" => {
                i += 1;
                opts.steps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--sessions" => {
                i += 1;
                opts.sessions = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            // `cargo bench -- --test` forwards libtest smoke flags to
            // every bench binary; shrink to a sanity-check run. (`--bench`
            // itself is cargo's routine marker — not smoke mode.)
            "--test" => opts.smoke = true,
            "--bench" => {}
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            // Ignore bare libtest filter strings.
            _ => {}
        }
        i += 1;
    }
    if opts.smoke {
        opts.steps = opts.steps.min(2_000);
        opts.sessions = opts.sessions.min(2);
    }
    opts
}

fn device() -> Device {
    catalog::pixel(0.5, "pixel-step-bench").unwrap()
}

/// The catalog Pixel RC topology (die/package/case chain to an ambient
/// boundary), built standalone so the thermal step-rate is measured on
/// exactly the network every Pixel device steps.
fn pixel_network(integrator: Integrator) -> (ThermalNetwork, NodeId) {
    let mut b = ThermalNetworkBuilder::new();
    let die = b
        .add_node("die", ThermalCapacitance(2.4), Celsius(26.0))
        .unwrap();
    let pkg = b
        .add_node("package", ThermalCapacitance(6.8), Celsius(26.0))
        .unwrap();
    let case = b
        .add_node("case", ThermalCapacitance(4.0), Celsius(26.0))
        .unwrap();
    let amb = b.add_boundary("ambient", Celsius(26.0)).unwrap();
    b.connect(die, pkg, ThermalResistance(3.0)).unwrap();
    b.connect(pkg, case, ThermalResistance(2.8)).unwrap();
    b.connect(case, amb, ThermalResistance(9.0)).unwrap();
    let mut network = b.build().unwrap();
    network.set_integrator(integrator);
    (network, die)
}

struct LoopRun {
    integrator: Integrator,
    ns_per_step: f64,
    steps_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
}

fn loop_json(r: &LoopRun) -> Json {
    let mut o = Json::object();
    o.insert("integrator", Json::String(r.integrator.as_str().to_owned()));
    o.insert("ns_per_step", Json::Number(r.ns_per_step));
    o.insert("steps_per_sec", Json::Number(r.steps_per_sec));
    o.insert("allocs", Json::Number(r.allocs as f64));
    o.insert("alloc_bytes", Json::Number(r.alloc_bytes as f64));
    o
}

/// How many times each timed loop repeats. The fastest trial is kept:
/// minimum-of-N is the standard noise-robust throughput estimator on a
/// shared host, where a single trial can be slowed 2× by neighbours.
const TRIALS: usize = 5;

/// Thermal step-rate: `ThermalNetwork::step` alone on the Pixel topology
/// at the busy cadence, heat held constant. This is the metric the ≥ 5×
/// CI gate reads.
fn thermal_loop(integrator: Integrator, steps: usize) -> LoopRun {
    let (mut network, die) = pixel_network(integrator);
    let dt = Seconds(0.1);
    let heat = [(die, Watts(2.5))];
    for _ in 0..500 {
        network.step(dt, &heat).unwrap();
    }
    let before = alloc_snapshot();
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..steps {
            network.step(dt, &heat).unwrap();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let after = alloc_snapshot();
    std::hint::black_box(network.temperature(die));
    LoopRun {
        integrator,
        ns_per_step: best * 1e9 / steps as f64,
        steps_per_sec: steps as f64 / best,
        allocs: after.0 - before.0,
        alloc_bytes: after.1 - before.1,
    }
}

/// Busy-steps one device `steps` times at the protocol's busy cadence,
/// after a warmup that settles the propagator/OPP/power caches. The
/// allocator is snapshotted only around the measured region.
fn raw_loop(integrator: Integrator, steps: usize) -> LoopRun {
    let dt = Seconds(0.1);
    let demand = CpuDemand::busy();
    let mode = FrequencyMode::Unconstrained;
    let mut best = f64::INFINITY;
    let mut allocs = 0;
    let mut alloc_bytes = 0;
    // A fresh device per trial keeps the battery from draining across
    // trials; the allocator is snapshotted only around the timed loops.
    for _ in 0..TRIALS {
        let mut d = device();
        d.set_integrator(integrator);
        let mut report = StepReport::empty();
        for _ in 0..500 {
            d.step_into(dt, demand, mode, &mut report).unwrap();
        }
        let before = alloc_snapshot();
        let start = Instant::now();
        for _ in 0..steps {
            d.step_into(dt, demand, mode, &mut report).unwrap();
        }
        best = best.min(start.elapsed().as_secs_f64());
        let after = alloc_snapshot();
        allocs += after.0 - before.0;
        alloc_bytes += after.1 - before.1;
    }
    LoopRun {
        integrator,
        ns_per_step: best * 1e9 / steps as f64,
        steps_per_sec: steps as f64 / best,
        allocs,
        alloc_bytes,
    }
}

/// Sums `repeats` full sessions at **default protocol settings** through
/// the real harness: the honest end-to-end number. One session is only a
/// couple of milliseconds of wall-clock, so repeats are aggregated.
fn session_runs(integrator: Integrator, repeats: usize) -> f64 {
    let protocol = Protocol::unconstrained().with_integrator(integrator);
    let mut total = 0.0;
    for _ in 0..repeats {
        let mut harness = Harness::new(protocol, Ambient::Fixed(Celsius(26.0))).unwrap();
        let mut d = device();
        let start = Instant::now();
        let session = harness.run_session(&mut d, 1).expect("session");
        total += start.elapsed().as_secs_f64();
        assert!(
            session.performance_summary().is_ok(),
            "session produced no surviving iterations"
        );
    }
    total
}

fn main() {
    let opts = parse_args();

    let mut thermals: Vec<LoopRun> = Vec::new();
    for integrator in INTEGRATORS {
        let run = thermal_loop(integrator, opts.steps);
        eprintln!(
            "thermal/{:<12} {:9.1} ns/step  {:11.0} steps/s  {} alloc(s), {} B",
            integrator.as_str(),
            run.ns_per_step,
            run.steps_per_sec,
            run.allocs,
            run.alloc_bytes
        );
        thermals.push(run);
    }

    let mut raws: Vec<LoopRun> = Vec::new();
    for integrator in INTEGRATORS {
        let run = raw_loop(integrator, opts.steps);
        eprintln!(
            "device/{:<12}  {:9.1} ns/step  {:11.0} steps/s  {} alloc(s), {} B",
            integrator.as_str(),
            run.ns_per_step,
            run.steps_per_sec,
            run.allocs,
            run.alloc_bytes
        );
        raws.push(run);
    }

    let mut sessions: Vec<(Integrator, f64)> = Vec::new();
    for integrator in INTEGRATORS {
        let secs = session_runs(integrator, opts.sessions);
        eprintln!(
            "session/{:<12} {secs:8.3} s total over {} run(s)",
            integrator.as_str(),
            opts.sessions
        );
        sessions.push((integrator, secs));
    }

    let thermal_of = |which: Integrator| {
        thermals
            .iter()
            .find(|r| r.integrator == which)
            .unwrap()
            .steps_per_sec
    };
    let secs_of = |which: Integrator| {
        sessions
            .iter()
            .find(|(i, _)| *i == which)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let thermal_speedup_vs_rk4 = thermal_of(Integrator::Exponential) / thermal_of(Integrator::Rk4);
    let thermal_speedup_vs_euler =
        thermal_of(Integrator::Exponential) / thermal_of(Integrator::Euler);
    let session_speedup_vs_rk4 = secs_of(Integrator::Rk4) / secs_of(Integrator::Exponential);
    let session_speedup_vs_euler = secs_of(Integrator::Euler) / secs_of(Integrator::Exponential);

    let mut out = Json::object();
    out.insert("steps", Json::Number(opts.steps as f64));
    out.insert("session_repeats", Json::Number(opts.sessions as f64));
    out.insert(
        "thermal",
        Json::Array(thermals.iter().map(loop_json).collect()),
    );
    out.insert("device", Json::Array(raws.iter().map(loop_json).collect()));
    out.insert(
        "session",
        Json::Array(
            sessions
                .iter()
                .map(|(integrator, secs)| {
                    let mut o = Json::object();
                    o.insert("integrator", Json::String(integrator.as_str().to_owned()));
                    o.insert("total_secs", Json::Number(*secs));
                    o
                })
                .collect(),
        ),
    );
    out.insert(
        "thermal_step_rate_speedup_exp_vs_rk4",
        Json::Number(thermal_speedup_vs_rk4),
    );
    out.insert(
        "thermal_step_rate_speedup_exp_vs_euler",
        Json::Number(thermal_speedup_vs_euler),
    );
    out.insert(
        "session_speedup_exp_vs_rk4",
        Json::Number(session_speedup_vs_rk4),
    );
    out.insert(
        "session_speedup_exp_vs_euler",
        Json::Number(session_speedup_vs_euler),
    );
    let steady_allocs: u64 = thermals.iter().chain(raws.iter()).map(|r| r.allocs).sum();
    out.insert("steady_state_allocs", Json::Number(steady_allocs as f64));
    std::fs::write(&opts.out, out.to_string_pretty() + "\n").expect("write BENCH_step.json");

    println!(
        "step/thermal step-rate: exponential {thermal_speedup_vs_rk4:.2}x vs rk4, \
         {thermal_speedup_vs_euler:.2}x vs euler"
    );
    println!(
        "step/session wall-clock: exponential {session_speedup_vs_rk4:.2}x vs rk4, \
         {session_speedup_vs_euler:.2}x vs euler"
    );
    println!("wrote {}", opts.out);
    if steady_allocs != 0 {
        eprintln!(
            "FATAL: steady-state stepping made {steady_allocs} heap allocation(s) \
             (must be zero for every integrator)"
        );
        std::process::exit(1);
    }
}
