//! Per-device step throughput: Euler / RK4 reference vs the exponential
//! fast path.
//!
//! Three measurements per integrator, written to `BENCH_step.json` in
//! the `pv-bench-report/v1` schema for `benchdiff`'s regression gate:
//!
//! * **thermal step-rate** — `ThermalNetwork::step` throughput on the
//!   catalog Pixel RC topology at the protocol's busy cadence. The
//!   derived `thermal_speedup_exp_vs_rk4` metric is the one the ≥ 5×
//!   floor reads: the exponential propagator replaces RK4's four
//!   derivative sweeps with one dense mat-vec pair;
//! * a **raw device-step loop** on one Pixel (`ns/step`), with a
//!   counting global allocator snapshotted around the measured region —
//!   steady-state stepping must make **zero** heap allocations once
//!   caches are warm, recorded as the `steady_state_allocs_zero` check;
//! * a **batched lockstep-lane loop** (`DeviceBatch::step_active`,
//!   DESIGN.md §15) at widths 1/8/64 on the fused exponential mat-mat
//!   path, ns per device-step, inside the same counting-allocator
//!   bracket — the lockstep steady state must also make zero heap
//!   allocations — with per-round `batch_step_speedup/wN` ratios
//!   against the width-1 lanes;
//! * **full sessions** at *default protocol settings* (3 min warmup,
//!   cooldown, 5 min workload) through the real harness, one timed
//!   sample per session. The session ratio is reported honestly: probe
//!   sampling, battery accounting and throttle bookkeeping are
//!   integrator-independent, so the end-to-end ratio is smaller than
//!   the thermal step-rate ratio (Amdahl; see DESIGN.md §11).
//!
//! Sampling discipline (DESIGN.md §14): iteration counts are **pinned**
//! (`--steps` per sample; one session per sample), each loop takes
//! `--samples` timed samples on clean state (fresh device per sample
//! for the raw loop), and every metric carries robust p50/p90/MAD
//! statistics with a `noisy` relative-spread guardrail — min-of-N
//! best-case numbers are gone.
//!
//! Samples are collected in **interleaved rounds** (round *i* times
//! euler, then rk4, then exponential) rather than one contiguous block
//! per integrator. A multi-second host slowdown therefore lands on all
//! integrators instead of silently biasing whichever one owned that
//! window, and each integrator's samples span the whole run so the
//! reported spread honestly includes host drift. Speedup ratios are
//! computed **per round** (rk4ᵢ/expᵢ) and summarised with the same
//! robust statistics: common-mode drift cancels in the per-round
//! quotient, giving ratios a real spread estimate instead of a
//! propagated guess.
//!
//! ```text
//! cargo bench -p pv-bench --bench step -- --steps 200000
//! ```
//!
//! Flags: `--steps N` (pinned iterations per raw/thermal sample,
//! default 200000), `--samples N` (timed samples per loop, default 10),
//! `--sessions N` (session samples, default 60), `--out PATH` (default
//! `BENCH_step.json`), `--test` (libtest smoke mode: short loops so
//! `cargo bench -- --test` stays fast).

use accubench::harness::{Ambient, Harness};
use accubench::protocol::Protocol;
use pv_bench::report::{BenchReport, Check, Metric};
use pv_bench::stats::{robust, RobustStats, DEFAULT_NOISE_THRESHOLD};
use pv_soc::batch::{BatchReport, DeviceBatch};
use pv_soc::catalog;
use pv_soc::device::{CpuDemand, Device, FrequencyMode, StepReport};
use pv_thermal::network::{Integrator, NodeId, ThermalNetwork, ThermalNetworkBuilder};
use pv_units::{Celsius, Seconds, ThermalCapacitance, ThermalResistance, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pass-through allocator that counts every allocation, so the bench can
/// prove the fast path's steady state touches the heap zero times.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const INTEGRATORS: [Integrator; 3] = [Integrator::Euler, Integrator::Rk4, Integrator::Exponential];

struct Options {
    steps: usize,
    samples: usize,
    sessions: usize,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cargo bench -p pv-bench --bench step -- \
         [--steps N] [--samples N] [--sessions N] [--out PATH] [--test]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        steps: 200_000,
        samples: 10,
        sessions: 60,
        out: "BENCH_step.json".to_owned(),
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--steps" => {
                i += 1;
                opts.steps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--samples" => {
                i += 1;
                opts.samples = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--sessions" => {
                i += 1;
                opts.sessions = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            // `cargo bench -- --test` forwards libtest smoke flags to
            // every bench binary; shrink to a sanity-check run. (`--bench`
            // itself is cargo's routine marker — not smoke mode.)
            "--test" => opts.smoke = true,
            "--bench" => {}
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            // Ignore bare libtest filter strings.
            _ => {}
        }
        i += 1;
    }
    if opts.smoke {
        opts.steps = opts.steps.min(2_000);
        opts.samples = opts.samples.min(3);
        opts.sessions = opts.sessions.min(4);
    }
    opts
}

fn device() -> Device {
    catalog::pixel(0.5, "pixel-step-bench").unwrap()
}

/// The catalog Pixel RC topology (die/package/case chain to an ambient
/// boundary), built standalone so the thermal step-rate is measured on
/// exactly the network every Pixel device steps.
fn pixel_network(integrator: Integrator) -> (ThermalNetwork, NodeId) {
    let mut b = ThermalNetworkBuilder::new();
    let die = b
        .add_node("die", ThermalCapacitance(2.4), Celsius(26.0))
        .unwrap();
    let pkg = b
        .add_node("package", ThermalCapacitance(6.8), Celsius(26.0))
        .unwrap();
    let case = b
        .add_node("case", ThermalCapacitance(4.0), Celsius(26.0))
        .unwrap();
    let amb = b.add_boundary("ambient", Celsius(26.0)).unwrap();
    b.connect(die, pkg, ThermalResistance(3.0)).unwrap();
    b.connect(pkg, case, ThermalResistance(2.8)).unwrap();
    b.connect(case, amb, ThermalResistance(9.0)).unwrap();
    let mut network = b.build().unwrap();
    network.set_integrator(integrator);
    (network, die)
}

/// One interleaved measurement: per-integrator sample vectors (in
/// [`INTEGRATORS`] order, round-major — `samples[k][i]` is integrator
/// `k`'s round-`i` sample) plus the allocations seen inside the timed
/// regions.
struct InterleavedRun {
    samples: [Vec<f64>; 3],
    allocs: u64,
}

/// Thermal step-rate: `ThermalNetwork::step` alone on the Pixel topology
/// at the busy cadence, heat held constant. One persistent network per
/// integrator, each warmed 500 steps to settle the propagator cache;
/// every round then times `steps` pinned iterations on each network in
/// turn.
fn thermal_interleaved(steps: usize, samples: usize) -> InterleavedRun {
    let dt = Seconds(0.1);
    let mut networks: Vec<(ThermalNetwork, NodeId)> =
        INTEGRATORS.iter().map(|&i| pixel_network(i)).collect();
    for (network, die) in &mut networks {
        let heat = [(*die, Watts(2.5))];
        for _ in 0..500 {
            network.step(dt, &heat).unwrap();
        }
    }
    // Reserve sample storage BEFORE the allocator snapshot — the vectors
    // themselves must not count against the zero-alloc budget.
    let mut out: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(samples));
    let before = alloc_count();
    for _ in 0..samples {
        for (k, (network, die)) in networks.iter_mut().enumerate() {
            let heat = [(*die, Watts(2.5))];
            let start = Instant::now();
            for _ in 0..steps {
                network.step(dt, &heat).unwrap();
            }
            out[k].push(start.elapsed().as_secs_f64() * 1e9 / steps as f64);
        }
    }
    let allocs = alloc_count() - before;
    for (network, die) in &networks {
        std::hint::black_box(network.temperature(*die));
    }
    InterleavedRun {
        samples: out,
        allocs,
    }
}

/// Busy-steps one device `steps` times per sample at the protocol's busy
/// cadence. Clean state per sample: a fresh device (so the battery never
/// drains across samples) warmed 500 steps to settle the
/// propagator/OPP/power caches; the allocator is read only around the
/// timed loop. Each round times all three integrators back to back.
fn raw_interleaved(steps: usize, samples: usize) -> InterleavedRun {
    let dt = Seconds(0.1);
    let demand = CpuDemand::busy();
    let mode = FrequencyMode::Unconstrained;
    let mut out: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(samples));
    let mut allocs = 0;
    for _ in 0..samples {
        for (k, &integrator) in INTEGRATORS.iter().enumerate() {
            let mut d = device();
            d.set_integrator(integrator);
            let mut report = StepReport::empty();
            for _ in 0..500 {
                d.step_into(dt, demand, mode, &mut report).unwrap();
            }
            let before = alloc_count();
            let start = Instant::now();
            for _ in 0..steps {
                d.step_into(dt, demand, mode, &mut report).unwrap();
            }
            out[k].push(start.elapsed().as_secs_f64() * 1e9 / steps as f64);
            allocs += alloc_count() - before;
        }
    }
    InterleavedRun {
        samples: out,
        allocs,
    }
}

/// Runs `samples` full sessions at **default protocol settings** through
/// the real harness, one timed sample per session: the honest
/// end-to-end number. Rounds interleave the three integrators.
fn sessions_interleaved(samples: usize) -> [Vec<f64>; 3] {
    let mut out: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(samples));
    for _ in 0..samples {
        for (k, &integrator) in INTEGRATORS.iter().enumerate() {
            let protocol = Protocol::unconstrained().with_integrator(integrator);
            let mut harness = Harness::new(protocol, Ambient::Fixed(Celsius(26.0))).unwrap();
            let mut d = device();
            let start = Instant::now();
            let session = harness.run_session(&mut d, 1).expect("session");
            out[k].push(start.elapsed().as_secs_f64() * 1e3);
            assert!(
                session.performance_summary().is_ok(),
                "session produced no surviving iterations"
            );
        }
    }
    out
}

/// Batch widths for the lockstep-lane loop: width 1 is the overhead
/// floor (one-lane batch vs plain scalar), 8 the cache sweet spot, 64
/// the honest cache-pressure data point (DESIGN.md §15).
const BATCH_WIDTHS: [usize; 3] = [1, 8, 64];

/// Busy-steps a [`DeviceBatch`] of each width through the fused
/// exponential mat-mat path, `steps` lockstep rounds per sample on a
/// fresh fleet (grades spread so no two lanes are identical), warmed 500
/// rounds to settle every cache; the counting allocator brackets the
/// timed loop — steady-state lockstep stepping must stay off the heap
/// exactly like the scalar path. Samples are ns per *device*-step, so
/// widths are directly comparable to `device_ns_per_step`.
fn batch_interleaved(steps: usize, samples: usize) -> InterleavedRun {
    let dt = Seconds(0.1);
    let demand = CpuDemand::busy();
    let mode = FrequencyMode::Unconstrained;
    let mut out: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(samples));
    let mut allocs = 0;
    for _ in 0..samples {
        for (k, &width) in BATCH_WIDTHS.iter().enumerate() {
            let lanes: Vec<Device> = (0..width)
                .map(|i| {
                    let grade = 0.05 + 0.9 * (i as f64) / (width.max(2) - 1) as f64;
                    let mut d = catalog::pixel(grade, format!("pixel-batch-{i:02}")).unwrap();
                    d.set_integrator(Integrator::Exponential);
                    d
                })
                .collect();
            let mut batch = DeviceBatch::new(lanes);
            let mut reports = BatchReport::new(width);
            let mut failures = Vec::new();
            let active = vec![true; width];
            for _ in 0..500 {
                batch.step_active(dt, demand, mode, &active, &mut reports, &mut failures);
                assert!(failures.is_empty(), "warmup lane failed");
            }
            // Pin total *device*-steps, not rounds, so every width does
            // the same amount of simulated work per sample.
            let rounds = (steps / width).max(1);
            let before = alloc_count();
            let start = Instant::now();
            for _ in 0..rounds {
                batch.step_active(dt, demand, mode, &active, &mut reports, &mut failures);
            }
            out[k].push(start.elapsed().as_secs_f64() * 1e9 / (rounds * width) as f64);
            allocs += alloc_count() - before;
            assert!(failures.is_empty(), "timed lane failed");
        }
    }
    InterleavedRun {
        samples: out,
        allocs,
    }
}

fn stats_of(samples: &[f64]) -> RobustStats {
    robust(samples, DEFAULT_NOISE_THRESHOLD).expect("sample count is always >= 1")
}

/// Index of `which` in [`INTEGRATORS`].
fn slot(which: Integrator) -> usize {
    INTEGRATORS.iter().position(|&i| i == which).unwrap()
}

fn main() {
    let opts = parse_args();
    let mut report = BenchReport::new("step", opts.samples);
    let mut steady_allocs = 0u64;

    let thermal = thermal_interleaved(opts.steps, opts.samples);
    for (k, integrator) in INTEGRATORS.iter().enumerate() {
        let stats = stats_of(&thermal.samples[k]);
        eprintln!(
            "thermal/{:<12} {:9.1} ns/step p50  spread {:4.1}%{}",
            integrator.as_str(),
            stats.p50,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" },
        );
        report.metrics.push(Metric::from_stats(
            format!("thermal_ns_per_step/{}", integrator.as_str()),
            "ns/step",
            false,
            &stats,
            opts.steps as u64,
        ));
    }
    steady_allocs += thermal.allocs;
    eprintln!(
        "thermal loops: {} alloc(s) in timed regions",
        thermal.allocs
    );

    let raw = raw_interleaved(opts.steps, opts.samples);
    for (k, integrator) in INTEGRATORS.iter().enumerate() {
        let stats = stats_of(&raw.samples[k]);
        eprintln!(
            "device/{:<12}  {:9.1} ns/step p50  spread {:4.1}%{}",
            integrator.as_str(),
            stats.p50,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" },
        );
        report.metrics.push(Metric::from_stats(
            format!("device_ns_per_step/{}", integrator.as_str()),
            "ns/step",
            false,
            &stats,
            opts.steps as u64,
        ));
    }
    steady_allocs += raw.allocs;
    eprintln!("device loops:  {} alloc(s) in timed regions", raw.allocs);

    let batch = batch_interleaved(opts.steps, opts.samples);
    for (k, width) in BATCH_WIDTHS.iter().enumerate() {
        let stats = stats_of(&batch.samples[k]);
        eprintln!(
            "batch/w{width:<11}  {:9.1} ns/device-step p50  spread {:4.1}%{}",
            stats.p50,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" },
        );
        report.metrics.push(Metric::from_stats(
            format!("batch_ns_per_device_step/w{width}"),
            "ns/step",
            false,
            &stats,
            opts.steps as u64,
        ));
    }
    steady_allocs += batch.allocs;
    eprintln!("batch loops:   {} alloc(s) in timed regions", batch.allocs);

    let sessions = sessions_interleaved(opts.sessions);
    for (k, integrator) in INTEGRATORS.iter().enumerate() {
        let stats = stats_of(&sessions[k]);
        eprintln!(
            "session/{:<12} {:8.3} ms p50 over {} session(s)  spread {:4.1}%{}",
            integrator.as_str(),
            stats.p50,
            opts.sessions,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" },
        );
        report.metrics.push(Metric::from_stats(
            format!("session_ms/{}", integrator.as_str()),
            "ms",
            false,
            &stats,
            1,
        ));
    }

    // Per-round speedup ratios (lower-is-better components, so exp-vs-rk4
    // speedup in round i is rk4ᵢ/expᵢ): common-mode host drift cancels in
    // each quotient, and the robust summary over the per-round ratios
    // gives the ratio a real spread/noisy verdict of its own.
    let mut ratio = |name: &str, num: &[f64], den: &[f64]| {
        let per_round: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
        let stats = stats_of(&per_round);
        report
            .metrics
            .push(Metric::from_stats(name, "x", true, &stats, 1));
        stats.p50
    };
    let exp_t = &thermal.samples[slot(Integrator::Exponential)];
    let thermal_speedup_vs_rk4 = ratio(
        "thermal_speedup_exp_vs_rk4",
        &thermal.samples[slot(Integrator::Rk4)],
        exp_t,
    );
    let thermal_speedup_vs_euler = ratio(
        "thermal_speedup_exp_vs_euler",
        &thermal.samples[slot(Integrator::Euler)],
        exp_t,
    );
    let exp_s = &sessions[slot(Integrator::Exponential)];
    let session_speedup_vs_rk4 = ratio(
        "session_speedup_exp_vs_rk4",
        &sessions[slot(Integrator::Rk4)],
        exp_s,
    );
    let session_speedup_vs_euler = ratio(
        "session_speedup_exp_vs_euler",
        &sessions[slot(Integrator::Euler)],
        exp_s,
    );
    // Lockstep-lane speedups vs the width-1 batch (same engine, no
    // batching): the per-device-step quotient isolates what the shared
    // mat-mat buys at each width.
    let batch_w1 = &batch.samples[0];
    let batch_speedup_w8 = ratio("batch_step_speedup/w8", batch_w1, &batch.samples[1]);
    let batch_speedup_w64 = ratio("batch_step_speedup/w64", batch_w1, &batch.samples[2]);

    report.checks.push(Check {
        name: "steady_state_allocs_zero".to_owned(),
        ok: steady_allocs == 0,
    });
    report.write(&opts.out).expect("write BENCH_step.json");

    println!(
        "step/thermal step-rate: exponential {thermal_speedup_vs_rk4:.2}x vs rk4, \
         {thermal_speedup_vs_euler:.2}x vs euler"
    );
    println!(
        "step/session wall-clock: exponential {session_speedup_vs_rk4:.2}x vs rk4, \
         {session_speedup_vs_euler:.2}x vs euler"
    );
    println!(
        "step/batched lanes: {batch_speedup_w8:.2}x at width 8, \
         {batch_speedup_w64:.2}x at width 64 vs width-1 lanes"
    );
    println!("wrote {}", opts.out);
    if steady_allocs != 0 {
        eprintln!(
            "FATAL: steady-state stepping made {steady_allocs} heap allocation(s) \
             (must be zero for every integrator)"
        );
        std::process::exit(1);
    }
}
