//! Fleet-sweep throughput: serial vs work-stealing parallel executor.
//!
//! Runs the same journald-free crowd sweep at several thread counts,
//! checks the merged reports are identical (the executor's determinism
//! contract), and writes machine-readable scaling numbers to
//! `BENCH_sweep.json` for CI's perf gate:
//!
//! ```text
//! cargo bench -p pv-bench --bench sweep -- --devices 192 --threads-list 1,2,4
//! ```
//!
//! Flags: `--devices N` (fleet size, default 768), `--threads-list a,b,c`
//! (default 1,2,4 plus the host's available parallelism), `--out PATH`
//! (default `BENCH_sweep.json`), `--test` (libtest smoke mode: a tiny
//! fleet, so `cargo bench -- --test` stays fast).

use accubench::crowd::{populate_parallel, CrowdDatabase, SweepConfig};
use accubench::executor;
use accubench::journal::CancelToken;
use accubench::protocol::Protocol;
use pv_faults::ALL_KINDS;
use pv_json::{Json, ToJson};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::time::Instant;

struct Options {
    devices: usize,
    threads_list: Vec<usize>,
    out: String,
    iterations: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: cargo bench -p pv-bench --bench sweep -- \
         [--devices N] [--threads-list a,b,c] [--out PATH] [--test]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        devices: 768,
        threads_list: Vec::new(),
        out: "BENCH_sweep.json".to_owned(),
        iterations: 2,
    };
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--devices" => {
                i += 1;
                opts.devices = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--threads-list" => {
                i += 1;
                opts.threads_list = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|t| t.trim().parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                            .unwrap_or_else(|_| usage())
                    })
                    .filter(|l| !l.is_empty() && l.iter().all(|&t| t > 0))
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            // `cargo bench -- --test` forwards libtest smoke flags to
            // every bench binary; shrink to a sanity-check run. (`--bench`
            // itself is cargo's routine marker — not smoke mode.)
            "--test" => smoke = true,
            "--bench" => {}
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            // Ignore bare libtest filter strings.
            _ => {}
        }
        i += 1;
    }
    if smoke {
        opts.devices = opts.devices.min(16);
    }
    if opts.threads_list.is_empty() {
        opts.threads_list = vec![1, 2, 4, executor::default_threads()];
    }
    if !opts.threads_list.contains(&1) {
        opts.threads_list.push(1); // speedup baseline
    }
    opts.threads_list.sort_unstable();
    opts.threads_list.dedup();
    opts
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-bench-{i:04}")).unwrap()
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    // Short protocol + faults: realistic uneven per-device cost without a
    // multi-minute serial baseline.
    let protocol = Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0));
    let cfg = SweepConfig::clean(protocol, opts.iterations).with_faults(
        0xC0FFEE,
        Seconds(1500.0),
        ALL_KINDS.to_vec(),
    );

    let mut runs: Vec<(usize, f64, String)> = Vec::new(); // (threads, secs, fingerprint)
    for &threads in &opts.threads_list {
        let devices = fleet(opts.devices);
        let mut db = CrowdDatabase::new(5.0).unwrap();
        let start = Instant::now();
        let sweep = populate_parallel(
            &mut db,
            "Pixel",
            devices,
            &cfg,
            None,
            &CancelToken::new(),
            threads,
        )
        .expect("sweep failed");
        let secs = start.elapsed().as_secs_f64();
        assert!(sweep.complete);
        runs.push((threads, secs, sweep.report.to_json().to_string_compact()));
        eprintln!(
            "threads={threads:>3}  {secs:7.3} s  {:8.1} devices/s",
            opts.devices as f64 / secs
        );
    }

    let serial_secs = runs
        .iter()
        .find(|(t, _, _)| *t == 1)
        .map(|(_, s, _)| *s)
        .expect("threads=1 baseline always present");
    let reports_identical = runs.iter().all(|(_, _, f)| *f == runs[0].2);

    let mut out = Json::object();
    out.insert("devices", Json::Number(opts.devices as f64));
    out.insert("iterations", Json::Number(opts.iterations as f64));
    out.insert(
        "host_parallelism",
        Json::Number(executor::default_threads() as f64),
    );
    out.insert("reports_identical", Json::Bool(reports_identical));
    out.insert(
        "runs",
        Json::Array(
            runs.iter()
                .map(|(threads, secs, _)| {
                    let mut r = Json::object();
                    r.insert("threads", Json::Number(*threads as f64));
                    r.insert("secs", Json::Number(*secs));
                    r.insert("devices_per_sec", Json::Number(opts.devices as f64 / secs));
                    r.insert("speedup", Json::Number(serial_secs / secs));
                    r
                })
                .collect(),
        ),
    );
    std::fs::write(&opts.out, out.to_string_pretty() + "\n").expect("write BENCH_sweep.json");

    for (threads, secs, _) in &runs {
        println!(
            "sweep/{} devices/threads={threads}: {:.3} s ({:.2}x vs serial)",
            opts.devices,
            secs,
            serial_secs / secs
        );
    }
    println!("wrote {}", opts.out);
    if !reports_identical {
        eprintln!("FATAL: reports diverged across thread counts");
        std::process::exit(1);
    }
}
