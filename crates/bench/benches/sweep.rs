//! Fleet-sweep throughput: serial vs work-stealing parallel executor.
//!
//! Runs the same journal-free crowd sweep at several thread counts,
//! checks the merged reports are identical (the executor's determinism
//! contract), and writes a `pv-bench-report/v1` report to
//! `BENCH_sweep.json` for `benchdiff`'s regression gate:
//!
//! ```text
//! cargo bench -p pv-bench --bench sweep -- --devices 192 --threads-list 1,2,4
//! ```
//!
//! Sampling discipline (DESIGN.md §14): each thread count is measured
//! `--samples` times, each sample a complete fleet sweep over a
//! freshly built fleet and database (the clean-state rule — nothing
//! warm carries over between configurations), with robust p50/p90/MAD
//! statistics and a `noisy` relative-spread guardrail instead of a
//! single unrepeatable number. Samples are taken in **interleaved
//! rounds** (round *i* sweeps every thread count once) so host drift
//! lands on every configuration instead of biasing one, and each
//! `speedup/tN` is computed **per round** (`secs_t1ᵢ / secs_tNᵢ`) —
//! common-mode drift cancels in the quotient, giving the ratio its own
//! robust spread and noisy verdict.
//!
//! A second section measures **batched lockstep stepping** (DESIGN.md
//! §15) on a *clean* (fault-free) fleet — the population batching
//! accelerates; armed fault plans make devices batch-inadmissible, so
//! they would only measure the scalar fallback. One worker thread, so
//! the `batch_speedup/bN` ratios isolate the kernel win from pool
//! scheduling; `benchdiff` holds the `batch_speedup/b8 ≥ 1.0×` floor
//! on single-core hosts too (`min_host_parallelism: 0`).
//!
//! A third section measures **stratified subsampling** (DESIGN.md §16)
//! on the streaming engine: a 100 000-device virtual population is
//! sampled down to n = 2000 (strata from the silicon-grade bins) and
//! only the selected devices are simulated. `sampled_devices_per_sec`
//! is the realised simulation rate; `sample_speedup/n2000` is the
//! per-round quotient of the *extrapolated* full-population cost (from
//! the clean width-1 rate measured in the batch section, same config)
//! over the measured sampled cost — `benchdiff` holds it ≥ 10× on any
//! host. The `aggregate_memory_bounded` check asserts the streaming
//! aggregate's footprint is identical for the n = 2000 sweep and a
//! 32-device sweep: O(bins + K), not O(devices).
//!
//! Flags: `--devices N` (fleet size, default 768), `--threads-list
//! a,b,c` (default 1,2,4 plus the host's available parallelism),
//! `--samples N` (sweeps per thread count, default 5), `--out PATH`
//! (default `BENCH_sweep.json`), `--test` (libtest smoke mode: a tiny
//! fleet and a shrunken sampled section, so `cargo bench -- --test`
//! stays fast).

use accubench::aggregate::ScoreAggregate;
use accubench::crowd::{
    populate_batched, populate_parallel, populate_streamed, CrowdDatabase, SweepConfig,
};
use accubench::executor;
use accubench::journal::CancelToken;
use accubench::protocol::Protocol;
use pv_bench::report::{BenchReport, Check, Metric};
use pv_bench::stats::{robust, DEFAULT_NOISE_THRESHOLD};
use pv_faults::ALL_KINDS;
use pv_json::ToJson;
use pv_silicon::binning::nexus5::N_BINS;
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_stats::sampling::{self, Strategy};
use pv_units::Seconds;
use std::time::Instant;

struct Options {
    devices: usize,
    threads_list: Vec<usize>,
    samples: usize,
    out: String,
    iterations: usize,
    sample_pop: usize,
    sample_n: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: cargo bench -p pv-bench --bench sweep -- \
         [--devices N] [--threads-list a,b,c] [--samples N] [--out PATH] [--test]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        devices: 768,
        threads_list: Vec::new(),
        samples: 5,
        out: "BENCH_sweep.json".to_owned(),
        iterations: 2,
        sample_pop: 100_000,
        sample_n: 2000,
    };
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--devices" => {
                i += 1;
                opts.devices = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--threads-list" => {
                i += 1;
                opts.threads_list = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|t| t.trim().parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                            .unwrap_or_else(|_| usage())
                    })
                    .filter(|l| !l.is_empty() && l.iter().all(|&t| t > 0))
                    .unwrap_or_else(|| usage());
            }
            "--samples" => {
                i += 1;
                opts.samples = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            // `cargo bench -- --test` forwards libtest smoke flags to
            // every bench binary; shrink to a sanity-check run. (`--bench`
            // itself is cargo's routine marker — not smoke mode.)
            "--test" => smoke = true,
            "--bench" => {}
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            // Ignore bare libtest filter strings.
            _ => {}
        }
        i += 1;
    }
    if smoke {
        opts.devices = opts.devices.min(16);
        opts.samples = opts.samples.min(2);
        opts.sample_pop = 2048;
        opts.sample_n = 64;
    }
    if opts.threads_list.is_empty() {
        opts.threads_list = vec![1, 2, 4, executor::default_threads()];
    }
    if !opts.threads_list.contains(&1) {
        opts.threads_list.push(1); // speedup baseline
    }
    opts.threads_list.sort_unstable();
    opts.threads_list.dedup();
    opts
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-bench-{i:04}")).unwrap()
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    // Short protocol + faults: realistic uneven per-device cost without a
    // multi-minute serial baseline.
    let protocol = Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0));
    let cfg = SweepConfig::clean(protocol, opts.iterations).with_faults(
        0xC0FFEE,
        Seconds(1500.0),
        ALL_KINDS.to_vec(),
    );

    // Interleaved rounds: round i sweeps every thread count once, so a
    // slow host window hits all configurations instead of biasing one.
    let mut runs: Vec<(usize, Vec<f64>)> = opts
        .threads_list
        .iter()
        .map(|&t| (t, Vec::with_capacity(opts.samples)))
        .collect();
    let mut reports_identical = true;
    let mut reference_fingerprint: Option<String> = None;
    for _ in 0..opts.samples {
        for (threads, secs_samples) in &mut runs {
            // Clean state per sample: fresh fleet, fresh database —
            // iteration count is pinned at exactly one full sweep.
            let devices = fleet(opts.devices);
            let mut db = CrowdDatabase::new(5.0).unwrap();
            let start = Instant::now();
            let sweep = populate_parallel(
                &mut db,
                "Pixel",
                devices,
                &cfg,
                None,
                &CancelToken::new(),
                *threads,
            )
            .expect("sweep failed");
            secs_samples.push(start.elapsed().as_secs_f64());
            assert!(sweep.complete);
            let fingerprint = sweep.report.to_json().to_string_compact();
            match &reference_fingerprint {
                None => reference_fingerprint = Some(fingerprint),
                Some(reference) => {
                    if *reference != fingerprint {
                        reports_identical = false;
                    }
                }
            }
        }
    }
    for (threads, secs_samples) in &runs {
        let best = secs_samples.iter().cloned().fold(f64::INFINITY, f64::min);
        eprintln!(
            "threads={threads:>3}  best {best:7.3} s over {} sample(s)  {:8.1} devices/s",
            secs_samples.len(),
            opts.devices as f64 / best
        );
    }

    let mut report = BenchReport::new("sweep", opts.samples);
    // Rate stats per thread count: one sample = one full fleet sweep.
    let rate_stats: Vec<(usize, pv_bench::stats::RobustStats)> = runs
        .iter()
        .map(|(threads, secs)| {
            let rates: Vec<f64> = secs.iter().map(|s| opts.devices as f64 / s).collect();
            let stats = robust(&rates, DEFAULT_NOISE_THRESHOLD)
                .expect("at least one sample per thread count");
            (*threads, stats)
        })
        .collect();
    for (threads, stats) in &rate_stats {
        report.metrics.push(Metric::from_stats(
            format!("devices_per_sec/t{threads}"),
            "devices/s",
            true,
            stats,
            1,
        ));
    }
    let serial_secs = runs
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, secs)| secs.clone())
        .expect("threads=1 baseline always present");
    let serial = rate_stats
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, s)| s.clone())
        .expect("threads=1 baseline always present");
    // Per-round speedups: round i's quotient secs_t1ᵢ/secs_tNᵢ cancels
    // whatever the host was doing during round i.
    for (threads, secs) in &runs {
        if *threads == 1 {
            continue;
        }
        let per_round: Vec<f64> = serial_secs
            .iter()
            .zip(secs)
            .map(|(t1, tn)| t1 / tn)
            .collect();
        let stats = robust(&per_round, DEFAULT_NOISE_THRESHOLD)
            .expect("at least one sample per thread count");
        report.metrics.push(Metric::from_stats(
            format!("speedup/t{threads}"),
            "x",
            true,
            &stats,
            1,
        ));
    }
    // --- Batched lockstep section (clean fleet, one worker) ---
    //
    // The faulted config above leaves almost every device inadmissible
    // for lockstep (its point is uneven per-device cost), so batching is
    // measured on the clean config it targets, on the exponential
    // integrator — the only scheme whose propagator can be hoisted into
    // the shared mat-mat (Euler/RK4 lanes run the per-lane fallback).
    // Width 1 routes through the same chunked engine as the scalar
    // per-device path and is the ratio's denominator; per-round
    // quotients cancel host drift exactly as the thread-speedup ratios
    // do.
    const BATCH_WIDTHS: [usize; 3] = [1, 8, 64];
    let clean_cfg = SweepConfig::clean(
        protocol.with_integrator(pv_thermal::network::Integrator::Exponential),
        opts.iterations,
    );
    let mut batch_runs: Vec<(usize, Vec<f64>)> = BATCH_WIDTHS
        .iter()
        .map(|&b| (b, Vec::with_capacity(opts.samples)))
        .collect();
    let mut batch_reports_identical = true;
    let mut batch_reference: Option<String> = None;
    for _ in 0..opts.samples {
        for (batch, secs_samples) in &mut batch_runs {
            let devices = fleet(opts.devices);
            let mut db = CrowdDatabase::new(5.0).unwrap();
            let start = Instant::now();
            let sweep = populate_batched(
                &mut db,
                "Pixel",
                devices,
                &clean_cfg,
                None,
                &CancelToken::new(),
                1,
                *batch,
            )
            .expect("batched sweep failed");
            secs_samples.push(start.elapsed().as_secs_f64());
            assert!(sweep.complete);
            let fingerprint = sweep.report.to_json().to_string_compact();
            match &batch_reference {
                None => batch_reference = Some(fingerprint),
                Some(reference) => {
                    if *reference != fingerprint {
                        batch_reports_identical = false;
                    }
                }
            }
        }
    }
    let batch_stats: Vec<(usize, pv_bench::stats::RobustStats)> = batch_runs
        .iter()
        .map(|(batch, secs)| {
            let rates: Vec<f64> = secs.iter().map(|s| opts.devices as f64 / s).collect();
            let stats = robust(&rates, DEFAULT_NOISE_THRESHOLD)
                .expect("at least one sample per batch width");
            (*batch, stats)
        })
        .collect();
    for (batch, stats) in &batch_stats {
        report.metrics.push(Metric::from_stats(
            format!("devices_per_sec/b{batch}"),
            "devices/s",
            true,
            stats,
            1,
        ));
    }
    let scalar_secs = batch_runs
        .iter()
        .find(|(b, _)| *b == 1)
        .map(|(_, secs)| secs.clone())
        .expect("width-1 baseline always present");
    for (batch, secs) in &batch_runs {
        if *batch == 1 {
            continue;
        }
        let per_round: Vec<f64> = scalar_secs.iter().zip(secs).map(|(b1, bn)| b1 / bn).collect();
        let stats = robust(&per_round, DEFAULT_NOISE_THRESHOLD)
            .expect("at least one sample per batch width");
        report.metrics.push(Metric::from_stats(
            format!("batch_speedup/b{batch}"),
            "x",
            true,
            &stats,
            1,
        ));
    }
    let scalar_rate = batch_stats
        .iter()
        .find(|(b, _)| *b == 1)
        .map(|(_, s)| s.p50)
        .expect("width-1 baseline always present");
    for (batch, stats) in &batch_stats {
        println!(
            "sweep/clean {} devices/batch={batch}: {:.1} devices/s p50 \
             ({:.2}x vs scalar, spread {:.1}%{})",
            opts.devices,
            stats.p50,
            stats.p50 / scalar_rate,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" }
        );
    }

    // --- Stratified subsampling section (streaming engine, DESIGN.md §16) ---
    //
    // Only the n selected devices of a pop-sized virtual population are
    // simulated; the full-population cost is *extrapolated* from the
    // clean width-1 rate measured above (same config, same engine
    // family), so the per-round quotient
    // `(pop · b1_secsᵢ / devices) / sampled_secsᵢ` cancels host drift
    // like the other ratios. Per-device cost is grade-independent to
    // first order, so the extrapolation is honest.
    let aux: Vec<f64> = (0..opts.sample_pop)
        .map(|i| 0.05 + 0.9 * (i as f64) / (opts.sample_pop.max(2) - 1) as f64)
        .collect();
    let selection = sampling::select(
        Strategy::Stratified,
        &aux,
        opts.sample_n,
        N_BINS as usize,
        0x5EED_BE9C,
    )
    .expect("stratified selection");
    let sampled_fleet = |indices: &[usize]| -> Vec<Device> {
        indices
            .iter()
            .map(|&i| catalog::pixel(aux[i], format!("pixel-bench-{i:06}")).unwrap())
            .collect()
    };
    let mut sampled_secs: Vec<f64> = Vec::with_capacity(opts.samples);
    let mut sampled_reports_identical = true;
    let mut sampled_reference: Option<String> = None;
    let mut sampled_bytes = 0usize;
    for _ in 0..opts.samples {
        let devices = sampled_fleet(&selection.indices);
        let mut agg = ScoreAggregate::new(5.0).unwrap();
        let start = Instant::now();
        let sweep = populate_streamed(
            &mut agg,
            "Pixel",
            devices,
            &clean_cfg,
            None,
            &CancelToken::new(),
            1,
            1,
            false,
        )
        .expect("sampled sweep failed");
        sampled_secs.push(start.elapsed().as_secs_f64());
        assert!(sweep.complete);
        let fingerprint = agg.to_json().to_string_compact();
        match &sampled_reference {
            None => sampled_reference = Some(fingerprint),
            Some(reference) => {
                if *reference != fingerprint {
                    sampled_reports_identical = false;
                }
            }
        }
        sampled_bytes = agg.approx_bytes();
    }
    // O(bins + K) memory contract: a 32-device streamed sweep (enough to
    // saturate the top-K leaderboard) must report exactly the same
    // aggregate footprint as the n-device sampled sweep.
    let mut small_agg = ScoreAggregate::new(5.0).unwrap();
    populate_streamed(
        &mut small_agg,
        "Pixel",
        sampled_fleet(&selection.indices[..32.min(selection.indices.len())]),
        &clean_cfg,
        None,
        &CancelToken::new(),
        1,
        1,
        false,
    )
    .expect("small streamed sweep failed");
    let aggregate_memory_bounded = small_agg.approx_bytes() == sampled_bytes;

    let sampled_rates: Vec<f64> = sampled_secs
        .iter()
        .map(|s| opts.sample_n as f64 / s)
        .collect();
    let sampled_stats =
        robust(&sampled_rates, DEFAULT_NOISE_THRESHOLD).expect("at least one sampled sample");
    report.metrics.push(Metric::from_stats(
        "sampled_devices_per_sec".to_owned(),
        "devices/s",
        true,
        &sampled_stats,
        1,
    ));
    let per_round: Vec<f64> = scalar_secs
        .iter()
        .zip(&sampled_secs)
        .map(|(b1, s)| (opts.sample_pop as f64 * b1 / opts.devices as f64) / s)
        .collect();
    let sample_speedup_stats =
        robust(&per_round, DEFAULT_NOISE_THRESHOLD).expect("at least one sampled sample");
    report.metrics.push(Metric::from_stats(
        format!("sample_speedup/n{}", opts.sample_n),
        "x",
        true,
        &sample_speedup_stats,
        1,
    ));
    println!(
        "sweep/sampled n={} of {}: {:.1} devices/s p50, {:.1}x vs extrapolated \
         full population (spread {:.1}%{})",
        opts.sample_n,
        opts.sample_pop,
        sampled_stats.p50,
        sample_speedup_stats.p50,
        sample_speedup_stats.rel_spread * 100.0,
        if sample_speedup_stats.noisy { " NOISY" } else { "" }
    );

    report.checks.push(Check {
        name: "reports_identical".to_owned(),
        ok: reports_identical,
    });
    report.checks.push(Check {
        name: "batch_reports_identical".to_owned(),
        ok: batch_reports_identical,
    });
    report.checks.push(Check {
        name: "sampled_reports_identical".to_owned(),
        ok: sampled_reports_identical,
    });
    report.checks.push(Check {
        name: "aggregate_memory_bounded".to_owned(),
        ok: aggregate_memory_bounded,
    });
    report.write(&opts.out).expect("write BENCH_sweep.json");

    for (threads, stats) in &rate_stats {
        println!(
            "sweep/{} devices/threads={threads}: {:.1} devices/s p50 \
             ({:.2}x vs serial, spread {:.1}%{})",
            opts.devices,
            stats.p50,
            stats.p50 / serial.p50,
            stats.rel_spread * 100.0,
            if stats.noisy { " NOISY" } else { "" }
        );
    }
    println!("wrote {}", opts.out);
    if !reports_identical {
        eprintln!("FATAL: reports diverged across thread counts/samples");
        std::process::exit(1);
    }
    if !batch_reports_identical {
        eprintln!("FATAL: reports diverged across batch widths/samples");
        std::process::exit(1);
    }
    if !sampled_reports_identical {
        eprintln!("FATAL: sampled aggregates diverged across samples");
        std::process::exit(1);
    }
    if !aggregate_memory_bounded {
        eprintln!("FATAL: streaming aggregate footprint grew with fleet size");
        std::process::exit(1);
    }
}
