//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--quick]
//! repro all [--quick]
//! repro list
//! ```
//!
//! Experiments: `table1 fig1 fig2 fig3 fig4 fig5 fig10 fig11 fig12 fig13
//! table2 rsd cluster ablation` (`fig6`–`fig9` are the per-SoC studies and
//! run as part of `table2`, or individually as `fig6 fig7 fig8 fig9`).
//!
//! By default the paper's full protocol is used (3 min warmup, 5 min
//! workload, 5 iterations); `--quick` shrinks it for a fast smoke pass,
//! `--json` emits machine-readable results instead of text tables, and
//! `--export <dir>` additionally writes plot-ready `.dat` files for the
//! figure experiments.
//!
//! `--integrator <euler|rk4|exponential>` selects the thermal integration
//! scheme for every experiment (default: `euler`, the seed-era reference).
//! `exponential` is the fast path — a dense discrete-time propagator that
//! steps the whole RC network in one fused matrix-vector product (see
//! DESIGN.md §11); figure verdicts match the reference within the
//! documented tolerance. In debug builds `--verbose` prints the per-run
//! step/substep counters so the integrators' work can be compared.
//!
//! `--faults <plan.toml>` arms a fault-injection plan for the
//! session-based `rsd` experiment (other experiments ignore it and run
//! clean): sessions then exercise the harness's retry/quarantine path and
//! report per-session verdicts.
//!
//! The `sweep` target runs a §VI crowd-population sweep over a fleet of
//! Pixel devices, and is where the durability options live:
//!
//! ```text
//! repro sweep [--quick] [--devices N] [--seed S] [--threads T] \
//!             [--batch B] [--journal run.journal] [--resume] [--json] \
//!             [--max-task-seconds W] [--on-failure abort|quarantine] \
//!             [--chaos-seed S] [--chaos-panics N] [--chaos-stalls N] \
//!             [--storage-faults plan.toml] \
//!             [--storage-escalation degrade|abort]
//! repro fsck <journal> [--repair]
//! repro verify <dir>
//! ```
//!
//! With `--journal` every finished device is appended to a write-ahead
//! journal (fsynced, self-checksummed) before the sweep moves on, so the
//! process can be killed — Ctrl-C, SIGTERM, power loss — and re-run with
//! `--resume` to continue from the last journaled device; the final
//! report is bit-identical to an uninterrupted run. `--seed` arms
//! per-device pseudo-random fault injection to exercise the resilient
//! path. `--threads` (default: the host's available parallelism) fans
//! device sessions out across a work-stealing pool; the report, database
//! and journal stay bit-identical to `--threads 1`. `--batch` (default 1)
//! runs each worker's chunk of clean devices in SIMD-friendly lockstep
//! through the shared-propagator mat-mat kernel (DESIGN.md §15); faulted,
//! chaos-struck, traced, and deadline-supervised devices fall back to the
//! scalar supervised path, so every byte of output stays identical at any
//! `--batch` × `--threads` combination.
//!
//! The sweep runs under the supervision layer (DESIGN.md §12):
//! `--max-task-seconds` arms a per-session wall-clock watchdog on top of
//! the always-armed simulated-time budget, and `--on-failure` picks the
//! escalation policy — `quarantine` (default) records the device as a
//! hole and completes the fleet `degraded` with exit 0; `abort` fails the
//! whole sweep on the first unrecovered device. `--chaos-panics` /
//! `--chaos-stalls` inject deterministic session panics and stalls into
//! `--chaos-seed`-chosen victims to exercise that machinery end to end.
//!
//! Storage durability (DESIGN.md §13): `--storage-faults <plan.toml>`
//! wraps the journal's filesystem in a deterministic fault injector
//! (`storage-enospc`, `storage-eio-transient`, `storage-eio-persistent`,
//! `storage-short-write`, `storage-fsync-lie`; `at`/`duration` count
//! storage operations, not seconds). The journal retries transients with
//! simulated-time backoff and rotates to a fresh segment on persistent
//! failures; when even that is exhausted, `--storage-escalation` decides:
//! `degrade` (default) stops journaling, finishes the sweep with exit 0
//! and reports the fleet `storage-degraded` — the sealed journal prefix
//! stays resumable — while `abort` fails the sweep with the I/O error.
//!
//! `repro fsck <journal>` verifies a run journal (all segments):
//! checksums, torn tails, header, duplicate outcomes. Exit 0 iff clean;
//! `--repair` truncates torn tails (the same healing `--resume` applies)
//! and re-checks. `repro verify <dir>` re-hashes an `--export` directory
//! against its manifest, naming each mismatched file with both checksums;
//! exit is non-zero on any mismatch.

use accubench::crowd::{populate_batched, CrowdDatabase, FleetVerdict, SweepConfig};
use accubench::executor;
use accubench::experiments::{self, study, ExperimentConfig};
use accubench::journal::Journal;
use accubench::protocol::Protocol;
use accubench::storage::{FaultyStorage, Storage, StorageEscalation};
use accubench::supervise::{OnFailure, SessionChaos, SupervisionPolicy};
use pv_faults::FaultPlan;
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::process::ExitCode;
use std::sync::Arc;

#[path = "../sigint.rs"]
mod sigint;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "rsd",
    "cluster",
    "ablation",
    "ambient",
    "ranking",
    "lowerbound",
    "forecast",
    "load",
    "skin",
    "aging",
    "governor",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--json] [--export dir] \
         [--faults plan.toml] [--integrator euler|rk4|exponential] [--verbose]"
    );
    eprintln!(
        "       repro sweep [--quick] [--json] [--devices N] [--seed S] \
         [--threads T] [--batch B] [--journal run.journal] [--resume] \
         [--integrator euler|rk4|exponential] \
         [--max-task-seconds W] [--on-failure abort|quarantine] \
         [--chaos-seed S] [--chaos-panics N] [--chaos-stalls N] \
         [--storage-faults plan.toml] [--storage-escalation degrade|abort]"
    );
    eprintln!("       repro fsck <journal> [--repair]");
    eprintln!("       repro verify <dir>");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let export_dir = value_of("--export");
    let faults_path = value_of("--faults");
    let devices_arg = value_of("--devices");
    let seed_arg = value_of("--seed");
    let journal_path = value_of("--journal");
    let threads_arg = value_of("--threads");
    let batch_arg = value_of("--batch");
    let integrator_arg = value_of("--integrator");
    let max_task_seconds_arg = value_of("--max-task-seconds");
    let on_failure_arg = value_of("--on-failure");
    let chaos_seed_arg = value_of("--chaos-seed");
    let chaos_panics_arg = value_of("--chaos-panics");
    let chaos_stalls_arg = value_of("--chaos-stalls");
    let storage_faults_path = value_of("--storage-faults");
    let storage_escalation_arg = value_of("--storage-escalation");
    let resume = args.iter().any(|a| a == "--resume");
    let verbose = args.iter().any(|a| a == "--verbose");
    let repair = args.iter().any(|a| a == "--repair");
    // Indices consumed as values of flags are not positional targets.
    let consumed: Vec<usize> = [
        "--export",
        "--faults",
        "--devices",
        "--seed",
        "--journal",
        "--threads",
        "--batch",
        "--integrator",
        "--max-task-seconds",
        "--on-failure",
        "--chaos-seed",
        "--chaos-panics",
        "--chaos-stalls",
        "--storage-faults",
        "--storage-escalation",
    ]
    .iter()
    .filter_map(|f| args.iter().position(|a| a == *f).map(|i| i + 1))
    .collect();
    let mut positional = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !consumed.contains(i))
        .map(|(_, a)| a);
    let target = match positional.next() {
        Some(t) => t.clone(),
        None => return usage(),
    };
    if target == "list" {
        println!("{}", EXPERIMENTS.join("\n"));
        return ExitCode::SUCCESS;
    }
    if target == "fsck" {
        let Some(path) = positional.next() else {
            eprintln!("fsck: missing journal path");
            return usage();
        };
        return run_fsck(path, repair);
    }
    if target == "verify" {
        let Some(dir) = positional.next() else {
            eprintln!("verify: missing export directory");
            return usage();
        };
        return match accubench::export::FigureExporter::verify(dir) {
            Ok(n) => {
                println!("verified {n} file(s) in {dir}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("verify: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(name) = &integrator_arg {
        match pv_thermal::network::Integrator::parse(name) {
            Some(i) => cfg = cfg.with_integrator(i),
            None => {
                eprintln!("--integrator: unknown scheme {name:?} (euler|rk4|exponential)");
                return ExitCode::FAILURE;
            }
        }
    }
    if target == "sweep" {
        let supervision =
            match parse_supervision(max_task_seconds_arg.as_deref(), on_failure_arg.as_deref()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
        let chaos = match parse_chaos(
            chaos_seed_arg.as_deref(),
            chaos_panics_arg.as_deref(),
            chaos_stalls_arg.as_deref(),
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let storage_escalation = match storage_escalation_arg.as_deref() {
            None => StorageEscalation::Degrade,
            Some(s) => match StorageEscalation::parse(s) {
                Some(e) => e,
                None => {
                    eprintln!("--storage-escalation: unknown policy {s:?} (degrade|abort)");
                    return ExitCode::FAILURE;
                }
            },
        };
        let storage_faults = match &storage_faults_path {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => match FaultPlan::from_toml_str(&text) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("--storage-faults: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => {
                    eprintln!("--storage-faults: could not read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        return run_sweep(
            &cfg,
            devices_arg.as_deref(),
            seed_arg.as_deref(),
            threads_arg.as_deref(),
            batch_arg.as_deref(),
            journal_path.as_deref(),
            resume,
            json,
            supervision,
            chaos,
            storage_faults.as_ref(),
            storage_escalation,
        );
    }
    let fault_plan = match &faults_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match FaultPlan::from_toml_str(&text) {
                Ok(plan) => {
                    eprintln!("armed fault plan {path}: {} event(s)", plan.events.len());
                    Some(plan)
                }
                Err(e) => {
                    eprintln!("--faults: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("--faults: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let emit = |value: pv_json::Json| {
        println!("{}", value.to_string_pretty());
    };
    let exporter = match &export_dir {
        Some(dir) => match accubench::export::FigureExporter::new(dir) {
            Ok(e) => Some(e),
            Err(e) => {
                eprintln!("--export: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let run_one = |name: &str| -> Result<(), accubench::BenchError> {
        if let Some(exporter) = &exporter {
            match name {
                "fig2" => {
                    let paths = exporter.export_fig2(&experiments::fig2::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig2", paths.len());
                }
                "fig4" | "fig5" => {
                    let paths = exporter.export_fig45(&experiments::fig45::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig4/fig5", paths.len());
                }
                "fig11" | "fig12" => {
                    let paths = exporter.export_fig1112(&experiments::fig1112::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig11/fig12", paths.len());
                }
                "fig6" => {
                    exporter.export_study("fig6", &study::plans::nexus5(&cfg)?)?;
                }
                "fig7" => {
                    exporter.export_study("fig7", &study::plans::nexus6p(&cfg)?)?;
                }
                "fig8" => {
                    exporter.export_study("fig8", &study::plans::lg_g5(&cfg)?)?;
                }
                "fig9" => {
                    exporter.export_study("fig9", &study::plans::pixel(&cfg)?)?;
                }
                _ => {}
            }
        }
        if json {
            let value = match name {
                "table1" => pv_json::ToJson::to_json(&experiments::table1::run()?),
                "fig1" => pv_json::ToJson::to_json(&experiments::fig1::run(&cfg)?),
                "fig2" => pv_json::ToJson::to_json(&experiments::fig2::run(&cfg)?),
                "fig3" => pv_json::ToJson::to_json(&experiments::fig3::run(&cfg)?),
                "fig4" | "fig5" => pv_json::ToJson::to_json(&experiments::fig45::run(&cfg)?),
                "fig6" => pv_json::ToJson::to_json(&study::plans::nexus5(&cfg)?),
                "fig7" => pv_json::ToJson::to_json(&study::plans::nexus6p(&cfg)?),
                "fig8" => pv_json::ToJson::to_json(&study::plans::lg_g5(&cfg)?),
                "fig9" => pv_json::ToJson::to_json(&study::plans::pixel(&cfg)?),
                "fig10" => pv_json::ToJson::to_json(&experiments::fig10::run(&cfg)?),
                "fig11" | "fig12" => pv_json::ToJson::to_json(&experiments::fig1112::run(&cfg)?),
                "fig13" => pv_json::ToJson::to_json(&experiments::fig13::run(&cfg)?),
                "table2" => pv_json::ToJson::to_json(&experiments::table2::run(&cfg)?),
                "rsd" => pv_json::ToJson::to_json(&experiments::rsd::run_with_faults(
                    &cfg,
                    fault_plan.as_ref(),
                )?),
                "cluster" => {
                    pv_json::ToJson::to_json(&experiments::cluster::run(&cfg, 30, 4, 2024)?)
                }
                "ablation" => pv_json::ToJson::to_json(&experiments::ablation::run(&cfg)?),
                "ambient" => pv_json::ToJson::to_json(&experiments::ambient_estimate::run(&cfg)?),
                "ranking" => pv_json::ToJson::to_json(&experiments::ranking::run(&cfg, 20, 2024)?),
                "lowerbound" => {
                    pv_json::ToJson::to_json(&experiments::lowerbound::run(&cfg, 500, 40, 31337)?)
                }
                "forecast" => pv_json::ToJson::to_json(&experiments::forecast::run(&cfg)?),
                "load" => pv_json::ToJson::to_json(&experiments::load_sensitivity::run(&cfg)?),
                "skin" => pv_json::ToJson::to_json(&experiments::skin::run(&cfg)?),
                "aging" => pv_json::ToJson::to_json(&experiments::aging::run(&cfg)?),
                "governor" => pv_json::ToJson::to_json(&experiments::governor_study::run(&cfg)?),
                other => {
                    eprintln!("unknown experiment: {other}");
                    return Err(accubench::BenchError::InvalidProtocol("unknown experiment"));
                }
            };
            emit(value);
            return Ok(());
        }
        match name {
            "table1" => {
                let t = experiments::table1::run()?;
                println!("{}", t.render());
                println!(
                    "worst model-vs-kernel deviation: {} mV\n",
                    t.worst_deviation_mv()
                );
            }
            "fig1" => {
                let f = experiments::fig1::run(&cfg)?;
                println!("{}", f.render());
                println!(
                    "paper: bin-4 ≈ +20% energy, ≈ +18-20% time vs bin-0; core shutdown at 80 °C",
                );
                println!(
                    "measured: worst-vs-best energy +{:.0}%, time +{:.0}%\n",
                    f.energy_excess_fraction() * 100.0,
                    f.time_excess_fraction() * 100.0
                );
            }
            "fig2" => {
                let f = experiments::fig2::run(&cfg)?;
                println!("{}", f.render());
                for s in &f.sweeps {
                    println!(
                        "{}: energy growth cool→hot {:.0}% (paper: 25-30%+)",
                        s.label,
                        s.energy_growth_fraction() * 100.0
                    );
                }
                println!();
            }
            "fig3" => {
                let f = experiments::fig3::run(&cfg)?;
                println!("{}", f.render());
                println!("paper: holds 26 ± 0.5 °C\n");
            }
            "fig4" => {
                let f = experiments::fig45::run(&cfg)?;
                println!("{}", f.unconstrained.render());
            }
            "fig5" => {
                let f = experiments::fig45::run(&cfg)?;
                println!("{}", f.fixed.render());
            }
            "fig6" => print_study(study::plans::nexus5(&cfg)?, 14.0, 19.0)?,
            "fig7" => print_study(study::plans::nexus6p(&cfg)?, 10.0, 12.0)?,
            "fig8" => print_study(study::plans::lg_g5(&cfg)?, 4.0, 10.0)?,
            "fig9" => print_study(study::plans::pixel(&cfg)?, 5.0, 9.0)?,
            "fig10" => {
                let f = experiments::fig10::run(&cfg)?;
                println!("{}", f.render());
                println!("paper: nominal-voltage Monsoon ≈ 20% throttled; 4.4 V ≈ battery",);
                println!(
                    "measured: nominal/battery {:.3}, max/battery {:.3}\n",
                    f.nominal_vs_battery(),
                    f.max_vs_battery()
                );
            }
            "fig11" => {
                let f = experiments::fig1112::run(&cfg)?;
                println!("{}", f.pixel.render());
                println!("paper: 7% perf gap matching the mean-frequency gap\n");
            }
            "fig12" => {
                let f = experiments::fig1112::run(&cfg)?;
                println!("{}", f.nexus5.render());
                println!("paper: 11% perf gap matching the mean-frequency gap\n");
            }
            "fig13" => {
                let f = experiments::fig13::run(&cfg)?;
                println!("{}", f.render());
                println!(
                    "SD-805 dip (paper: present): {}; efficiency trend slope: {:+.3}/gen\n",
                    f.sd805_dip(),
                    f.trend()?.slope
                );
            }
            "table2" => {
                let t2 = experiments::table2::run(&cfg)?;
                println!("{}", t2.render());
            }
            "rsd" => {
                let r = experiments::rsd::run_with_faults(&cfg, fault_plan.as_ref())?;
                println!("{}", r.render());
                println!("paper: average 1.1% RSD over ~300 iterations\n");
            }
            "cluster" => {
                let c = experiments::cluster::run(&cfg, 30, 4, 2024)?;
                println!("{}", c.render());
            }
            "ablation" => {
                let a = experiments::ablation::run(&cfg)?;
                println!("{}", a.render());
            }
            "ambient" => {
                let a = experiments::ambient_estimate::run(&cfg)?;
                println!("{}", a.render());
                println!("paper (§VI): cooldown-based ambient estimation called 'encouraging'\n");
            }
            "ranking" => {
                let r = experiments::ranking::run(&cfg, 20, 2024)?;
                println!("{}", r.render());
            }
            "lowerbound" => {
                let mc = experiments::lowerbound::run(&cfg, 500, 40, 31337)?;
                println!("{}", mc.render()?);
                println!("paper (§VII): Table II spreads are minimum lower bounds\n");
            }
            "forecast" => {
                let f = experiments::forecast::run(&cfg)?;
                println!("{}", f.render()?);
            }
            "load" => {
                let l = experiments::load_sensitivity::run(&cfg)?;
                println!("{}", l.render());
            }
            "skin" => {
                let s = experiments::skin::run(&cfg)?;
                println!("{}", s.render());
            }
            "aging" => {
                let a = experiments::aging::run(&cfg)?;
                println!("{}", a.render());
                println!("paper (§IV-C): input-voltage throttling 'reminiscent of old iPhones being throttled'\n");
            }
            "governor" => {
                let g = experiments::governor_study::run(&cfg)?;
                println!("{}", g.render());
            }
            other => {
                eprintln!("unknown experiment: {other}");
                return Err(accubench::BenchError::InvalidProtocol("unknown experiment"));
            }
        }
        Ok(())
    };

    let targets: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![target.as_str()]
    };
    for t in targets {
        println!("==== {t} ====");
        if let Err(e) = run_one(t) {
            eprintln!("{t} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if verbose {
        #[cfg(debug_assertions)]
        {
            let (steps, substeps) = pv_thermal::network::step_stats::snapshot();
            eprintln!(
                "[step-stats] integrator={}: {steps} thermal steps, {substeps} substeps",
                cfg.integrator
            );
        }
        #[cfg(not(debug_assertions))]
        eprintln!("[step-stats] only collected in debug builds");
    }
    ExitCode::SUCCESS
}

/// Parses `--max-task-seconds` / `--on-failure` into a supervision policy.
fn parse_supervision(
    max_task_seconds: Option<&str>,
    on_failure: Option<&str>,
) -> Result<SupervisionPolicy, String> {
    let mut policy = SupervisionPolicy::default();
    if let Some(w) = max_task_seconds {
        match w.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => policy.max_wall_seconds = Some(secs),
            _ => return Err("--max-task-seconds must be a positive number".into()),
        }
    }
    if let Some(mode) = on_failure {
        policy.on_failure = OnFailure::parse(mode)
            .ok_or_else(|| format!("--on-failure: unknown policy {mode:?} (abort|quarantine)"))?;
    }
    Ok(policy)
}

/// Parses the `--chaos-*` flags into an optional session-chaos plan.
fn parse_chaos(
    seed: Option<&str>,
    panics: Option<&str>,
    stalls: Option<&str>,
) -> Result<Option<SessionChaos>, String> {
    let count = |arg: Option<&str>, flag: &str| -> Result<usize, String> {
        arg.map_or(Ok(0), |v| {
            v.parse()
                .map_err(|_| format!("{flag} must be a non-negative integer"))
        })
    };
    let panics = count(panics, "--chaos-panics")?;
    let stalls = count(stalls, "--chaos-stalls")?;
    if panics == 0 && stalls == 0 {
        if seed.is_some() {
            return Err("--chaos-seed needs --chaos-panics or --chaos-stalls".into());
        }
        return Ok(None);
    }
    let seed: u64 = match seed.map_or(Ok(0), str::parse) {
        Ok(s) => s,
        Err(_) => return Err("--chaos-seed must be an unsigned integer".into()),
    };
    Ok(Some(SessionChaos::new(seed, panics, stalls)))
}

/// Builds the `sweep` fleet: `n` Pixels with speed grades spread evenly
/// across the binning range, labelled `pixel-crowd-NNN`.
fn fleet(n: usize) -> Result<Vec<Device>, accubench::BenchError> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).map_err(Into::into)
        })
        .collect()
}

/// The `sweep` target: a journaled, interruptible, parallel, supervised
/// crowd-population sweep.
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    cfg: &ExperimentConfig,
    devices_arg: Option<&str>,
    seed_arg: Option<&str>,
    threads_arg: Option<&str>,
    batch_arg: Option<&str>,
    journal_path: Option<&str>,
    resume: bool,
    json: bool,
    supervision: SupervisionPolicy,
    chaos: Option<SessionChaos>,
    storage_faults: Option<&FaultPlan>,
    storage_escalation: StorageEscalation,
) -> ExitCode {
    let n: usize = match devices_arg.map_or(Ok(100), str::parse) {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("--devices must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let seed: Option<u64> = match seed_arg.map(str::parse).transpose() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("--seed must be an unsigned integer");
            return ExitCode::FAILURE;
        }
    };
    let threads: usize = match threads_arg.map_or(Ok(executor::default_threads()), str::parse) {
        Ok(t) if t > 0 => t,
        _ => {
            eprintln!("--threads must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let batch: usize = match batch_arg.map_or(Ok(1), str::parse) {
        Ok(b) if b > 0 => b,
        _ => {
            eprintln!("--batch must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    if resume && journal_path.is_none() {
        eprintln!("--resume requires --journal <path>");
        return ExitCode::FAILURE;
    }

    // `scaled` also pins the configured integrator, which the journal's
    // config digest covers: a journal written with one scheme cannot be
    // silently resumed with another.
    let protocol = cfg.scaled(Protocol::unconstrained());
    let mut sweep_cfg = SweepConfig::clean(protocol, cfg.iterations)
        .with_supervision(supervision)
        .with_storage_escalation(storage_escalation);
    if let Some(seed) = seed {
        let iteration = protocol.warmup.value() + protocol.workload.value() + 100.0;
        sweep_cfg = sweep_cfg.with_faults(
            seed,
            Seconds(iteration * 10.0),
            pv_faults::ALL_KINDS.to_vec(),
        );
    }
    if let Some(chaos) = chaos {
        sweep_cfg = sweep_cfg.with_chaos(chaos);
    }

    // The journal's filesystem, optionally wrapped in the deterministic
    // storage fault injector.
    let storage = match storage_faults {
        Some(plan) => {
            let armed = plan.events.iter().filter(|e| e.kind.is_storage()).count();
            eprintln!("armed storage fault plan: {armed} storage event(s)");
            Storage::new(Arc::new(FaultyStorage::new(Storage::os(), plan)))
        }
        None => Storage::os(),
    };
    let mut journal = match journal_path {
        Some(path) => match Journal::open_with(storage, path) {
            Ok(j) => {
                if j.dropped_bytes() > 0 {
                    eprintln!(
                        "journal {path}: dropped {} byte(s) of torn tail",
                        j.dropped_bytes()
                    );
                }
                if !j.recovered().is_empty() && !resume {
                    eprintln!(
                        "journal {path} already holds {} record(s); \
                         pass --resume to continue it or choose a fresh path",
                        j.recovered().len()
                    );
                    return ExitCode::FAILURE;
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("--journal: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let devices = match fleet(n) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut db = match CrowdDatabase::new(5.0) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cancel = sigint::install();
    eprintln!(
        "sweeping {n} device(s), {} iteration(s) each, {threads} thread(s){} ...",
        cfg.iterations,
        journal_path.map_or_else(String::new, |p| format!(", journal {p}")),
    );
    let sweep = match populate_batched(
        &mut db,
        "Pixel",
        devices,
        &sweep_cfg,
        journal.as_mut(),
        &cancel,
        threads,
        batch,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if sweep.resumed > 0 {
        eprintln!("resumed {} journaled device(s)", sweep.resumed);
    }
    if let Some(j) = &journal {
        let h = j.health();
        if !h.is_clean() {
            eprintln!(
                "journal storage health: {} retried write(s), {} segment rotation(s), \
                 {:.2}s simulated backoff",
                h.retries, h.rotations, h.backoff_sim_s,
            );
            for event in &h.events {
                eprintln!("  {event}");
            }
        }
    }
    if let Some(detail) = &sweep.storage_degraded {
        // Degrade policy: the sweep itself is whole (exit 0 below), but
        // only the sealed journal prefix survives a crash from here on.
        eprintln!("storage degraded: {detail}");
        eprintln!("fleet verdict: {}", sweep.fleet_verdict());
    }
    if json {
        println!(
            "{}",
            pv_json::ToJson::to_json(&sweep.report).to_string_pretty()
        );
    } else {
        println!("{}", sweep.report);
        if let Some(spread) = db.model_spread_percent("Pixel") {
            println!("model spread: {spread:.1}%");
        }
        if sweep.report.fleet_verdict() == FleetVerdict::Degraded {
            // Holes bias a plain mean, so a degraded fleet reports a
            // bootstrap interval computed over the survivors only.
            if let Some(ci) = sweep.report.survivor_ci(&db, "Pixel") {
                println!(
                    "survivor score: {:.1} (95% bootstrap CI {:.1}..{:.1} over {} device(s))",
                    ci.point,
                    ci.lo,
                    ci.hi,
                    sweep.report.outcomes.len() - sweep.report.quarantined_devices(),
                );
            }
        }
    }
    if !sweep.complete {
        eprintln!(
            "interrupted after {} device(s); resume with: repro sweep --journal {} --resume",
            sweep.report.outcomes.len(),
            journal_path.unwrap_or("<path>"),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `fsck` target: verify a run journal across all its segments, and
/// with `--repair` truncate torn tails (the same healing `--resume`
/// applies) and re-check. Exit 0 iff the journal ends up clean.
fn run_fsck(path: &str, repair: bool) -> ExitCode {
    let report = match accubench::journal::fsck(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsck: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if report.is_clean() {
        println!("{path}: clean");
        return ExitCode::SUCCESS;
    }
    if !repair {
        eprintln!("{path}: dirty; `repro fsck {path} --repair` truncates torn tails");
        return ExitCode::FAILURE;
    }
    // Opening the journal performs exactly the repair `--resume` would:
    // every segment's torn tail is truncated away.
    match Journal::open(path) {
        Ok(j) => eprintln!(
            "repaired: {} record(s) kept across {} segment(s)",
            j.recovered().len(),
            j.segments().len(),
        ),
        Err(e) => {
            eprintln!("fsck --repair: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match accubench::journal::fsck(path) {
        Ok(r) => {
            println!("{r}");
            if r.is_clean() {
                println!("{path}: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("{path}: still dirty after repair (not a torn-tail problem)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fsck: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_study(
    s: study::SocStudy,
    paper_perf: f64,
    paper_energy: f64,
) -> Result<(), accubench::BenchError> {
    println!("{}", s.render()?);
    println!(
        "paper: perf variation {paper_perf:.0}%, energy variation {paper_energy:.0}% | measured: perf {:.1}%, energy {:.1}%\n",
        s.perf_spread_percent()?,
        s.energy_spread_percent()?
    );
    Ok(())
}
