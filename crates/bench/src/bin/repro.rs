//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--quick]
//! repro all [--quick]
//! repro list
//! ```
//!
//! Experiments: `table1 fig1 fig2 fig3 fig4 fig5 fig10 fig11 fig12 fig13
//! table2 rsd cluster ablation` (`fig6`–`fig9` are the per-SoC studies and
//! run as part of `table2`, or individually as `fig6 fig7 fig8 fig9`).
//!
//! By default the paper's full protocol is used (3 min warmup, 5 min
//! workload, 5 iterations); `--quick` shrinks it for a fast smoke pass,
//! `--json` emits machine-readable results instead of text tables, and
//! `--export <dir>` additionally writes plot-ready `.dat` files for the
//! figure experiments.
//!
//! `--integrator <euler|rk4|exponential>` selects the thermal integration
//! scheme for every experiment (default: `euler`, the seed-era reference).
//! `exponential` is the fast path — a dense discrete-time propagator that
//! steps the whole RC network in one fused matrix-vector product (see
//! DESIGN.md §11); figure verdicts match the reference within the
//! documented tolerance. In debug builds `--verbose` prints the per-run
//! step/substep counters so the integrators' work can be compared.
//!
//! `--faults <plan.toml>` arms a fault-injection plan for the
//! session-based `rsd` experiment (other experiments ignore it and run
//! clean): sessions then exercise the harness's retry/quarantine path and
//! report per-session verdicts.
//!
//! The `sweep` target runs a §VI crowd-population sweep over a fleet of
//! Pixel devices, and is where the durability options live:
//!
//! ```text
//! repro sweep [--quick] [--devices N] [--seed S] [--threads T] \
//!             [--batch B] [--journal run.journal] [--resume] [--json] \
//!             [--sample K] [--sample-strategy srs|rss|stratified] \
//!             [--sample-seed S] [--oracle] \
//!             [--max-task-seconds W] [--on-failure abort|quarantine] \
//!             [--chaos-seed S] [--chaos-panics N] [--chaos-stalls N] \
//!             [--storage-faults plan.toml] \
//!             [--storage-escalation degrade|abort]
//! repro fsck <journal> [--repair]
//! repro verify <dir>
//! ```
//!
//! With `--journal` every finished device is appended to a write-ahead
//! journal (fsynced, self-checksummed) before the sweep moves on, so the
//! process can be killed — Ctrl-C, SIGTERM, power loss — and re-run with
//! `--resume` to continue from the last journaled device; the final
//! report is bit-identical to an uninterrupted run. `--seed` arms
//! per-device pseudo-random fault injection to exercise the resilient
//! path. `--threads` (default: the host's available parallelism) fans
//! device sessions out across a work-stealing pool; the report, database
//! and journal stay bit-identical to `--threads 1`. `--batch` (default 1)
//! runs each worker's chunk of clean devices in SIMD-friendly lockstep
//! through the shared-propagator mat-mat kernel (DESIGN.md §15); faulted,
//! chaos-struck, traced, and deadline-supervised devices fall back to the
//! scalar supervised path, so every byte of output stays identical at any
//! `--batch` × `--threads` combination.
//!
//! By default the sweep runs on the **streaming aggregation engine**
//! (DESIGN.md §16): per-worker partial aggregates (count/mean/M2 moments, a
//! fixed-bin score histogram, a bounded top-10 leaderboard) merged in a
//! canonical order on an absolute 64-device grid, so memory stays
//! O(bins + K + holes) however large the fleet, and the aggregate's bits —
//! like the journal's — are identical at any `--threads`/`--batch` and
//! across kill+resume. `--oracle` switches back to the exact full-fleet
//! [`CrowdDatabase`] path (every score retained in memory), the reference
//! the streaming engine is tested against.
//!
//! `--sample K` turns the sweep into a *subsampled census* of the
//! `--devices N` virtual population: only K devices are simulated, chosen
//! by `--sample-strategy` (default `stratified` — two-phase stratified over
//! the silicon-grade bins; `rss` is ranked-set sampling on grade; `srs` is
//! simple random sampling) under the deterministic `--sample-seed`. The
//! report then quotes mean/RSD/p50/p90 *estimates with 95 % bootstrap
//! confidence intervals* instead of exact fleet statistics (error bands:
//! DESIGN.md §16). The sampling plan enters the config digest, so a
//! sampled journal resumes only under the identical plan. `--sample`
//! requires the streaming engine (it is incompatible with `--oracle`).
//!
//! The sweep runs under the supervision layer (DESIGN.md §12):
//! `--max-task-seconds` arms a per-session wall-clock watchdog on top of
//! the always-armed simulated-time budget, and `--on-failure` picks the
//! escalation policy — `quarantine` (default) records the device as a
//! hole and completes the fleet `degraded` with exit 0; `abort` fails the
//! whole sweep on the first unrecovered device. `--chaos-panics` /
//! `--chaos-stalls` inject deterministic session panics and stalls into
//! `--chaos-seed`-chosen victims to exercise that machinery end to end.
//!
//! Storage durability (DESIGN.md §13): `--storage-faults <plan.toml>`
//! wraps the journal's filesystem in a deterministic fault injector
//! (`storage-enospc`, `storage-eio-transient`, `storage-eio-persistent`,
//! `storage-short-write`, `storage-fsync-lie`; `at`/`duration` count
//! storage operations, not seconds). The journal retries transients with
//! simulated-time backoff and rotates to a fresh segment on persistent
//! failures; when even that is exhausted, `--storage-escalation` decides:
//! `degrade` (default) stops journaling, finishes the sweep with exit 0
//! and reports the fleet `storage-degraded` — the sealed journal prefix
//! stays resumable — while `abort` fails the sweep with the I/O error.
//!
//! `repro fsck <journal>` verifies a run journal (all segments):
//! checksums, torn tails, header, duplicate outcomes. Exit 0 iff clean;
//! `--repair` truncates torn tails (the same healing `--resume` applies)
//! and re-checks. `repro verify <dir>` re-hashes an `--export` directory
//! against its manifest, naming each mismatched file with both checksums;
//! exit is non-zero on any mismatch.

use accubench::aggregate::ScoreAggregate;
use accubench::crowd::{
    populate_batched, populate_streamed, CrowdDatabase, FleetVerdict, SamplePlan, SweepConfig,
};
use accubench::executor;
use accubench::experiments::{self, study, ExperimentConfig};
use accubench::journal::Journal;
use accubench::protocol::Protocol;
use accubench::storage::{FaultyStorage, Storage, StorageEscalation};
use accubench::supervise::{OnFailure, SessionChaos, SupervisionPolicy};
use pv_faults::FaultPlan;
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_stats::sampling::{self, Strategy, StratumSample};
use pv_units::Seconds;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

#[path = "../sigint.rs"]
mod sigint;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "rsd",
    "cluster",
    "ablation",
    "ambient",
    "ranking",
    "lowerbound",
    "forecast",
    "load",
    "skin",
    "aging",
    "governor",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--json] [--export dir] \
         [--faults plan.toml] [--integrator euler|rk4|exponential] [--verbose]"
    );
    eprintln!(
        "       repro sweep [--quick] [--json] [--devices N] [--seed S] \
         [--threads T] [--batch B] [--journal run.journal] [--resume] \
         [--sample K] [--sample-strategy srs|rss|stratified] \
         [--sample-seed S] [--oracle] \
         [--integrator euler|rk4|exponential] \
         [--max-task-seconds W] [--on-failure abort|quarantine] \
         [--chaos-seed S] [--chaos-panics N] [--chaos-stalls N] \
         [--storage-faults plan.toml] [--storage-escalation degrade|abort]"
    );
    eprintln!("       repro fsck <journal> [--repair]");
    eprintln!("       repro verify <dir>");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let export_dir = value_of("--export");
    let faults_path = value_of("--faults");
    let devices_arg = value_of("--devices");
    let seed_arg = value_of("--seed");
    let journal_path = value_of("--journal");
    let threads_arg = value_of("--threads");
    let batch_arg = value_of("--batch");
    let integrator_arg = value_of("--integrator");
    let max_task_seconds_arg = value_of("--max-task-seconds");
    let on_failure_arg = value_of("--on-failure");
    let chaos_seed_arg = value_of("--chaos-seed");
    let chaos_panics_arg = value_of("--chaos-panics");
    let chaos_stalls_arg = value_of("--chaos-stalls");
    let storage_faults_path = value_of("--storage-faults");
    let storage_escalation_arg = value_of("--storage-escalation");
    let sample_arg = value_of("--sample");
    let sample_strategy_arg = value_of("--sample-strategy");
    let sample_seed_arg = value_of("--sample-seed");
    let oracle = args.iter().any(|a| a == "--oracle");
    let resume = args.iter().any(|a| a == "--resume");
    let verbose = args.iter().any(|a| a == "--verbose");
    let repair = args.iter().any(|a| a == "--repair");
    // Indices consumed as values of flags are not positional targets.
    let consumed: Vec<usize> = [
        "--export",
        "--faults",
        "--devices",
        "--seed",
        "--journal",
        "--threads",
        "--batch",
        "--integrator",
        "--max-task-seconds",
        "--on-failure",
        "--chaos-seed",
        "--chaos-panics",
        "--chaos-stalls",
        "--storage-faults",
        "--storage-escalation",
        "--sample",
        "--sample-strategy",
        "--sample-seed",
    ]
    .iter()
    .filter_map(|f| args.iter().position(|a| a == *f).map(|i| i + 1))
    .collect();
    let mut positional = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !consumed.contains(i))
        .map(|(_, a)| a);
    let target = match positional.next() {
        Some(t) => t.clone(),
        None => return usage(),
    };
    if target == "list" {
        println!("{}", EXPERIMENTS.join("\n"));
        return ExitCode::SUCCESS;
    }
    if target == "fsck" {
        let Some(path) = positional.next() else {
            eprintln!("fsck: missing journal path");
            return usage();
        };
        return run_fsck(path, repair);
    }
    if target == "verify" {
        let Some(dir) = positional.next() else {
            eprintln!("verify: missing export directory");
            return usage();
        };
        return match accubench::export::FigureExporter::verify(dir) {
            Ok(n) => {
                println!("verified {n} file(s) in {dir}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("verify: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(name) = &integrator_arg {
        match pv_thermal::network::Integrator::parse(name) {
            Some(i) => cfg = cfg.with_integrator(i),
            None => {
                eprintln!("--integrator: unknown scheme {name:?} (euler|rk4|exponential)");
                return ExitCode::FAILURE;
            }
        }
    }
    if target == "sweep" {
        let supervision =
            match parse_supervision(max_task_seconds_arg.as_deref(), on_failure_arg.as_deref()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
        let chaos = match parse_chaos(
            chaos_seed_arg.as_deref(),
            chaos_panics_arg.as_deref(),
            chaos_stalls_arg.as_deref(),
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let storage_escalation = match storage_escalation_arg.as_deref() {
            None => StorageEscalation::Degrade,
            Some(s) => match StorageEscalation::parse(s) {
                Some(e) => e,
                None => {
                    eprintln!("--storage-escalation: unknown policy {s:?} (degrade|abort)");
                    return ExitCode::FAILURE;
                }
            },
        };
        let storage_faults = match &storage_faults_path {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => match FaultPlan::from_toml_str(&text) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("--storage-faults: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => {
                    eprintln!("--storage-faults: could not read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let sampling = match parse_sampling(
            sample_arg.as_deref(),
            sample_strategy_arg.as_deref(),
            sample_seed_arg.as_deref(),
            oracle,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        return run_sweep(
            &cfg,
            devices_arg.as_deref(),
            seed_arg.as_deref(),
            threads_arg.as_deref(),
            batch_arg.as_deref(),
            journal_path.as_deref(),
            resume,
            json,
            supervision,
            chaos,
            storage_faults.as_ref(),
            storage_escalation,
            sampling,
            oracle,
        );
    }
    let fault_plan = match &faults_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match FaultPlan::from_toml_str(&text) {
                Ok(plan) => {
                    eprintln!("armed fault plan {path}: {} event(s)", plan.events.len());
                    Some(plan)
                }
                Err(e) => {
                    eprintln!("--faults: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("--faults: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let emit = |value: pv_json::Json| {
        println!("{}", value.to_string_pretty());
    };
    let exporter = match &export_dir {
        Some(dir) => match accubench::export::FigureExporter::new(dir) {
            Ok(e) => Some(e),
            Err(e) => {
                eprintln!("--export: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let run_one = |name: &str| -> Result<(), accubench::BenchError> {
        if let Some(exporter) = &exporter {
            match name {
                "fig2" => {
                    let paths = exporter.export_fig2(&experiments::fig2::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig2", paths.len());
                }
                "fig4" | "fig5" => {
                    let paths = exporter.export_fig45(&experiments::fig45::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig4/fig5", paths.len());
                }
                "fig11" | "fig12" => {
                    let paths = exporter.export_fig1112(&experiments::fig1112::run(&cfg)?)?;
                    eprintln!("exported {} file(s) for fig11/fig12", paths.len());
                }
                "fig6" => {
                    exporter.export_study("fig6", &study::plans::nexus5(&cfg)?)?;
                }
                "fig7" => {
                    exporter.export_study("fig7", &study::plans::nexus6p(&cfg)?)?;
                }
                "fig8" => {
                    exporter.export_study("fig8", &study::plans::lg_g5(&cfg)?)?;
                }
                "fig9" => {
                    exporter.export_study("fig9", &study::plans::pixel(&cfg)?)?;
                }
                _ => {}
            }
        }
        if json {
            let value = match name {
                "table1" => pv_json::ToJson::to_json(&experiments::table1::run()?),
                "fig1" => pv_json::ToJson::to_json(&experiments::fig1::run(&cfg)?),
                "fig2" => pv_json::ToJson::to_json(&experiments::fig2::run(&cfg)?),
                "fig3" => pv_json::ToJson::to_json(&experiments::fig3::run(&cfg)?),
                "fig4" | "fig5" => pv_json::ToJson::to_json(&experiments::fig45::run(&cfg)?),
                "fig6" => pv_json::ToJson::to_json(&study::plans::nexus5(&cfg)?),
                "fig7" => pv_json::ToJson::to_json(&study::plans::nexus6p(&cfg)?),
                "fig8" => pv_json::ToJson::to_json(&study::plans::lg_g5(&cfg)?),
                "fig9" => pv_json::ToJson::to_json(&study::plans::pixel(&cfg)?),
                "fig10" => pv_json::ToJson::to_json(&experiments::fig10::run(&cfg)?),
                "fig11" | "fig12" => pv_json::ToJson::to_json(&experiments::fig1112::run(&cfg)?),
                "fig13" => pv_json::ToJson::to_json(&experiments::fig13::run(&cfg)?),
                "table2" => pv_json::ToJson::to_json(&experiments::table2::run(&cfg)?),
                "rsd" => pv_json::ToJson::to_json(&experiments::rsd::run_with_faults(
                    &cfg,
                    fault_plan.as_ref(),
                )?),
                "cluster" => {
                    pv_json::ToJson::to_json(&experiments::cluster::run(&cfg, 30, 4, 2024)?)
                }
                "ablation" => pv_json::ToJson::to_json(&experiments::ablation::run(&cfg)?),
                "ambient" => pv_json::ToJson::to_json(&experiments::ambient_estimate::run(&cfg)?),
                "ranking" => pv_json::ToJson::to_json(&experiments::ranking::run(&cfg, 20, 2024)?),
                "lowerbound" => {
                    pv_json::ToJson::to_json(&experiments::lowerbound::run(&cfg, 500, 40, 31337)?)
                }
                "forecast" => pv_json::ToJson::to_json(&experiments::forecast::run(&cfg)?),
                "load" => pv_json::ToJson::to_json(&experiments::load_sensitivity::run(&cfg)?),
                "skin" => pv_json::ToJson::to_json(&experiments::skin::run(&cfg)?),
                "aging" => pv_json::ToJson::to_json(&experiments::aging::run(&cfg)?),
                "governor" => pv_json::ToJson::to_json(&experiments::governor_study::run(&cfg)?),
                other => {
                    eprintln!("unknown experiment: {other}");
                    return Err(accubench::BenchError::InvalidProtocol("unknown experiment"));
                }
            };
            emit(value);
            return Ok(());
        }
        match name {
            "table1" => {
                let t = experiments::table1::run()?;
                println!("{}", t.render());
                println!(
                    "worst model-vs-kernel deviation: {} mV\n",
                    t.worst_deviation_mv()
                );
            }
            "fig1" => {
                let f = experiments::fig1::run(&cfg)?;
                println!("{}", f.render());
                println!(
                    "paper: bin-4 ≈ +20% energy, ≈ +18-20% time vs bin-0; core shutdown at 80 °C",
                );
                println!(
                    "measured: worst-vs-best energy +{:.0}%, time +{:.0}%\n",
                    f.energy_excess_fraction() * 100.0,
                    f.time_excess_fraction() * 100.0
                );
            }
            "fig2" => {
                let f = experiments::fig2::run(&cfg)?;
                println!("{}", f.render());
                for s in &f.sweeps {
                    println!(
                        "{}: energy growth cool→hot {:.0}% (paper: 25-30%+)",
                        s.label,
                        s.energy_growth_fraction() * 100.0
                    );
                }
                println!();
            }
            "fig3" => {
                let f = experiments::fig3::run(&cfg)?;
                println!("{}", f.render());
                println!("paper: holds 26 ± 0.5 °C\n");
            }
            "fig4" => {
                let f = experiments::fig45::run(&cfg)?;
                println!("{}", f.unconstrained.render());
            }
            "fig5" => {
                let f = experiments::fig45::run(&cfg)?;
                println!("{}", f.fixed.render());
            }
            "fig6" => print_study(study::plans::nexus5(&cfg)?, 14.0, 19.0)?,
            "fig7" => print_study(study::plans::nexus6p(&cfg)?, 10.0, 12.0)?,
            "fig8" => print_study(study::plans::lg_g5(&cfg)?, 4.0, 10.0)?,
            "fig9" => print_study(study::plans::pixel(&cfg)?, 5.0, 9.0)?,
            "fig10" => {
                let f = experiments::fig10::run(&cfg)?;
                println!("{}", f.render());
                println!("paper: nominal-voltage Monsoon ≈ 20% throttled; 4.4 V ≈ battery",);
                println!(
                    "measured: nominal/battery {:.3}, max/battery {:.3}\n",
                    f.nominal_vs_battery(),
                    f.max_vs_battery()
                );
            }
            "fig11" => {
                let f = experiments::fig1112::run(&cfg)?;
                println!("{}", f.pixel.render());
                println!("paper: 7% perf gap matching the mean-frequency gap\n");
            }
            "fig12" => {
                let f = experiments::fig1112::run(&cfg)?;
                println!("{}", f.nexus5.render());
                println!("paper: 11% perf gap matching the mean-frequency gap\n");
            }
            "fig13" => {
                let f = experiments::fig13::run(&cfg)?;
                println!("{}", f.render());
                println!(
                    "SD-805 dip (paper: present): {}; efficiency trend slope: {:+.3}/gen\n",
                    f.sd805_dip(),
                    f.trend()?.slope
                );
            }
            "table2" => {
                let t2 = experiments::table2::run(&cfg)?;
                println!("{}", t2.render());
            }
            "rsd" => {
                let r = experiments::rsd::run_with_faults(&cfg, fault_plan.as_ref())?;
                println!("{}", r.render());
                println!("paper: average 1.1% RSD over ~300 iterations\n");
            }
            "cluster" => {
                let c = experiments::cluster::run(&cfg, 30, 4, 2024)?;
                println!("{}", c.render());
            }
            "ablation" => {
                let a = experiments::ablation::run(&cfg)?;
                println!("{}", a.render());
            }
            "ambient" => {
                let a = experiments::ambient_estimate::run(&cfg)?;
                println!("{}", a.render());
                println!("paper (§VI): cooldown-based ambient estimation called 'encouraging'\n");
            }
            "ranking" => {
                let r = experiments::ranking::run(&cfg, 20, 2024)?;
                println!("{}", r.render());
            }
            "lowerbound" => {
                let mc = experiments::lowerbound::run(&cfg, 500, 40, 31337)?;
                println!("{}", mc.render()?);
                println!("paper (§VII): Table II spreads are minimum lower bounds\n");
            }
            "forecast" => {
                let f = experiments::forecast::run(&cfg)?;
                println!("{}", f.render()?);
            }
            "load" => {
                let l = experiments::load_sensitivity::run(&cfg)?;
                println!("{}", l.render());
            }
            "skin" => {
                let s = experiments::skin::run(&cfg)?;
                println!("{}", s.render());
            }
            "aging" => {
                let a = experiments::aging::run(&cfg)?;
                println!("{}", a.render());
                println!("paper (§IV-C): input-voltage throttling 'reminiscent of old iPhones being throttled'\n");
            }
            "governor" => {
                let g = experiments::governor_study::run(&cfg)?;
                println!("{}", g.render());
            }
            other => {
                eprintln!("unknown experiment: {other}");
                return Err(accubench::BenchError::InvalidProtocol("unknown experiment"));
            }
        }
        Ok(())
    };

    let targets: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![target.as_str()]
    };
    for t in targets {
        println!("==== {t} ====");
        if let Err(e) = run_one(t) {
            eprintln!("{t} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if verbose {
        #[cfg(debug_assertions)]
        {
            let (steps, substeps) = pv_thermal::network::step_stats::snapshot();
            eprintln!(
                "[step-stats] integrator={}: {steps} thermal steps, {substeps} substeps",
                cfg.integrator
            );
        }
        #[cfg(not(debug_assertions))]
        eprintln!("[step-stats] only collected in debug builds");
    }
    ExitCode::SUCCESS
}

/// Parses `--max-task-seconds` / `--on-failure` into a supervision policy.
fn parse_supervision(
    max_task_seconds: Option<&str>,
    on_failure: Option<&str>,
) -> Result<SupervisionPolicy, String> {
    let mut policy = SupervisionPolicy::default();
    if let Some(w) = max_task_seconds {
        match w.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => policy.max_wall_seconds = Some(secs),
            _ => return Err("--max-task-seconds must be a positive number".into()),
        }
    }
    if let Some(mode) = on_failure {
        policy.on_failure = OnFailure::parse(mode)
            .ok_or_else(|| format!("--on-failure: unknown policy {mode:?} (abort|quarantine)"))?;
    }
    Ok(policy)
}

/// Parses the `--chaos-*` flags into an optional session-chaos plan.
fn parse_chaos(
    seed: Option<&str>,
    panics: Option<&str>,
    stalls: Option<&str>,
) -> Result<Option<SessionChaos>, String> {
    let count = |arg: Option<&str>, flag: &str| -> Result<usize, String> {
        arg.map_or(Ok(0), |v| {
            v.parse()
                .map_err(|_| format!("{flag} must be a non-negative integer"))
        })
    };
    let panics = count(panics, "--chaos-panics")?;
    let stalls = count(stalls, "--chaos-stalls")?;
    if panics == 0 && stalls == 0 {
        if seed.is_some() {
            return Err("--chaos-seed needs --chaos-panics or --chaos-stalls".into());
        }
        return Ok(None);
    }
    let seed: u64 = match seed.map_or(Ok(0), str::parse) {
        Ok(s) => s,
        Err(_) => return Err("--chaos-seed must be an unsigned integer".into()),
    };
    Ok(Some(SessionChaos::new(seed, panics, stalls)))
}

/// Parses the `--sample*` flags into an optional sampling plan.
fn parse_sampling(
    sample: Option<&str>,
    strategy: Option<&str>,
    seed: Option<&str>,
    oracle: bool,
) -> Result<Option<SamplePlan>, String> {
    let Some(k) = sample else {
        if strategy.is_some() || seed.is_some() {
            return Err("--sample-strategy/--sample-seed need --sample <n>".into());
        }
        return Ok(None);
    };
    if oracle {
        return Err("--sample needs the streaming engine; drop --oracle".into());
    }
    let n: usize = match k.parse() {
        Ok(n) if n > 0 => n,
        _ => return Err("--sample must be a positive integer".into()),
    };
    let strategy = match strategy {
        None => Strategy::Stratified,
        Some(s) => Strategy::parse(s)
            .map_err(|_| format!("--sample-strategy: unknown design {s:?} (srs|rss|stratified)"))?,
    };
    let seed: u64 = match seed.map_or(Ok(0), str::parse) {
        Ok(s) => s,
        Err(_) => return Err("--sample-seed must be an unsigned integer".into()),
    };
    // `population` is filled in from --devices by run_sweep.
    Ok(Some(SamplePlan {
        population: 0,
        n,
        strategy,
        seed,
    }))
}

/// Speed grade of virtual device `i` in a population of `population`:
/// spread evenly across the binning range.
fn grade_of(i: usize, population: usize) -> f64 {
    0.05 + 0.9 * (i as f64) / (population.max(2) - 1) as f64
}

/// Builds sweep devices for the given population indices: Pixels graded by
/// [`grade_of`], labelled `pixel-crowd-NNN` by population index (so a
/// sampled fleet keeps its population identities).
fn fleet_of(
    indices: impl Iterator<Item = usize>,
    population: usize,
) -> Result<Vec<Device>, accubench::BenchError> {
    indices
        .map(|i| {
            catalog::pixel(grade_of(i, population), format!("pixel-crowd-{i:03}"))
                .map_err(Into::into)
        })
        .collect()
}

/// Prints journal storage-health details after a sweep.
fn report_journal_health(journal: &Option<Journal>) {
    if let Some(j) = journal {
        let h = j.health();
        if !h.is_clean() {
            eprintln!(
                "journal storage health: {} retried write(s), {} segment rotation(s), \
                 {:.2}s simulated backoff",
                h.retries, h.rotations, h.backoff_sim_s,
            );
            for event in &h.events {
                eprintln!("  {event}");
            }
        }
    }
}

/// The `sweep` target: a journaled, interruptible, parallel, supervised
/// crowd-population sweep — streaming by default, exact with `--oracle`,
/// subsampled with `--sample`.
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    cfg: &ExperimentConfig,
    devices_arg: Option<&str>,
    seed_arg: Option<&str>,
    threads_arg: Option<&str>,
    batch_arg: Option<&str>,
    journal_path: Option<&str>,
    resume: bool,
    json: bool,
    supervision: SupervisionPolicy,
    chaos: Option<SessionChaos>,
    storage_faults: Option<&FaultPlan>,
    storage_escalation: StorageEscalation,
    sampling_plan: Option<SamplePlan>,
    oracle: bool,
) -> ExitCode {
    let n: usize = match devices_arg.map_or(Ok(100), str::parse) {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("--devices must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let seed: Option<u64> = match seed_arg.map(str::parse).transpose() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("--seed must be an unsigned integer");
            return ExitCode::FAILURE;
        }
    };
    let threads: usize = match threads_arg.map_or(Ok(executor::default_threads()), str::parse) {
        Ok(t) if t > 0 => t,
        _ => {
            eprintln!("--threads must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let batch: usize = match batch_arg.map_or(Ok(1), str::parse) {
        Ok(b) if b > 0 => b,
        _ => {
            eprintln!("--batch must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    if resume && journal_path.is_none() {
        eprintln!("--resume requires --journal <path>");
        return ExitCode::FAILURE;
    }

    // `scaled` also pins the configured integrator, which the journal's
    // config digest covers: a journal written with one scheme cannot be
    // silently resumed with another.
    let protocol = cfg.scaled(Protocol::unconstrained());
    let mut sweep_cfg = SweepConfig::clean(protocol, cfg.iterations)
        .with_supervision(supervision)
        .with_storage_escalation(storage_escalation);
    if let Some(seed) = seed {
        let iteration = protocol.warmup.value() + protocol.workload.value() + 100.0;
        sweep_cfg = sweep_cfg.with_faults(
            seed,
            Seconds(iteration * 10.0),
            pv_faults::ALL_KINDS.to_vec(),
        );
    }
    if let Some(chaos) = chaos {
        sweep_cfg = sweep_cfg.with_chaos(chaos);
    }

    // Resolve the sampling plan against the population and select the
    // simulated subset. The selection is deterministic for the plan, so a
    // resumed run re-derives the identical device list (and the digest
    // guards against resuming under a different plan).
    let selection = match sampling_plan {
        None => None,
        Some(mut plan) => {
            if plan.n > n {
                eprintln!("--sample {} exceeds --devices {n}", plan.n);
                return ExitCode::FAILURE;
            }
            plan.population = n;
            let aux: Vec<f64> = (0..n).map(|i| grade_of(i, n)).collect();
            let strata = pv_silicon::binning::nexus5::N_BINS as usize;
            let sel = match sampling::select(plan.strategy, &aux, plan.n, strata, plan.seed) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("--sample: {e}");
                    return ExitCode::FAILURE;
                }
            };
            sweep_cfg = sweep_cfg.with_sampling(plan.clone());
            Some((plan, sel))
        }
    };

    // The journal's filesystem, optionally wrapped in the deterministic
    // storage fault injector.
    let storage = match storage_faults {
        Some(plan) => {
            let armed = plan.events.iter().filter(|e| e.kind.is_storage()).count();
            eprintln!("armed storage fault plan: {armed} storage event(s)");
            Storage::new(Arc::new(FaultyStorage::new(Storage::os(), plan)))
        }
        None => Storage::os(),
    };
    let journal = match journal_path {
        Some(path) => match Journal::open_with(storage, path) {
            Ok(j) => {
                if j.dropped_bytes() > 0 {
                    eprintln!(
                        "journal {path}: dropped {} byte(s) of torn tail",
                        j.dropped_bytes()
                    );
                }
                if !j.recovered().is_empty() && !resume {
                    eprintln!(
                        "journal {path} already holds {} record(s); \
                         pass --resume to continue it or choose a fresh path",
                        j.recovered().len()
                    );
                    return ExitCode::FAILURE;
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("--journal: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let devices = match &selection {
        Some((plan, sel)) => fleet_of(sel.indices.iter().copied(), plan.population),
        None => fleet_of(0..n, n),
    };
    let devices = match devices {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cancel = sigint::install();
    let sweeping = match &selection {
        Some((plan, _)) => format!(
            "sweeping {} sampled of {n} device(s) ({})",
            plan.n,
            plan.strategy.as_str()
        ),
        None => format!("sweeping {n} device(s)"),
    };
    eprintln!(
        "{sweeping}, {} iteration(s) each, {threads} thread(s){}{} ...",
        cfg.iterations,
        if oracle { ", oracle engine" } else { "" },
        journal_path.map_or_else(String::new, |p| format!(", journal {p}")),
    );

    if oracle {
        return run_sweep_oracle(
            devices,
            &sweep_cfg,
            journal,
            &cancel,
            threads,
            batch,
            json,
            journal_path,
        );
    }
    run_sweep_streamed(
        devices,
        &sweep_cfg,
        journal,
        &cancel,
        threads,
        batch,
        json,
        journal_path,
        selection,
    )
}

/// The exact reference path: every score retained in a [`CrowdDatabase`].
#[allow(clippy::too_many_arguments)]
fn run_sweep_oracle(
    devices: Vec<Device>,
    sweep_cfg: &SweepConfig,
    mut journal: Option<Journal>,
    cancel: &accubench::journal::CancelToken,
    threads: usize,
    batch: usize,
    json: bool,
    journal_path: Option<&str>,
) -> ExitCode {
    let mut db = match CrowdDatabase::new(5.0) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = match populate_batched(
        &mut db,
        "Pixel",
        devices,
        sweep_cfg,
        journal.as_mut(),
        cancel,
        threads,
        batch,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if sweep.resumed > 0 {
        eprintln!("resumed {} journaled device(s)", sweep.resumed);
    }
    report_journal_health(&journal);
    if let Some(detail) = &sweep.storage_degraded {
        // Degrade policy: the sweep itself is whole (exit 0 below), but
        // only the sealed journal prefix survives a crash from here on.
        eprintln!("storage degraded: {detail}");
        eprintln!("fleet verdict: {}", sweep.fleet_verdict());
    }
    if json {
        println!(
            "{}",
            pv_json::ToJson::to_json(&sweep.report).to_string_pretty()
        );
    } else {
        println!("{}", sweep.report);
        if let Some(spread) = db.model_spread_percent("Pixel") {
            println!("model spread: {spread:.1}%");
        }
        if sweep.report.fleet_verdict() == FleetVerdict::Degraded {
            // Holes bias a plain mean, so a degraded fleet reports a
            // bootstrap interval computed over the survivors only.
            if let Ok(ci) = sweep.report.survivor_ci(&db, "Pixel") {
                println!(
                    "survivor score: {:.1} (95% bootstrap CI {:.1}..{:.1} over {} device(s))",
                    ci.point,
                    ci.lo,
                    ci.hi,
                    sweep.report.outcomes.len() - sweep.report.quarantined_devices(),
                );
            }
        }
    }
    if !sweep.complete {
        eprintln!(
            "interrupted after {} device(s); resume with: repro sweep --journal {} --resume",
            sweep.report.outcomes.len(),
            journal_path.unwrap_or("<path>"),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Histogram layout of the streaming sweep aggregate: wide enough for any
/// protocol scaling the CLI offers, at ~10-point quantile resolution.
const SWEEP_HIST_LO: f64 = 0.0;
const SWEEP_HIST_HI: f64 = 2000.0;
const SWEEP_HIST_BINS: usize = 200;

/// The default streaming path: constant-memory mergeable aggregates, plus
/// sampled estimation when a `--sample` selection rode along.
#[allow(clippy::too_many_arguments)]
fn run_sweep_streamed(
    devices: Vec<Device>,
    sweep_cfg: &SweepConfig,
    mut journal: Option<Journal>,
    cancel: &accubench::journal::CancelToken,
    threads: usize,
    batch: usize,
    json: bool,
    journal_path: Option<&str>,
    selection: Option<(SamplePlan, sampling::Selection)>,
) -> ExitCode {
    let mut agg = match ScoreAggregate::with_layout(
        5.0,
        SWEEP_HIST_LO,
        SWEEP_HIST_HI,
        SWEEP_HIST_BINS,
        accubench::aggregate::DEFAULT_TOP_K,
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = match populate_streamed(
        &mut agg,
        "Pixel",
        devices,
        sweep_cfg,
        journal.as_mut(),
        cancel,
        threads,
        batch,
        selection.is_some(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if sweep.resumed > 0 {
        eprintln!("resumed {} journaled device(s)", sweep.resumed);
    }
    report_journal_health(&journal);
    if let Some(detail) = &sweep.storage_degraded {
        eprintln!("storage degraded: {detail}");
        eprintln!("fleet verdict: {}", sweep.fleet_verdict());
    }

    // Sampled estimation: group the retained scores back into the
    // selection's weighted strata (devices that quarantined simply leave
    // their stratum lighter) and bootstrap the population estimates.
    let estimates = selection.as_ref().and_then(|(plan, sel)| {
        let by_pop: HashMap<usize, f64> = sweep
            .retained
            .iter()
            .map(|&(idx, score)| (sel.indices[idx], score))
            .collect();
        let groups: Vec<StratumSample> = sel
            .groups
            .iter()
            .map(|g| StratumSample {
                weight: g.weight,
                values: g.indices.iter().filter_map(|i| by_pop.get(i).copied()).collect(),
            })
            .collect();
        match sampling::estimate(&groups, 0.95, 1000, plan.seed) {
            Ok(est) => Some(est),
            Err(e) => {
                eprintln!("sampled estimation failed: {e}");
                None
            }
        }
    });

    if json {
        let mut obj = pv_json::Json::object();
        obj.insert("model", pv_json::ToJson::to_json(&sweep.model));
        obj.insert("devices", pv_json::ToJson::to_json(&sweep.devices));
        obj.insert("completed", pv_json::ToJson::to_json(&sweep.completed));
        obj.insert("holes", pv_json::ToJson::to_json(&sweep.holes.len()));
        obj.insert("complete", pv_json::ToJson::to_json(&sweep.complete));
        obj.insert("resumed", pv_json::ToJson::to_json(&sweep.resumed));
        obj.insert(
            "verdict",
            pv_json::Json::String(sweep.fleet_verdict().to_string()),
        );
        obj.insert("aggregate", pv_json::ToJson::to_json(&agg));
        if let Some((plan, _)) = &selection {
            let mut p = pv_json::Json::object();
            p.insert("population", pv_json::ToJson::to_json(&plan.population));
            p.insert("n", pv_json::ToJson::to_json(&plan.n));
            p.insert(
                "strategy",
                pv_json::Json::String(plan.strategy.as_str().to_owned()),
            );
            p.insert("seed", pv_json::ToJson::to_json(&plan.seed));
            obj.insert("sampling", p);
        }
        if let Some(est) = &estimates {
            obj.insert("estimates", pv_json::ToJson::to_json(est));
        }
        println!("{}", obj.to_string_pretty());
    } else {
        print!("{sweep}");
        render_streamed_stats(&agg);
        if sweep.fleet_verdict() == FleetVerdict::Degraded {
            // Holes bias a plain mean; quote the survivors-only interval
            // (normal approximation — the streaming path holds no raw
            // scores to bootstrap).
            if let Ok(ci) = sweep.survivor_ci() {
                println!(
                    "survivor score: {:.1} (95% CI {:.1}..{:.1} over {} device(s))",
                    ci.point,
                    ci.lo,
                    ci.hi,
                    agg.accepted(),
                );
            }
        }
        if let (Some((plan, _)), Some(est)) = (&selection, &estimates) {
            println!(
                "sampled estimates ({} n={} of {}; 95% bootstrap CI):",
                plan.strategy.as_str(),
                est.n,
                plan.population
            );
            println!(
                "  mean score: {:.1}  [{:.1}, {:.1}]",
                est.mean.point, est.mean.lo, est.mean.hi
            );
            println!(
                "  RSD:        {:.2}% [{:.2}%, {:.2}%]",
                est.rsd_percent.point, est.rsd_percent.lo, est.rsd_percent.hi
            );
            println!(
                "  p50:        {:.1}  [{:.1}, {:.1}]",
                est.p50.point, est.p50.lo, est.p50.hi
            );
            println!(
                "  p90:        {:.1}  [{:.1}, {:.1}]",
                est.p90.point, est.p90.lo, est.p90.hi
            );
        }
    }
    if !sweep.complete {
        eprintln!(
            "interrupted after {} device(s); resume with: repro sweep --journal {} --resume",
            sweep.processed,
            journal_path.unwrap_or("<path>"),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Prints the streaming aggregate's fleet statistics.
fn render_streamed_stats(agg: &ScoreAggregate) {
    if let (Ok(mean), Ok(rsd)) = (agg.mean(), agg.rsd_percent()) {
        println!("fleet mean score: {mean:.1} (RSD {rsd:.2}%)");
    }
    if let (Some(p50), Some(p90)) = (agg.approx_quantile(0.50), agg.approx_quantile(0.90)) {
        println!(
            "approx p50 {p50:.0}, p90 {p90:.0} (histogram resolution {:.0})",
            (SWEEP_HIST_HI - SWEEP_HIST_LO) / SWEEP_HIST_BINS as f64
        );
    }
    let oor = agg.out_of_range_fraction();
    if oor > 0.01 {
        eprintln!(
            "warning: {:.1}% of scores outside the [{SWEEP_HIST_LO}, {SWEEP_HIST_HI}] \
             histogram range; quantiles are clamped",
            oor * 100.0
        );
    }
}

/// The `fsck` target: verify a run journal across all its segments, and
/// with `--repair` truncate torn tails (the same healing `--resume`
/// applies) and re-check. Exit 0 iff the journal ends up clean.
fn run_fsck(path: &str, repair: bool) -> ExitCode {
    let report = match accubench::journal::fsck(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsck: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if report.is_clean() {
        println!("{path}: clean");
        return ExitCode::SUCCESS;
    }
    if !repair {
        eprintln!("{path}: dirty; `repro fsck {path} --repair` truncates torn tails");
        return ExitCode::FAILURE;
    }
    // Opening the journal performs exactly the repair `--resume` would:
    // every segment's torn tail is truncated away.
    match Journal::open(path) {
        Ok(j) => eprintln!(
            "repaired: {} record(s) kept across {} segment(s)",
            j.recovered().len(),
            j.segments().len(),
        ),
        Err(e) => {
            eprintln!("fsck --repair: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match accubench::journal::fsck(path) {
        Ok(r) => {
            println!("{r}");
            if r.is_clean() {
                println!("{path}: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("{path}: still dirty after repair (not a torn-tail problem)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fsck: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_study(
    s: study::SocStudy,
    paper_perf: f64,
    paper_energy: f64,
) -> Result<(), accubench::BenchError> {
    println!("{}", s.render()?);
    println!(
        "paper: perf variation {paper_perf:.0}%, energy variation {paper_energy:.0}% | measured: perf {:.1}%, energy {:.1}%\n",
        s.perf_spread_percent()?,
        s.energy_spread_percent()?
    );
    Ok(())
}
