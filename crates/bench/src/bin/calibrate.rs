//! Calibration probe: prints every experiment's headline numbers next to
//! the paper's targets so catalog constants can be tuned.

use accubench::experiments::{self, ExperimentConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let cfg = if arg == "paper" {
        ExperimentConfig::paper()
    } else {
        ExperimentConfig::quick()
    };
    println!("config: {cfg:?}\n");

    match experiments::table2::run(&cfg) {
        Ok(t2) => {
            println!("{}", t2.render());
            for s in &t2.studies {
                match s.render() {
                    Ok(table) => println!("{table}"),
                    Err(e) => println!("{} render failed: {e}", s.soc),
                }
            }
            let fig13 = experiments::fig13::from_studies(&t2.studies);
            println!("{}", fig13.render());
            println!("SD-805 dip present: {}\n", fig13.sd805_dip());
        }
        Err(e) => println!("table2 failed: {e}"),
    }

    match experiments::fig1::run(&cfg) {
        Ok(f) => println!(
            "{}\nfig1 energy excess {:.1}%, time excess {:.1}%\n",
            f.render(),
            f.energy_excess_fraction() * 100.0,
            f.time_excess_fraction() * 100.0
        ),
        Err(e) => println!("fig1 failed: {e}"),
    }

    match experiments::fig10::run(&cfg) {
        Ok(f) => println!("{}", f.render()),
        Err(e) => println!("fig10 failed: {e}"),
    }

    match experiments::fig1112::run(&cfg) {
        Ok(f) => {
            println!(
                "fig11 perf gap {:.1}% freq gap {:.1}%",
                f.pixel.perf_gap_fraction() * 100.0,
                f.pixel.freq_gap_fraction() * 100.0
            );
            println!(
                "fig12 perf gap {:.1}% freq gap {:.1}%\n",
                f.nexus5.perf_gap_fraction() * 100.0,
                f.nexus5.freq_gap_fraction() * 100.0
            );
        }
        Err(e) => println!("fig1112 failed: {e}"),
    }

    match experiments::fig45::run(&cfg) {
        Ok(f) => println!(
            "fig4 peak {:.1} throttled {:.0}% | fig5 peak {:.1} throttled {:.0}%\n",
            f.unconstrained.peak_temp.value(),
            f.unconstrained.workload_throttled_fraction * 100.0,
            f.fixed.peak_temp.value(),
            f.fixed.workload_throttled_fraction * 100.0
        ),
        Err(e) => println!("fig45 failed: {e}"),
    }

    match experiments::fig3::run(&cfg) {
        Ok(f) => println!(
            "fig3 mean {:.2} worst {:.2} rsd {:.3}%\n",
            f.air_stats.mean(),
            f.worst_excursion,
            f.air_stats.rsd_percent()
        ),
        Err(e) => println!("fig3 failed: {e}"),
    }

    match experiments::fig2::run(&cfg) {
        Ok(f) => {
            for s in &f.sweeps {
                println!(
                    "fig2 {} growth {:.1}%",
                    s.label,
                    s.energy_growth_fraction() * 100.0
                );
            }
        }
        Err(e) => println!("fig2 failed: {e}"),
    }
}
