//! `accubench` — measure one simulated device, the way the paper's app did.
//!
//! ```text
//! accubench --device nexus5:2 [options]
//!
//! options:
//!   --device <model:selector>   nexus5:<bin 0-6> | nexus6|nexus6p|lgg5|pixel|pixel2:<grade>
//!   --mode unconstrained|<MHz>  workload mode (default: unconstrained)
//!   --iterations <n>            back-to-back iterations (default: 5)
//!   --ambient <°C>              fixed ambient instead of the THERMABOX
//!   --scale <f>                 shrink warmup/workload durations (default: 1.0)
//!   --trace <file.csv>          dump the last iteration's full trace as CSV
//!   --json                      emit the session as JSON
//! ```
//!
//! Examples:
//!
//! ```text
//! accubench --device nexus5:0
//! accubench --device pixel:0.8 --mode 998 --iterations 3
//! accubench --device lgg5:0.5 --ambient 35 --trace g5.csv
//! ```

use accubench::harness::{Ambient, Harness};
use accubench::protocol::Protocol;
use pv_soc::catalog;
use pv_units::{Celsius, MegaHertz, Seconds};
use std::process::ExitCode;

struct Options {
    device: String,
    mode: String,
    iterations: usize,
    ambient: Option<f64>,
    scale: f64,
    trace: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        device: String::new(),
        mode: "unconstrained".to_owned(),
        iterations: 5,
        ambient: None,
        scale: 1.0,
        trace: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--device" => opts.device = value("--device")?,
            "--mode" => opts.mode = value("--mode")?,
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be a positive integer".to_owned())?
            }
            "--ambient" => {
                opts.ambient = Some(
                    value("--ambient")?
                        .parse()
                        .map_err(|_| "--ambient must be a temperature in °C".to_owned())?,
                )
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be a positive number".to_owned())?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if opts.device.is_empty() {
        return Err("--device is required".to_owned());
    }
    if opts.iterations == 0 {
        return Err("--iterations must be at least 1".to_owned());
    }
    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: accubench --device <model:selector> [--mode unconstrained|<MHz>] \
                 [--iterations N] [--ambient °C] [--scale F] [--trace out.csv] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut device = match catalog::parse_device(&opts.device) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut protocol = if opts.mode == "unconstrained" {
        Protocol::unconstrained()
    } else {
        match opts.mode.parse::<f64>() {
            Ok(mhz) if mhz > 0.0 => Protocol::fixed_frequency(MegaHertz(mhz)),
            _ => {
                eprintln!("error: --mode must be 'unconstrained' or a frequency in MHz");
                return ExitCode::FAILURE;
            }
        }
    };
    protocol = protocol
        .with_warmup(Seconds(protocol.warmup.value() * opts.scale))
        .with_workload(Seconds(protocol.workload.value() * opts.scale));
    if opts.trace.is_some() {
        protocol = protocol.with_trace();
    }

    let ambient = match opts.ambient {
        Some(t) => Ambient::Fixed(Celsius(t)),
        None => match Ambient::paper_chamber() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut harness = match Harness::new(protocol, ambient) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "measuring {device}: {} iteration(s), mode {} ...",
        opts.iterations, opts.mode
    );
    let session = match harness.run_session(&mut device, opts.iterations) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &opts.trace {
        let csv = session
            .iterations
            .last()
            .map(|it| it.full_trace.to_csv())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&session).expect("session serializes")
        );
        return ExitCode::SUCCESS;
    }

    println!("{session}");
    match (session.performance_summary(), session.energy_summary()) {
        (Ok(perf), Ok(energy)) => {
            println!(
                "performance: {:.1} iterations (RSD {:.2}%)",
                perf.mean(),
                perf.rsd_percent()
            );
            println!(
                "energy:      {:.1} J (RSD {:.2}%)",
                energy.mean(),
                energy.rsd_percent()
            );
            if session.any_cooldown_timed_out() {
                println!("warning: at least one cooldown timed out (workload started warm)");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("error: empty session");
            ExitCode::FAILURE
        }
    }
}
