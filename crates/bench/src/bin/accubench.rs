//! `accubench` — measure one simulated device, the way the paper's app did.
//!
//! ```text
//! accubench --device nexus5:2 [options]
//!
//! options:
//!   --device <model:selector>   nexus5:<bin 0-6> | nexus6|nexus6p|lgg5|pixel|pixel2:<grade>
//!   --mode unconstrained|<MHz>  workload mode (default: unconstrained)
//!   --iterations <n>            back-to-back iterations (default: 5)
//!   --ambient <°C>              fixed ambient instead of the THERMABOX
//!   --scale <f>                 shrink warmup/workload durations (default: 1.0)
//!   --integrator <scheme>       euler|rk4|exponential thermal stepping
//!                               (default: euler; exponential is the fast
//!                               path, see DESIGN.md §11)
//!   --trace <file.csv>          dump the last iteration's full trace as CSV
//!   --faults <plan.toml>        arm a fault-injection plan: instrument
//!                               kinds hit the session; storage-* kinds
//!                               hit the --journal filesystem instead
//!                               (their at/duration count storage
//!                               operations, not seconds)
//!   --json                      emit the session as JSON
//!   --journal <file>            journal the run (self-checksummed, fsynced)
//!   --resume                    replay a completed journal instead of
//!                               re-measuring; refuses a journal whose
//!                               recorded configuration differs
//!   --threads <n>               accepted for symmetry with `repro sweep`;
//!                               a single-device session is one unit of
//!                               work, so it always runs on one worker
//!   --batch <n>                 accepted for symmetry with `repro sweep`;
//!                               a single device is a width-1 batch, so
//!                               lockstep stepping cannot help here
//!   --sample <k>                accepted for symmetry with `repro sweep`;
//!                               a single-device session has a population
//!                               of one, so it is always measured exactly
//!   --sample-strategy <name>    srs|rss|stratified; validated, then
//!                               ignored for the same reason
//!   --sample-seed <u64>         validated, then ignored for the same
//!                               reason
//!   --oracle                    accepted for symmetry with `repro sweep`;
//!                               a single session has no streaming
//!                               aggregate to cross-check, so this is
//!                               always the exact path
//!   --max-task-seconds <w>      arm a wall-clock watchdog: a session that
//!                               runs longer than w seconds is stopped at
//!                               the next cooperative checkpoint and
//!                               reported as timed-out (DESIGN.md §12)
//!   --on-failure <policy>       abort (default): a panicked/timed-out/
//!                               failed session exits non-zero;
//!                               quarantine: it is journaled with its
//!                               typed status and the process exits 0 —
//!                               the single-device analogue of a degraded
//!                               fleet completing
//! ```
//!
//! Examples:
//!
//! ```text
//! accubench --device nexus5:0
//! accubench --device pixel:0.8 --mode 998 --iterations 3
//! accubench --device lgg5:0.5 --ambient 35 --trace g5.csv
//! accubench --device nexus5:2 --faults examples/fault_plan.toml
//! ```

use accubench::crowd::SweepOutcome;
use accubench::executor;
use accubench::harness::{Ambient, Harness};
use accubench::journal::{fnv64, Journal, Record};
use accubench::protocol::Protocol;
use accubench::session::Verdict;
use accubench::storage::{FaultyStorage, Storage};
use accubench::supervise::{DeviceStatus, OnFailure, SupervisionError, Watchdog};
use accubench::BenchError;
use pv_faults::{FaultHandle, FaultPlan};
use pv_soc::catalog;
use pv_soc::faulty::FaultyDevice;
use pv_stats::sampling::Strategy;
use pv_units::{Celsius, MegaHertz, Seconds};
use std::process::ExitCode;
use std::sync::Arc;

#[path = "../sigint.rs"]
mod sigint;

struct Options {
    device: String,
    mode: String,
    iterations: usize,
    ambient: Option<f64>,
    scale: f64,
    integrator: pv_thermal::network::Integrator,
    trace: Option<String>,
    faults: Option<String>,
    json: bool,
    journal: Option<String>,
    resume: bool,
    threads: usize,
    batch: usize,
    sample: Option<usize>,
    sample_strategy: Option<String>,
    sample_seed: Option<u64>,
    oracle: bool,
    max_task_seconds: Option<f64>,
    on_failure: OnFailure,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        device: String::new(),
        mode: "unconstrained".to_owned(),
        iterations: 5,
        ambient: None,
        scale: 1.0,
        integrator: pv_thermal::network::Integrator::Euler,
        trace: None,
        faults: None,
        json: false,
        journal: None,
        resume: false,
        threads: 1,
        batch: 1,
        sample: None,
        sample_strategy: None,
        sample_seed: None,
        oracle: false,
        max_task_seconds: None,
        // A lone session has no fleet to degrade into, so failures abort
        // (non-zero exit) unless the caller opts into quarantine.
        on_failure: OnFailure::Abort,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--device" => opts.device = value("--device")?,
            "--mode" => opts.mode = value("--mode")?,
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be a positive integer".to_owned())?
            }
            "--ambient" => {
                opts.ambient = Some(
                    value("--ambient")?
                        .parse()
                        .map_err(|_| "--ambient must be a temperature in °C".to_owned())?,
                )
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be a positive number".to_owned())?
            }
            "--integrator" => {
                let name = value("--integrator")?;
                opts.integrator = pv_thermal::network::Integrator::parse(&name)
                    .ok_or_else(|| format!("--integrator: unknown scheme {name:?}"))?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--faults" => opts.faults = Some(value("--faults")?),
            "--json" => opts.json = true,
            "--journal" => opts.journal = Some(value("--journal")?),
            "--resume" => opts.resume = true,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?
            }
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch must be a positive integer".to_owned())?
            }
            "--sample" => {
                let k: usize = value("--sample")?
                    .parse()
                    .map_err(|_| "--sample must be a positive integer".to_owned())?;
                if k == 0 {
                    return Err("--sample must be at least 1".to_owned());
                }
                opts.sample = Some(k)
            }
            "--sample-strategy" => opts.sample_strategy = Some(value("--sample-strategy")?),
            "--sample-seed" => {
                opts.sample_seed = Some(
                    value("--sample-seed")?
                        .parse()
                        .map_err(|_| "--sample-seed must be an unsigned integer".to_owned())?,
                )
            }
            "--oracle" => opts.oracle = true,
            "--max-task-seconds" => {
                let w: f64 = value("--max-task-seconds")?
                    .parse()
                    .map_err(|_| "--max-task-seconds must be a positive number".to_owned())?;
                if !(w > 0.0 && w.is_finite()) {
                    return Err("--max-task-seconds must be a positive number".to_owned());
                }
                opts.max_task_seconds = Some(w)
            }
            "--on-failure" => {
                let mode = value("--on-failure")?;
                opts.on_failure = OnFailure::parse(&mode)
                    .ok_or_else(|| format!("--on-failure: unknown policy {mode:?}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if opts.device.is_empty() {
        return Err("--device is required".to_owned());
    }
    if opts.iterations == 0 {
        return Err("--iterations must be at least 1".to_owned());
    }
    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".to_owned());
    }
    if opts.resume && opts.journal.is_none() {
        return Err("--resume requires --journal <file>".to_owned());
    }
    if opts.threads == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    if opts.threads > 1 {
        eprintln!(
            "note: a single-device session is one unit of work; \
             --threads {} runs it on one worker (use `repro sweep --threads` \
             to parallelise a fleet)",
            opts.threads
        );
    }
    if opts.batch == 0 {
        return Err("--batch must be at least 1".to_owned());
    }
    if opts.batch > 1 {
        eprintln!(
            "note: a single device is a width-1 batch; --batch {} has no \
             effect here (use `repro sweep --batch` to step a fleet in \
             lockstep)",
            opts.batch
        );
    }
    if let Some(name) = &opts.sample_strategy {
        Strategy::parse(name).map_err(|e| format!("--sample-strategy: {e}"))?;
        if opts.sample.is_none() {
            return Err("--sample-strategy requires --sample <n>".to_owned());
        }
    }
    if opts.sample_seed.is_some() && opts.sample.is_none() {
        return Err("--sample-seed requires --sample <n>".to_owned());
    }
    if opts.sample.is_some() {
        eprintln!(
            "note: a single-device session has a population of one; --sample \
             is measured exactly here (use `repro sweep --sample` to \
             subsample a fleet)"
        );
    }
    if opts.oracle {
        eprintln!(
            "note: a single session has no streaming aggregate to cross-check; \
             --oracle has no effect here (use `repro sweep --oracle` for the \
             exact full-fleet reference)"
        );
    }
    Ok(opts)
}

/// Digest over everything that determines this run's simulated outcome:
/// device, mode, iterations, ambient, scale, integrator, the fault plan
/// *text* (so editing the plan file invalidates a stale journal), and the
/// watchdog limit (a journal written under one deadline regime cannot be
/// silently replayed under another). `v2` added the integrator; `v3` adds
/// the supervision fields and the typed outcome status.
fn run_digest(opts: &Options, fault_toml: &str) -> String {
    let ambient = match opts.ambient {
        Some(t) => format!("{:016x}", t.to_bits()),
        None => "chamber".to_owned(),
    };
    let wall = match opts.max_task_seconds {
        Some(w) => format!("{:016x}", w.to_bits()),
        None => "none".to_owned(),
    };
    let s = format!(
        "accubench-v3|device={}|mode={}|iters={}|ambient={ambient}|scale={:016x}|integrator={}|faults={:016x}|wall={wall}",
        opts.device,
        opts.mode,
        opts.iterations,
        opts.scale.to_bits(),
        opts.integrator.as_str(),
        fnv64(fault_toml.as_bytes()),
    );
    format!("{:016x}", fnv64(s.as_bytes()))
}

/// Exit code for a failed session under the selected escalation policy:
/// `abort` fails the process, `quarantine` records the typed status and
/// exits cleanly (the single-device analogue of a degraded fleet).
fn failure_exit(on_failure: OnFailure) -> ExitCode {
    match on_failure {
        OnFailure::Quarantine => ExitCode::SUCCESS,
        OnFailure::Abort => ExitCode::FAILURE,
    }
}

/// Prints a journaled outcome (the `--resume` replay path) and converts
/// it to an exit code.
fn replay_outcome(
    outcome: &SweepOutcome,
    score: Option<f64>,
    rsd: Option<f64>,
    on_failure: OnFailure,
) -> ExitCode {
    println!("journaled result for {}:", outcome.device);
    match outcome.verdict {
        Some(v) => println!("verdict: {v}"),
        None => println!("verdict: {}", outcome.status),
    }
    if let (Some(score), Some(rsd)) = (score, rsd) {
        println!("performance: {score:.1} iterations (RSD {rsd:.2}%)");
    }
    if outcome.quarantined > 0 {
        println!("quarantined: {} slot(s)", outcome.quarantined);
    }
    if outcome.fault_reports > 0 {
        println!("fault log: {} occurrence(s)", outcome.fault_reports);
    }
    if let Some(e) = &outcome.error {
        eprintln!("error (journaled): {e}");
        return failure_exit(on_failure);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: accubench --device <model:selector> [--mode unconstrained|<MHz>] \
                 [--iterations N] [--ambient °C] [--scale F] \
                 [--integrator euler|rk4|exponential] [--trace out.csv] \
                 [--faults plan.toml] [--json] [--journal file] [--resume] [--threads N] \
                 [--batch B] [--sample K] [--sample-strategy srs|rss|stratified] \
                 [--sample-seed S] [--oracle] [--max-task-seconds W] \
                 [--on-failure abort|quarantine]"
            );
            return ExitCode::FAILURE;
        }
    };

    let device = match catalog::parse_device(&opts.device) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The device is always driven through the fault gate; without --faults
    // the gate is disarmed and behaves bit-identically to the bare device.
    // Storage kinds in the plan never fire on the session's simulated-time
    // clock — they are split out and armed on the journal's filesystem,
    // where `at`/`duration` count storage operations.
    let mut fault_toml = String::new();
    let mut storage_plan: Option<FaultPlan> = None;
    let faults = match &opts.faults {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: could not read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FaultPlan::from_toml_str(&text) {
                Ok(plan) => {
                    fault_toml = text;
                    let (storage_events, instrument_events): (Vec<_>, Vec<_>) = plan
                        .events
                        .iter()
                        .cloned()
                        .partition(|e| e.kind.is_storage());
                    eprintln!(
                        "armed fault plan {path}: {} instrument event(s), {} storage event(s)",
                        instrument_events.len(),
                        storage_events.len(),
                    );
                    if !storage_events.is_empty() {
                        storage_plan = Some(FaultPlan {
                            seed: plan.seed,
                            events: storage_events,
                        });
                    }
                    FaultHandle::armed(FaultPlan {
                        seed: plan.seed,
                        events: instrument_events,
                    })
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FaultHandle::disarmed(),
    };

    // Journal handling: open (recovering any torn tail), then either seal a
    // fresh header or verify the existing one before anything runs.
    let digest = run_digest(&opts, &fault_toml);
    let storage = match &storage_plan {
        Some(plan) => Storage::new(Arc::new(FaultyStorage::new(Storage::os(), plan))),
        None => Storage::os(),
    };
    let mut journal = match &opts.journal {
        Some(path) => match Journal::open_with(storage, path) {
            Ok(j) => {
                if j.dropped_bytes() > 0 {
                    eprintln!(
                        "journal {path}: dropped {} byte(s) of torn tail",
                        j.dropped_bytes()
                    );
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("--journal: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(j) = journal.as_mut() {
        if j.recovered().is_empty() {
            let header = Record::Header {
                model: opts.device.clone(),
                digest: digest.clone(),
                devices: 1,
            };
            if let Err(e) = j.append(&header) {
                eprintln!("--journal: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            match &j.recovered()[0] {
                Record::Header {
                    digest: journaled, ..
                } if *journaled == digest => {}
                Record::Header { .. } => {
                    eprintln!(
                        "--journal: journal was written by a different configuration; \
                         refusing to resume (re-run with matching options or a fresh path)"
                    );
                    return ExitCode::FAILURE;
                }
                _ => {
                    eprintln!("--journal: journal does not start with a header");
                    return ExitCode::FAILURE;
                }
            }
            if !opts.resume {
                eprintln!(
                    "--journal: journal already holds {} record(s); \
                     pass --resume to replay it or choose a fresh path",
                    j.recovered().len()
                );
                return ExitCode::FAILURE;
            }
            let mut done = None;
            let mut complete = false;
            for r in &j.recovered()[1..] {
                match r {
                    Record::Outcome {
                        outcome,
                        score,
                        rsd,
                        ..
                    } => done = Some((outcome.clone(), *score, *rsd)),
                    Record::Complete { .. } => complete = true,
                    _ => {}
                }
            }
            if complete {
                if let Some((outcome, score, rsd)) = done {
                    return replay_outcome(&outcome, score, rsd, opts.on_failure);
                }
            }
            eprintln!("journal is incomplete; re-measuring");
        }
    }
    let device_label = device.label().to_owned();
    let mut device = FaultyDevice::new(device, faults.clone());

    let mut protocol = if opts.mode == "unconstrained" {
        Protocol::unconstrained()
    } else {
        match opts.mode.parse::<f64>() {
            Ok(mhz) if mhz > 0.0 => Protocol::fixed_frequency(MegaHertz(mhz)),
            _ => {
                eprintln!("error: --mode must be 'unconstrained' or a frequency in MHz");
                return ExitCode::FAILURE;
            }
        }
    };
    protocol = protocol
        .with_warmup(Seconds(protocol.warmup.value() * opts.scale))
        .with_workload(Seconds(protocol.workload.value() * opts.scale))
        .with_integrator(opts.integrator);
    if opts.trace.is_some() {
        protocol = protocol.with_trace();
    }

    let ambient = match opts.ambient {
        Some(t) => Ambient::Fixed(Celsius(t)),
        None => match Ambient::paper_chamber() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut harness = match Harness::new(protocol, ambient) {
        Ok(h) => h.with_faults(faults.clone()),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(wall) = opts.max_task_seconds {
        harness = harness.with_watchdog(Watchdog::new().with_wall_limit(wall));
    }

    // First Ctrl-C lets the session finish and journal; the second one
    // kills the process (recovery then drops any torn journal tail).
    let _cancel = sigint::install();

    eprintln!(
        "measuring {device}: {} iteration(s), mode {} ...",
        opts.iterations, opts.mode
    );
    let journal_end = |journal: &mut Option<Journal>, mut records: Vec<Record>| {
        if let Some(j) = journal.as_mut() {
            records.push(Record::Complete { devices: 1 });
            for r in &records {
                if let Err(e) = j.append(r) {
                    eprintln!("warning: journal append failed: {e}");
                    return;
                }
            }
        }
    };
    // The session runs under panic isolation: a panic (injected or real)
    // is caught, summarized, journaled with its typed status, and turned
    // into an exit code by the escalation policy instead of unwinding
    // through main.
    let caught = executor::run_caught(|| harness.run_session(&mut device, opts.iterations));
    let failed_outcome = |status: DeviceStatus, detail: &str| SweepOutcome {
        device: device_label.clone(),
        verdict: None,
        accepted: false,
        quarantined: 0,
        fault_reports: faults.report_count(),
        error: Some(detail.to_owned()),
        status,
        attempts: 1,
    };
    let session = match caught {
        Ok(Ok(s)) => s,
        Ok(Err(e)) => {
            // A fatal session error is deterministic, so it completes the
            // journal: --resume replays the failure instead of re-running.
            let status = match &e {
                BenchError::Supervision(
                    SupervisionError::SimBudget { .. }
                    | SupervisionError::WallClock { .. }
                    | SupervisionError::Killed,
                ) => DeviceStatus::TimedOut,
                _ => DeviceStatus::Failed,
            };
            journal_end(
                &mut journal,
                vec![Record::Outcome {
                    index: 0,
                    outcome: failed_outcome(status, &e.to_string()),
                    score: None,
                    rsd: None,
                }],
            );
            eprintln!("error ({status}): {e}");
            return failure_exit(opts.on_failure);
        }
        Err(panic) => {
            let headline = panic.headline();
            // The deterministic headline goes into the outcome; the
            // backtrace (when RUST_BACKTRACE enables capture) only into
            // the free-form note, where nondeterminism is harmless.
            let mut note = format!("{device_label}: {headline}");
            if let Some(bt) = &panic.backtrace {
                note.push_str("\nbacktrace:\n");
                note.push_str(bt);
            }
            journal_end(
                &mut journal,
                vec![
                    Record::Note {
                        index: 0,
                        text: note,
                    },
                    Record::Outcome {
                        index: 0,
                        outcome: failed_outcome(DeviceStatus::Panicked, &headline),
                        score: None,
                        rsd: None,
                    },
                ],
            );
            eprintln!("error (panicked): {headline}");
            if let Some(bt) = &panic.backtrace {
                eprintln!("{bt}");
            }
            return failure_exit(opts.on_failure);
        }
    };
    let (score, rsd) = if session.verdict == Verdict::Invalid {
        (None, None)
    } else {
        session
            .performance_summary()
            .map(|p| (Some(p.mean()), Some(p.rsd_percent())))
            .unwrap_or((None, None))
    };
    journal_end(
        &mut journal,
        vec![Record::Outcome {
            index: 0,
            outcome: SweepOutcome {
                device: device_label,
                verdict: Some(session.verdict),
                accepted: session.verdict != Verdict::Invalid,
                quarantined: session.quarantined.len(),
                fault_reports: faults.report_count(),
                error: None,
                status: DeviceStatus::Completed,
                attempts: 1,
            },
            score,
            rsd,
        }],
    );

    if let Some(path) = &opts.trace {
        let csv = session
            .iterations
            .last()
            .map(|it| it.full_trace.to_csv())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }

    if opts.json {
        println!("{}", pv_json::ToJson::to_json(&session).to_string_pretty());
        return ExitCode::SUCCESS;
    }

    println!("{session}");
    println!("verdict: {}", session.verdict);
    for q in &session.quarantined {
        println!("quarantined: {q}");
    }
    if faults.report_count() > 0 {
        println!("fault log ({} occurrence(s)):", faults.report_count());
        for r in faults.reports() {
            println!("  t={:.1}s {}: {}", r.at, r.kind, r.detail);
        }
    }
    match (session.performance_summary(), session.energy_summary()) {
        (Ok(perf), Ok(energy)) => {
            println!(
                "performance: {:.1} iterations (RSD {:.2}%)",
                perf.mean(),
                perf.rsd_percent()
            );
            println!(
                "energy:      {:.1} J (RSD {:.2}%)",
                energy.mean(),
                energy.rsd_percent()
            );
            if session.any_cooldown_timed_out() {
                println!("warning: at least one cooldown timed out (workload started warm)");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "error: no iterations survived (verdict {})",
                session.verdict
            );
            ExitCode::FAILURE
        }
    }
}
