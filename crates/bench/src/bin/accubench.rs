//! `accubench` — measure one simulated device, the way the paper's app did.
//!
//! ```text
//! accubench --device nexus5:2 [options]
//!
//! options:
//!   --device <model:selector>   nexus5:<bin 0-6> | nexus6|nexus6p|lgg5|pixel|pixel2:<grade>
//!   --mode unconstrained|<MHz>  workload mode (default: unconstrained)
//!   --iterations <n>            back-to-back iterations (default: 5)
//!   --ambient <°C>              fixed ambient instead of the THERMABOX
//!   --scale <f>                 shrink warmup/workload durations (default: 1.0)
//!   --trace <file.csv>          dump the last iteration's full trace as CSV
//!   --faults <plan.toml>        arm a fault-injection plan for the session
//!   --json                      emit the session as JSON
//! ```
//!
//! Examples:
//!
//! ```text
//! accubench --device nexus5:0
//! accubench --device pixel:0.8 --mode 998 --iterations 3
//! accubench --device lgg5:0.5 --ambient 35 --trace g5.csv
//! accubench --device nexus5:2 --faults examples/fault_plan.toml
//! ```

use accubench::harness::{Ambient, Harness};
use accubench::protocol::Protocol;
use pv_faults::{FaultHandle, FaultPlan};
use pv_soc::catalog;
use pv_soc::faulty::FaultyDevice;
use pv_units::{Celsius, MegaHertz, Seconds};
use std::process::ExitCode;

struct Options {
    device: String,
    mode: String,
    iterations: usize,
    ambient: Option<f64>,
    scale: f64,
    trace: Option<String>,
    faults: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        device: String::new(),
        mode: "unconstrained".to_owned(),
        iterations: 5,
        ambient: None,
        scale: 1.0,
        trace: None,
        faults: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--device" => opts.device = value("--device")?,
            "--mode" => opts.mode = value("--mode")?,
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be a positive integer".to_owned())?
            }
            "--ambient" => {
                opts.ambient = Some(
                    value("--ambient")?
                        .parse()
                        .map_err(|_| "--ambient must be a temperature in °C".to_owned())?,
                )
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be a positive number".to_owned())?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--faults" => opts.faults = Some(value("--faults")?),
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if opts.device.is_empty() {
        return Err("--device is required".to_owned());
    }
    if opts.iterations == 0 {
        return Err("--iterations must be at least 1".to_owned());
    }
    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: accubench --device <model:selector> [--mode unconstrained|<MHz>] \
                 [--iterations N] [--ambient °C] [--scale F] [--trace out.csv] \
                 [--faults plan.toml] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };

    let device = match catalog::parse_device(&opts.device) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The device is always driven through the fault gate; without --faults
    // the gate is disarmed and behaves bit-identically to the bare device.
    let faults = match &opts.faults {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: could not read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FaultPlan::from_toml_str(&text) {
                Ok(plan) => {
                    eprintln!("armed fault plan {path}: {} event(s)", plan.events.len());
                    FaultHandle::armed(plan)
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FaultHandle::disarmed(),
    };
    let mut device = FaultyDevice::new(device, faults.clone());

    let mut protocol = if opts.mode == "unconstrained" {
        Protocol::unconstrained()
    } else {
        match opts.mode.parse::<f64>() {
            Ok(mhz) if mhz > 0.0 => Protocol::fixed_frequency(MegaHertz(mhz)),
            _ => {
                eprintln!("error: --mode must be 'unconstrained' or a frequency in MHz");
                return ExitCode::FAILURE;
            }
        }
    };
    protocol = protocol
        .with_warmup(Seconds(protocol.warmup.value() * opts.scale))
        .with_workload(Seconds(protocol.workload.value() * opts.scale));
    if opts.trace.is_some() {
        protocol = protocol.with_trace();
    }

    let ambient = match opts.ambient {
        Some(t) => Ambient::Fixed(Celsius(t)),
        None => match Ambient::paper_chamber() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut harness = match Harness::new(protocol, ambient) {
        Ok(h) => h.with_faults(faults.clone()),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "measuring {device}: {} iteration(s), mode {} ...",
        opts.iterations, opts.mode
    );
    let session = match harness.run_session(&mut device, opts.iterations) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &opts.trace {
        let csv = session
            .iterations
            .last()
            .map(|it| it.full_trace.to_csv())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }

    if opts.json {
        println!("{}", pv_json::ToJson::to_json(&session).to_string_pretty());
        return ExitCode::SUCCESS;
    }

    println!("{session}");
    println!("verdict: {}", session.verdict);
    for q in &session.quarantined {
        println!("quarantined: {q}");
    }
    if faults.report_count() > 0 {
        println!("fault log ({} occurrence(s)):", faults.report_count());
        for r in faults.reports() {
            println!("  t={:.1}s {}: {}", r.at, r.kind, r.detail);
        }
    }
    match (session.performance_summary(), session.energy_summary()) {
        (Ok(perf), Ok(energy)) => {
            println!(
                "performance: {:.1} iterations (RSD {:.2}%)",
                perf.mean(),
                perf.rsd_percent()
            );
            println!(
                "energy:      {:.1} J (RSD {:.2}%)",
                energy.mean(),
                energy.rsd_percent()
            );
            if session.any_cooldown_timed_out() {
                println!("warning: at least one cooldown timed out (workload started warm)");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "error: no iterations survived (verdict {})",
                session.verdict
            );
            ExitCode::FAILURE
        }
    }
}
