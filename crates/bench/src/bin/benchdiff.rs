//! `benchdiff` — the perf regression gate.
//!
//! Compares a fresh `BENCH_*.json` (written by the `sweep`/`step`
//! benches in the shared `pv-bench-report/v1` schema) against the
//! committed baseline under `benches/baselines/`, prints a
//! baseline-vs-current table plus a one-line `trend:` summary, and
//! exits nonzero on any regression, absolute-floor violation, or failed
//! invariant check. The comparison rules (tolerance bands, noise-aware
//! widening, environment-mismatch widening, built-in 2×/5× floors) live
//! in `pv_bench::diff`; DESIGN.md §14 documents the methodology and
//! EXPERIMENTS.md the baseline refresh procedure.
//!
//! ```text
//! # gate a fresh run against its committed baseline
//! benchdiff --baseline benches/baselines/BENCH_sweep.json --current BENCH_sweep.json
//!
//! # cheap PR-time schema lint (no comparison)
//! benchdiff --check-schema benches/baselines/BENCH_sweep.json benches/baselines/BENCH_step.json
//! ```
//!
//! Exit codes: 0 = pass, 1 = regression/floor/check failure,
//! 2 = usage, unreadable file, or schema violation.

use pv_bench::diff::{diff, DiffConfig};
use pv_bench::report::BenchReport;

struct Options {
    baseline: Option<String>,
    current: Option<String>,
    check_schema: Vec<String>,
    cfg: DiffConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  benchdiff --baseline PATH --current PATH \
         [--tolerance F] [--noise-factor F] [--noisy-band F]\n  \
         benchdiff --check-schema FILE [FILE...]"
    );
    std::process::exit(2);
}

fn parse_f64(args: &[String], i: usize) -> f64 {
    args.get(i)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f >= 0.0)
        .unwrap_or_else(|| usage())
}

fn parse_args() -> Options {
    let mut opts = Options {
        baseline: None,
        current: None,
        check_schema: Vec::new(),
        cfg: DiffConfig::default(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                opts.baseline = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--current" => {
                i += 1;
                opts.current = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                i += 1;
                opts.cfg.tolerance = parse_f64(&args, i);
            }
            "--noise-factor" => {
                i += 1;
                opts.cfg.noise_factor = parse_f64(&args, i);
            }
            "--noisy-band" => {
                i += 1;
                opts.cfg.noisy_band = parse_f64(&args, i);
            }
            "--check-schema" => {
                // Every remaining argument is a file to lint.
                opts.check_schema.extend(args[i + 1..].iter().cloned());
                if opts.check_schema.is_empty() {
                    usage();
                }
                i = args.len();
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();

    if !opts.check_schema.is_empty() {
        if opts.baseline.is_some() || opts.current.is_some() {
            usage();
        }
        let mut bad = 0;
        for path in &opts.check_schema {
            match BenchReport::load(path) {
                Ok(report) => println!(
                    "ok: {path} ({} metrics, {} checks, bench `{}`)",
                    report.metrics.len(),
                    report.checks.len(),
                    report.bench
                ),
                Err(e) => {
                    eprintln!("SCHEMA ERROR: {e}");
                    bad += 1;
                }
            }
        }
        std::process::exit(if bad == 0 { 0 } else { 2 });
    }

    let (Some(baseline_path), Some(current_path)) = (&opts.baseline, &opts.current) else {
        usage();
    };

    let baseline = match BenchReport::load(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "ERROR: cannot load baseline: {e}\n\
                 hint: commit one with `cp {current_path} {baseline_path}` after a \
                 trusted run (see EXPERIMENTS.md \"Refreshing baselines\")"
            );
            std::process::exit(2);
        }
    };
    let current = match BenchReport::load(current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ERROR: cannot load current report: {e}");
            std::process::exit(2);
        }
    };

    let result = diff(&baseline, &current, &opts.cfg);
    print!("{}", result.render_table());
    println!();
    println!("{}", result.trend_line());
    if result.passed() {
        println!("OK: no regression vs baseline");
    } else {
        eprintln!(
            "FAIL: {} problem(s) — see table above",
            result.failures.len()
        );
        std::process::exit(1);
    }
}
