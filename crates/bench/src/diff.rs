//! Baseline-vs-current comparison engine behind the `benchdiff` binary.
//!
//! Given two [`BenchReport`]s — a committed baseline and a fresh run —
//! this module decides, metric by metric, whether performance regressed.
//! The rules, in the order they apply:
//!
//! 1. **Direction** comes from the metric's `higher_is_better` flag; a
//!    regression is movement in the *worse* direction only.
//! 2. **Tolerance band**: the allowed worse-direction drift. Starts at
//!    `tolerance` (default 10 % — tight enough to catch a 10 % slip on a
//!    quiet runner) and is widened by the *noise-aware rule*:
//!    `band = max(tolerance, noise_factor · max(spread_base, spread_cur))`.
//!    A metric flagged `noisy` on either side widens further to at least
//!    `noisy_band` (default 30 %) — noisy metrics warn rather than flap.
//! 3. **Environment rule**: when the baseline was recorded on a host
//!    with different parallelism or a different rustc, absolute numbers
//!    (`ns/step`, `devices/s`, `ms`, …) are not comparable
//!    machine-to-machine at all — those metrics are reported
//!    *informationally* and never fail on drift. Dimensionless ratios
//!    (unit `x`: speedups) survive a machine change, so they still
//!    gate, with their band widened to at least `noisy_band`. The
//!    mismatch is always reported with a refresh hint.
//! 4. **Absolute floors** (the old one-shot CI gates, kept as
//!    backstops): `sweep` must hold ≥ 2× speedup at 4 threads (skipped
//!    when the measuring host has < 4 CPUs, matching the old gate) and
//!    `step` must hold ≥ 5× exponential-vs-RK4 thermal step rate.
//!    Floors bind the *current* run regardless of baseline drift.
//! 5. **Checks** (`reports_identical`, `steady_state_allocs_zero`…)
//!    fail the diff unconditionally — they are invariants, not numbers.
//!
//! The output is a rendered markdown table (readable in a terminal and
//! in a GitHub job summary) plus a one-line `trend:` summary for
//! longitudinal tracking, and a boolean verdict for the process exit
//! code.

use crate::report::BenchReport;

/// Tuning knobs for a diff run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Base worse-direction tolerance (fraction, default 0.10).
    pub tolerance: f64,
    /// Multiplier on observed relative spread when widening (default 3).
    pub noise_factor: f64,
    /// Minimum band for `noisy`-flagged metrics or mismatched
    /// environments (default 0.30).
    pub noisy_band: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.10,
            noise_factor: 3.0,
            noisy_band: 0.30,
        }
    }
}

/// Verdict for one metric row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Within the band (includes small improvements).
    Ok,
    /// Better than baseline by more than the band — worth a look, never
    /// a failure.
    Improved,
    /// Worse than baseline by more than the band. Fails the diff.
    Regressed,
    /// Band was widened because the metric is noisy or the environment
    /// differs; still within the widened band.
    NoisyOk,
    /// Machine-dependent metric compared across mismatched
    /// environments: shown for context, never a failure.
    EnvInfo,
    /// Metric exists only in the current run (new metric — informational).
    New,
    /// Metric exists in the baseline but vanished from the current run.
    /// Fails the diff: a silently dropped metric is a silently dropped
    /// gate.
    Missing,
    /// Current value violates an absolute floor. Fails the diff.
    FloorViolation,
    /// Floor exists but was skipped (e.g. too few CPUs to gate speedup).
    FloorSkipped,
}

impl Status {
    fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "REGRESSED",
            Status::NoisyOk => "ok (noisy)",
            Status::EnvInfo => "info (env)",
            Status::New => "new",
            Status::Missing => "MISSING",
            Status::FloorViolation => "FLOOR FAIL",
            Status::FloorSkipped => "floor skipped",
        }
    }
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Display unit.
    pub unit: String,
    /// Baseline point estimate, if present.
    pub baseline: Option<f64>,
    /// Current point estimate, if present.
    pub current: Option<f64>,
    /// Signed relative delta `(current − baseline) / baseline`.
    pub delta: Option<f64>,
    /// Effective worse-direction band after widening.
    pub band: f64,
    /// Verdict.
    pub status: Status,
}

/// Absolute floor on a current-run metric.
#[derive(Debug, Clone, Copy)]
pub enum Floor {
    /// Value must be at least this.
    AtLeast(f64),
    /// Value must be at most this.
    AtMost(f64),
}

/// Built-in floors: the pre-benchdiff one-shot CI gates, kept as
/// backstops so a corrupted baseline can never wave a real collapse
/// through. `min_host_parallelism` skips the floor on starved hosts
/// (the 4-thread speedup gate is meaningless on a 1-CPU runner).
pub struct FloorRule {
    /// Bench the rule applies to.
    pub bench: &'static str,
    /// Metric name within that bench.
    pub metric: &'static str,
    /// The bound.
    pub floor: Floor,
    /// Skip unless the *current* host has at least this many CPUs.
    pub min_host_parallelism: usize,
}

/// The floor table. See [`FloorRule`].
pub const FLOORS: &[FloorRule] = &[
    FloorRule {
        bench: "sweep",
        metric: "speedup/t4",
        floor: Floor::AtLeast(2.0),
        min_host_parallelism: 4,
    },
    FloorRule {
        bench: "step",
        metric: "thermal_speedup_exp_vs_rk4",
        floor: Floor::AtLeast(5.0),
        min_host_parallelism: 0,
    },
    // Batched lockstep stepping (DESIGN.md §15) must keep paying for its
    // complexity: a clean sweep at `--batch 8` must never fall below the
    // scalar chunk path on a single worker, so no host-parallelism gate.
    // The honest ceiling is modest — thermal is ~21% of a device step and
    // the rest is inherently scalar (Amdahl; see DESIGN.md §15), with the
    // measured session-level ratio ≈1.07× — so the backstop guards against
    // *regression to below-scalar*, while drift against the committed
    // baseline ratio is what catches erosion of the real gain.
    FloorRule {
        bench: "sweep",
        metric: "batch_speedup/b8",
        floor: Floor::AtLeast(1.0),
        min_host_parallelism: 0,
    },
    // Stratified subsampling (DESIGN.md §16) exists to make million-device
    // sweeps affordable: simulating n = 2000 of a 100k population must beat
    // exhaustively sweeping the population by a wide margin. The honest
    // ratio is ≈ pop/n = 50× (selection and estimation overhead are
    // negligible next to device simulation); ≥ 10× is the collapse
    // backstop, and the ratio is host-independent, so no parallelism gate.
    FloorRule {
        bench: "sweep",
        metric: "sample_speedup/n2000",
        floor: Floor::AtLeast(10.0),
        min_host_parallelism: 0,
    },
];

/// Full result of one diff run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Bench name (from the current report).
    pub bench: String,
    /// Per-metric rows, baseline order first, then new metrics.
    pub rows: Vec<MetricDiff>,
    /// Human-readable failure reasons (empty ⇔ `passed()`).
    pub failures: Vec<String>,
    /// Non-fatal notes (env mismatch, skipped floors, new metrics).
    pub notes: Vec<String>,
    /// Commit SHAs, for the trend line.
    pub baseline_sha: String,
    /// Current commit SHA.
    pub current_sha: String,
}

impl DiffReport {
    /// True when nothing regressed, no floor broke, and every check held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the comparison as a markdown table (also readable as
    /// plain text). Suitable for `$GITHUB_STEP_SUMMARY`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### benchdiff: `{}` — {} vs baseline {}\n\n",
            self.bench,
            short_sha(&self.current_sha),
            short_sha(&self.baseline_sha),
        ));
        out.push_str("| metric | unit | baseline | current | delta | band | status |\n");
        out.push_str("|---|---|---:|---:|---:|---:|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | ±{:.1}% | {} |\n",
                row.name,
                row.unit,
                row.baseline.map_or("—".to_owned(), fmt_value),
                row.current.map_or("—".to_owned(), fmt_value),
                row.delta
                    .map_or("—".to_owned(), |d| format!("{:+.1}%", d * 100.0)),
                row.band * 100.0,
                row.status.label(),
            ));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("- note: {note}\n"));
            }
        }
        if !self.failures.is_empty() {
            out.push('\n');
            for f in &self.failures {
                out.push_str(&format!("- **FAIL**: {f}\n"));
            }
        }
        out
    }

    /// One-line longitudinal summary: worst and best deltas plus the
    /// verdict, suitable for grep-able job logs.
    pub fn trend_line(&self) -> String {
        let deltas: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|r| r.delta.map(|d| (r.name.as_str(), d)))
            .collect();
        let verdict = if self.passed() { "pass" } else { "FAIL" };
        match (
            deltas
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)),
            deltas
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)),
        ) {
            (Some(worst), Some(best)) => format!(
                "trend: {} @ {} vs {}: worst {} {:+.1}%, best {} {:+.1}% [{}]",
                self.bench,
                short_sha(&self.current_sha),
                short_sha(&self.baseline_sha),
                worst.0,
                worst.1 * 100.0,
                best.0,
                best.1 * 100.0,
                verdict,
            ),
            _ => format!(
                "trend: {} @ {} vs {}: no comparable metrics [{}]",
                self.bench,
                short_sha(&self.current_sha),
                short_sha(&self.baseline_sha),
                verdict,
            ),
        }
    }
}

fn short_sha(sha: &str) -> String {
    if sha.len() >= 8 && sha.bytes().all(|b| b.is_ascii_hexdigit()) {
        sha[..8].to_owned()
    } else {
        sha.to_owned()
    }
}

fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if a >= 10_000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Compares `current` against `baseline` under `cfg`. See the module
/// docs for the rules.
pub fn diff(baseline: &BenchReport, current: &BenchReport, cfg: &DiffConfig) -> DiffReport {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut notes = Vec::new();

    if baseline.bench != current.bench {
        failures.push(format!(
            "bench mismatch: baseline is `{}`, current is `{}`",
            baseline.bench, current.bench
        ));
    }

    // Rule 3: machine comparability. Different host shape or compiler
    // makes absolute numbers incomparable — absolute-unit metrics go
    // informational, ratios gate on a widened band.
    let env_mismatch = baseline.env.host_parallelism != current.env.host_parallelism
        || baseline.env.rustc_version != current.env.rustc_version;
    if env_mismatch {
        notes.push(format!(
            "environment mismatch (baseline: {} CPUs, {}; current: {} CPUs, {}) — \
             absolute metrics reported informationally, ratio (`x`) bands widened \
             to ≥{:.0}%; refresh the baseline from this class of host to restore \
             tight gating",
            baseline.env.host_parallelism,
            baseline.env.rustc_version,
            current.env.host_parallelism,
            current.env.rustc_version,
            cfg.noisy_band * 100.0,
        ));
    }

    for base_metric in &baseline.metrics {
        let Some(cur_metric) = current.metric(&base_metric.name) else {
            rows.push(MetricDiff {
                name: base_metric.name.clone(),
                unit: base_metric.unit.clone(),
                baseline: Some(base_metric.value),
                current: None,
                delta: None,
                band: cfg.tolerance,
                status: Status::Missing,
            });
            failures.push(format!(
                "metric `{}` present in baseline but missing from current run",
                base_metric.name
            ));
            continue;
        };

        // Rule 2: noise-aware band widening.
        let spread = base_metric.rel_spread.max(cur_metric.rel_spread);
        let mut band = cfg.tolerance.max(cfg.noise_factor * spread);
        let noisy = base_metric.noisy || cur_metric.noisy;
        if noisy || env_mismatch {
            band = band.max(cfg.noisy_band);
        }

        let delta = if base_metric.value != 0.0 {
            (cur_metric.value - base_metric.value) / base_metric.value
        } else {
            0.0
        };
        // Rule 1: only worse-direction movement can regress.
        let worse = if cur_metric.higher_is_better {
            -delta
        } else {
            delta
        };

        // Rule 3: across machines only dimensionless ratios gate.
        let machine_dependent = cur_metric.unit != "x";
        let status = if env_mismatch && machine_dependent {
            Status::EnvInfo
        } else if worse > band {
            failures.push(format!(
                "metric `{}` regressed {:+.1}% (band ±{:.1}%): baseline {} → current {} {}",
                cur_metric.name,
                delta * 100.0,
                band * 100.0,
                fmt_value(base_metric.value),
                fmt_value(cur_metric.value),
                cur_metric.unit,
            ));
            Status::Regressed
        } else if -worse > band {
            Status::Improved
        } else if noisy || env_mismatch {
            Status::NoisyOk
        } else {
            Status::Ok
        };

        rows.push(MetricDiff {
            name: cur_metric.name.clone(),
            unit: cur_metric.unit.clone(),
            baseline: Some(base_metric.value),
            current: Some(cur_metric.value),
            delta: Some(delta),
            band,
            status,
        });
    }

    for cur_metric in &current.metrics {
        if baseline.metric(&cur_metric.name).is_none() {
            notes.push(format!(
                "new metric `{}` has no baseline yet (value {})",
                cur_metric.name,
                fmt_value(cur_metric.value)
            ));
            rows.push(MetricDiff {
                name: cur_metric.name.clone(),
                unit: cur_metric.unit.clone(),
                baseline: None,
                current: Some(cur_metric.value),
                delta: None,
                band: cfg.tolerance,
                status: Status::New,
            });
        }
    }

    // Rule 4: absolute floors on the current run.
    for rule in FLOORS {
        if rule.bench != current.bench {
            continue;
        }
        let Some(metric) = current.metric(rule.metric) else {
            failures.push(format!(
                "floor metric `{}` missing from current `{}` report",
                rule.metric, rule.bench
            ));
            continue;
        };
        if current.env.host_parallelism < rule.min_host_parallelism {
            notes.push(format!(
                "floor on `{}` skipped: host has {} CPU(s), rule needs ≥ {}",
                rule.metric, current.env.host_parallelism, rule.min_host_parallelism
            ));
            mark_floor(&mut rows, rule.metric, Status::FloorSkipped);
            continue;
        }
        let violated = match rule.floor {
            Floor::AtLeast(min) => metric.value < min,
            Floor::AtMost(max) => metric.value > max,
        };
        if violated {
            let bound = match rule.floor {
                Floor::AtLeast(min) => format!("≥ {min}"),
                Floor::AtMost(max) => format!("≤ {max}"),
            };
            failures.push(format!(
                "absolute floor violated: `{}` is {} {}, must be {}",
                rule.metric,
                fmt_value(metric.value),
                metric.unit,
                bound,
            ));
            mark_floor(&mut rows, rule.metric, Status::FloorViolation);
        }
    }

    // Rule 5: checks are unconditional.
    for check in &current.checks {
        if !check.ok {
            failures.push(format!("check `{}` failed in current run", check.name));
        }
    }
    for base_check in &baseline.checks {
        if !current.checks.iter().any(|c| c.name == base_check.name) {
            failures.push(format!(
                "check `{}` present in baseline but missing from current run",
                base_check.name
            ));
        }
    }

    DiffReport {
        bench: current.bench.clone(),
        rows,
        failures,
        notes,
        baseline_sha: baseline.env.commit_sha.clone(),
        current_sha: current.env.commit_sha.clone(),
    }
}

/// Floor verdicts override the drift verdict on their row — a floor
/// break must be visible even if the drift band was technically met.
fn mark_floor(rows: &mut [MetricDiff], metric: &str, status: Status) {
    if let Some(row) = rows.iter_mut().find(|r| r.name == metric) {
        if status == Status::FloorViolation || row.status == Status::Ok {
            row.status = status;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, Check, EnvFingerprint, Metric};

    fn report(bench: &str, mut metrics: Vec<Metric>) -> BenchReport {
        // Every floor metric must be present in a current report of its
        // bench, so sweep fixtures carry a passing batch ratio unless the
        // test supplies its own (appended, to keep `rows[0]` stable).
        if bench == "sweep" && !metrics.iter().any(|m| m.name == "batch_speedup/b8") {
            metrics.push(Metric::scalar("batch_speedup/b8", "x", true, 2.0, 0.01, false));
        }
        if bench == "sweep" && !metrics.iter().any(|m| m.name == "sample_speedup/n2000") {
            metrics.push(Metric::scalar(
                "sample_speedup/n2000",
                "x",
                true,
                50.0,
                0.01,
                false,
            ));
        }
        BenchReport {
            bench: bench.to_owned(),
            env: EnvFingerprint {
                host_parallelism: 4,
                rustc_version: "rustc-test".to_owned(),
                commit_sha: "deadbeefdeadbeef".to_owned(),
                sample_count: 5,
            },
            metrics,
            checks: vec![Check {
                name: "reports_identical".to_owned(),
                ok: true,
            }],
        }
    }

    fn quiet(name: &str, value: f64, higher_is_better: bool) -> Metric {
        Metric::scalar(name, "u", higher_is_better, value, 0.01, false)
    }

    #[test]
    fn identical_reports_pass() {
        let base = report("sweep", vec![quiet("speedup/t4", 2.5, true)]);
        let d = diff(&base, &base.clone(), &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert_eq!(d.rows[0].status, Status::Ok);
    }

    #[test]
    fn fifteen_percent_regression_fails_tight_band() {
        // A bench name outside the floor table isolates the band logic.
        let base = report(
            "micro",
            vec![quiet("thermal_steps_per_sec/exponential", 100.0, true)],
        );
        let cur = report(
            "micro",
            vec![quiet("thermal_steps_per_sec/exponential", 85.0, true)],
        );
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.rows[0].status, Status::Regressed);
        assert!(d.failures[0].contains("-15.0%"), "{}", d.failures[0]);
    }

    #[test]
    fn lower_is_better_direction_respected() {
        // ns/step going DOWN 15% is an improvement, not a regression.
        let base = report(
            "micro",
            vec![quiet("thermal_ns_per_step/rk4", 100.0, false)],
        );
        let cur = report("micro", vec![quiet("thermal_ns_per_step/rk4", 85.0, false)]);
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert_eq!(d.rows[0].status, Status::Improved);
        // …and going UP 15% fails.
        let worse = report(
            "micro",
            vec![quiet("thermal_ns_per_step/rk4", 115.0, false)],
        );
        assert!(!diff(&base, &worse, &DiffConfig::default()).passed());
    }

    #[test]
    fn noisy_metric_passes_where_quiet_would_fail() {
        let mut base_metric =
            Metric::scalar("devices_per_sec/t1", "devices/s", true, 100.0, 0.12, true);
        let mut cur_metric =
            Metric::scalar("devices_per_sec/t1", "devices/s", true, 80.0, 0.12, true);
        base_metric.noisy = true;
        cur_metric.noisy = true;
        let base = report("micro", vec![base_metric]);
        let cur = report("micro", vec![cur_metric]);
        // −20% would fail the default ±10% band, but the noisy flag
        // widens the band to ≥30%.
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert_eq!(d.rows[0].status, Status::NoisyOk);
    }

    #[test]
    fn floor_violation_fails_even_with_matching_baseline() {
        // Both baseline and current agree at 1.5× — drift is zero, but
        // the ≥2× backstop must still fire.
        let base = report("sweep", vec![quiet("speedup/t4", 1.5, true)]);
        let d = diff(&base, &base.clone(), &DiffConfig::default());
        assert!(!d.passed());
        assert!(
            d.failures.iter().any(|f| f.contains("floor")),
            "{:?}",
            d.failures
        );
        assert_eq!(d.rows[0].status, Status::FloorViolation);
    }

    #[test]
    fn batch_floor_gates_even_single_core_hosts() {
        // 0.9× at width 8 is below the ≥1.0× floor (batching slower than
        // scalar) — and the rule has no host-parallelism gate, so a 1-CPU
        // runner still enforces it.
        let base = report(
            "sweep",
            vec![
                quiet("speedup/t4", 2.5, true),
                Metric::scalar("batch_speedup/b8", "x", true, 0.9, 0.01, false),
            ],
        );
        let mut cur = base.clone();
        cur.env.host_parallelism = 1;
        let mut base1 = base.clone();
        base1.env.host_parallelism = 1;
        let d = diff(&base1, &cur, &DiffConfig::default());
        assert!(!d.passed());
        assert!(
            d.failures
                .iter()
                .any(|f| f.contains("batch_speedup/b8") && f.contains("floor")),
            "{:?}",
            d.failures
        );
        // A sweep report that omits the metric entirely fails too: the
        // floor cannot be dodged by not measuring.
        let cur_missing = BenchReport {
            metrics: vec![quiet("speedup/t4", 2.5, true)],
            ..base.clone()
        };
        let d = diff(&base, &cur_missing, &DiffConfig::default());
        assert!(!d.passed());
        assert!(
            d.failures.iter().any(|f| f.contains("missing")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn sample_floor_gates_collapse() {
        // A sampled sweep that only manages 6× over the extrapolated
        // full-fleet cost has lost its reason to exist; the ≥10× backstop
        // fires even with a matching (equally collapsed) baseline.
        let base = report(
            "sweep",
            vec![
                quiet("speedup/t4", 2.5, true),
                Metric::scalar("sample_speedup/n2000", "x", true, 6.0, 0.01, false),
            ],
        );
        let d = diff(&base, &base.clone(), &DiffConfig::default());
        assert!(!d.passed());
        assert!(
            d.failures
                .iter()
                .any(|f| f.contains("sample_speedup/n2000") && f.contains("floor")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn floor_skipped_on_starved_host() {
        let base = report("sweep", vec![quiet("speedup/t4", 1.2, true)]);
        let mut cur = base.clone();
        cur.env.host_parallelism = 1;
        cur.metrics[0] = quiet("speedup/t4", 1.2, true);
        let mut base2 = base.clone();
        base2.env.host_parallelism = 1;
        let d = diff(&base2, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.notes.iter().any(|n| n.contains("floor")), "{:?}", d.notes);
    }

    #[test]
    fn missing_metric_fails() {
        let base = report(
            "sweep",
            vec![
                quiet("speedup/t4", 2.5, true),
                quiet("devices_per_sec/t1", 50.0, true),
            ],
        );
        let cur = report("sweep", vec![quiet("speedup/t4", 2.5, true)]);
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(!d.passed());
        assert!(d.rows.iter().any(|r| r.status == Status::Missing));
    }

    #[test]
    fn new_metric_is_informational() {
        let base = report("sweep", vec![quiet("speedup/t4", 2.5, true)]);
        let cur = report(
            "sweep",
            vec![
                quiet("speedup/t4", 2.5, true),
                quiet("devices_per_sec/t8", 99.0, true),
            ],
        );
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.rows.iter().any(|r| r.status == Status::New));
    }

    #[test]
    fn failed_check_fails_diff() {
        let base = report("sweep", vec![quiet("speedup/t4", 2.5, true)]);
        let mut cur = base.clone();
        cur.checks[0].ok = false;
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(!d.passed());
        assert!(d.failures[0].contains("reports_identical"));
    }

    fn ratio(name: &str, value: f64) -> Metric {
        Metric::scalar(name, "x", true, value, 0.01, false)
    }

    #[test]
    fn env_mismatch_widens_ratio_bands_and_notes() {
        let base = report("sweep", vec![ratio("speedup/t4", 2.8)]);
        let mut cur = report("sweep", vec![ratio("speedup/t4", 2.2)]);
        cur.env.host_parallelism = 16;
        // −21% would fail tight, passes under the widened ≥30% band —
        // ratios stay comparable (and gated) across machines.
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert_eq!(d.rows[0].status, Status::NoisyOk);
        assert!(d.notes.iter().any(|n| n.contains("environment mismatch")));
        // …but a ratio collapse beyond even the widened band still
        // fails (non-floor bench isolates the band logic).
        let base2 = report("micro", vec![ratio("speedup/t2", 2.8)]);
        let mut bad2 = report("micro", vec![ratio("speedup/t2", 1.6)]);
        bad2.env.host_parallelism = 16;
        assert!(!diff(&base2, &bad2, &DiffConfig::default()).passed());
    }

    #[test]
    fn env_mismatch_absolute_metrics_are_informational() {
        // ns/step halving across machines says "different CPU", not
        // "regression" — must not fail, must be labelled info (env).
        let base = report("micro", vec![quiet("device_ns_per_step/rk4", 150.0, false)]);
        let mut cur = report("micro", vec![quiet("device_ns_per_step/rk4", 390.0, false)]);
        cur.env.host_parallelism = 16;
        let d = diff(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{:?}", d.failures);
        assert_eq!(d.rows[0].status, Status::EnvInfo);
        // Same drift with matching environments is a hard failure.
        let cur_same_env = report("micro", vec![quiet("device_ns_per_step/rk4", 390.0, false)]);
        assert!(!diff(&base, &cur_same_env, &DiffConfig::default()).passed());
    }

    #[test]
    fn table_and_trend_render() {
        let base = report("sweep", vec![quiet("speedup/t4", 2.5, true)]);
        let cur = report("sweep", vec![quiet("speedup/t4", 2.6, true)]);
        let d = diff(&base, &cur, &DiffConfig::default());
        let table = d.render_table();
        assert!(table.contains("| speedup/t4 |"), "{table}");
        let trend = d.trend_line();
        assert!(trend.starts_with("trend: sweep @"), "{trend}");
        assert!(trend.contains("[pass]"), "{trend}");
    }
}
