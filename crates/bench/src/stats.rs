//! Robust sample statistics for benchmark timing data.
//!
//! The SimpleBench variance reviews (SNIPPETS.md) showed that what ruins
//! benchmark reproducibility is not the estimator but the sampling
//! discipline: auto-scaled iteration counts produced 30–105 % run-to-run
//! variance while fixed iterations × high sample counts achieved < 4 %.
//! This module supplies the estimator half of that bargain: order
//! statistics with interpolation (p50/p90), median absolute deviation,
//! Tukey-fence outlier rejection, and a single [`RobustStats`] summary
//! that carries a *relative spread* guardrail — metrics whose spread
//! exceeds the threshold are flagged `noisy` so downstream gating
//! (`benchdiff`) can widen its tolerance band instead of flapping.
//!
//! All functions are deterministic pure functions of their input vector,
//! so the whole path is unit-testable with injected samples.

/// Consistency constant scaling MAD to the standard deviation of a
/// normal distribution (1 / Φ⁻¹(3/4)). Using the scaled value makes
/// `rel_spread` comparable to a coefficient of variation.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Default relative-spread guardrail: metrics whose scaled MAD exceeds
/// 5 % of the median are flagged `noisy`. Chosen from the SimpleBench
/// finding that a well-conditioned fixed-iteration benchmark sits
/// under 4 % even on a shared host.
pub const DEFAULT_NOISE_THRESHOLD: f64 = 0.05;

/// Robust summary of one benchmark's timed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustStats {
    /// Smallest retained sample.
    pub min: f64,
    /// Median (50th percentile) of retained samples — the point estimate.
    pub p50: f64,
    /// 90th percentile of retained samples.
    pub p90: f64,
    /// Mean of retained samples.
    pub mean: f64,
    /// Median absolute deviation of retained samples (unscaled).
    pub mad: f64,
    /// Scaled MAD relative to the median: `MAD_TO_SIGMA · mad / p50`.
    /// Zero when the median is zero (degenerate all-zero samples).
    pub rel_spread: f64,
    /// Samples discarded by the IQR fence.
    pub outliers_rejected: usize,
    /// Samples that survived the fence and fed every statistic above.
    pub retained: usize,
    /// True when `rel_spread` exceeded the caller's guardrail.
    pub noisy: bool,
}

/// Interpolated percentile of an ascending-sorted slice (`q` in 0..=1,
/// linear interpolation between closest ranks). Empty input returns 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median of an ascending-sorted slice. Empty input returns 0.
pub fn median(sorted: &[f64]) -> f64 {
    percentile(sorted, 0.5)
}

/// Median absolute deviation (unscaled) of an ascending-sorted slice.
pub fn mad(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let m = median(sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - m).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    median(&dev)
}

/// Tukey-fence outlier rejection on an ascending-sorted slice: samples
/// outside `[q1 − 1.5·IQR, q3 + 1.5·IQR]` are discarded. Returns the
/// retained (still sorted) samples and the rejected count. Slices of
/// fewer than 4 samples are returned unchanged — quartiles are
/// meaningless there.
pub fn iqr_retain(sorted: &[f64]) -> (Vec<f64>, usize) {
    if sorted.len() < 4 {
        return (sorted.to_vec(), 0);
    }
    let q1 = percentile(sorted, 0.25);
    let q3 = percentile(sorted, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - 1.5 * iqr;
    let hi = q3 + 1.5 * iqr;
    let retained: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&x| x >= lo && x <= hi)
        .collect();
    let rejected = sorted.len() - retained.len();
    (retained, rejected)
}

/// Full robust pipeline: sort, IQR-reject, then summarize. Returns
/// `None` for an empty sample vector — callers must treat that as a
/// skipped benchmark, never as a zero measurement.
pub fn robust(samples: &[f64], noise_threshold: f64) -> Option<RobustStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let (retained, outliers_rejected) = iqr_retain(&sorted);
    let p50 = median(&retained);
    let p90 = percentile(&retained, 0.9);
    let mean = retained.iter().sum::<f64>() / retained.len() as f64;
    let mad_v = mad(&retained);
    let rel_spread = if p50 > 0.0 {
        MAD_TO_SIGMA * mad_v / p50
    } else {
        0.0
    };
    Some(RobustStats {
        min: retained.first().copied().unwrap_or(0.0),
        p50,
        p90,
        mean,
        mad: mad_v,
        rel_spread,
        outliers_rejected,
        retained: retained.len(),
        noisy: rel_spread > noise_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        // rank = 0.9 * 4 = 3.6 → 4 + 0.6*(5-4)
        assert!((percentile(&v, 0.9) - 4.6).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mad_of_known_vector() {
        // median = 3, |x - 3| = [2,1,0,1,2] → sorted [0,1,1,2,2] → MAD 1
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn iqr_rejects_the_wild_point() {
        let mut v = vec![10.0, 10.1, 10.2, 10.3, 10.1, 10.2, 50.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (retained, rejected) = iqr_retain(&v);
        assert_eq!(rejected, 1);
        assert_eq!(retained.len(), 6);
        assert!(retained.iter().all(|&x| x < 11.0));
    }

    #[test]
    fn iqr_keeps_small_vectors_whole() {
        let v = [1.0, 2.0, 100.0];
        let (retained, rejected) = iqr_retain(&v);
        assert_eq!(rejected, 0);
        assert_eq!(retained, v.to_vec());
    }

    #[test]
    fn robust_quiet_samples_are_not_noisy() {
        let samples = [10.0, 10.1, 9.9, 10.05, 9.95, 10.0, 10.1, 9.9];
        let s = robust(&samples, DEFAULT_NOISE_THRESHOLD).unwrap();
        assert!(!s.noisy, "rel_spread {} should be quiet", s.rel_spread);
        assert!((s.p50 - 10.0).abs() < 0.1);
        assert_eq!(s.retained + s.outliers_rejected, samples.len());
    }

    #[test]
    fn robust_scattered_samples_are_noisy() {
        let samples = [10.0, 14.0, 8.0, 13.0, 9.0, 15.0, 7.5, 12.0];
        let s = robust(&samples, DEFAULT_NOISE_THRESHOLD).unwrap();
        assert!(s.noisy, "rel_spread {} should be noisy", s.rel_spread);
    }

    #[test]
    fn robust_outlier_does_not_poison_p50() {
        // One 10× outlier among 9 quiet samples: rejected, median stays.
        let samples = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.01, 10.0];
        let s = robust(&samples, DEFAULT_NOISE_THRESHOLD).unwrap();
        // The 10× point must go; a tight fence may also clip a
        // straggler from the cluster edge.
        assert!(s.outliers_rejected >= 1 && s.outliers_rejected <= 2);
        assert!((s.p50 - 1.0).abs() < 0.02);
        assert!(s.p90 < 2.0, "10x outlier survived: p90 = {}", s.p90);
        assert!(!s.noisy);
    }

    #[test]
    fn robust_empty_is_none_not_zero() {
        assert!(robust(&[], DEFAULT_NOISE_THRESHOLD).is_none());
    }

    #[test]
    fn robust_all_zero_samples_do_not_divide_by_zero() {
        let s = robust(&[0.0, 0.0, 0.0], DEFAULT_NOISE_THRESHOLD).unwrap();
        assert_eq!(s.rel_spread, 0.0);
        assert!(!s.noisy);
    }
}
