//! A tiny, dependency-free micro-benchmark harness.
//!
//! Mirrors the slice of the Criterion API the `benches/` files use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the `criterion_group!`/`criterion_main!`
//! macros — so the bench sources read identically while building with no
//! external crates. Each benchmark runs a short warmup, then `sample_size`
//! timed samples, and prints min/median/mean per-iteration times.
//!
//! This is a measurement convenience, not a statistics engine: no outlier
//! rejection, no regression against saved baselines.

use std::hint::black_box;
use std::time::Instant;

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a fresh harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 20 }
    }
}

/// A named collection of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: warmup, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        // Calibration pass: find an iteration count that makes one sample
        // take at least ~1 ms, so Instant resolution doesn't dominate.
        f(&mut bencher);
        let per_iter = bencher.samples.last().copied().unwrap_or(1e-3);
        bencher.iters_per_sample = ((1e-3 / per_iter.max(1e-12)).ceil() as u64).clamp(1, 10_000);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut sorted = bencher.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = sorted.first().copied().unwrap_or(0.0);
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "  {name:<32} min {:>12} median {:>12} mean {:>12}",
            format_time(min),
            format_time(median),
            format_time(mean)
        );
        self
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Times closures; one `iter` call produces one sample.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `iters_per_sample` calls of `f` and records the mean seconds
    /// per iteration as one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.samples.push(elapsed / self.iters_per_sample as f64);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Registers benchmark functions under a group name, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::timing::Criterion::new();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        let mut runs = 0u64;
        group.sample_size(3).bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // Calibration pass + 3 samples, each at least one iteration.
        assert!(runs >= 4);
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
