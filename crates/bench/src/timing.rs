//! A tiny, dependency-free micro-benchmark harness with
//! statistics-grade sampling discipline.
//!
//! Mirrors the slice of the Criterion API the `benches/` files use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the `criterion_group!`/`criterion_main!`
//! macros — so the bench sources read identically while building with no
//! external crates.
//!
//! Sampling follows the SimpleBench variance findings (SNIPPETS.md;
//! DESIGN.md §14): **fixed iteration counts × high sample counts**.
//! Auto-scaled iteration counts were shown to produce 30–105 %
//! run-to-run variance because the scaler itself is non-deterministic;
//! here the per-sample iteration count is either pinned explicitly via
//! [`BenchmarkGroup::iterations`] or calibrated **once** before the
//! first sample, then held fixed for every sample and recorded in the
//! result. Each benchmark reports robust statistics (p50/p90/MAD after
//! IQR outlier rejection, via [`crate::stats`]) and is flagged `noisy`
//! when its relative spread exceeds the guardrail — never silently
//! averaged into a stable-looking number.
//!
//! A benchmark whose closure never calls [`Bencher::iter`] produces no
//! samples; it is recorded as *skipped* and reported as such instead of
//! panicking on an empty sample vector.

use crate::stats::{self, RobustStats, DEFAULT_NOISE_THRESHOLD};
use std::hint::black_box;
use std::time::Instant;

/// Outcome of one registered benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group the benchmark ran in.
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Pinned (or once-calibrated) iterations per sample.
    pub iterations: u64,
    /// Timed samples taken (before outlier rejection).
    pub sample_count: usize,
    /// Robust summary, or `None` when the closure never called
    /// [`Bencher::iter`] (the benchmark is *skipped*, not zero).
    pub stats: Option<RobustStats>,
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    noise_threshold: Option<f64>,
}

impl Criterion {
    /// Creates a fresh harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the relative-spread guardrail (default
    /// [`DEFAULT_NOISE_THRESHOLD`]).
    pub fn noise_threshold(&mut self, threshold: f64) -> &mut Self {
        self.noise_threshold = Some(threshold.max(0.0));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 20,
            iterations: None,
            clean_state: None,
        }
    }

    /// All results recorded so far (in registration order).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn threshold(&self) -> f64 {
        self.noise_threshold.unwrap_or(DEFAULT_NOISE_THRESHOLD)
    }
}

/// A named collection of benchmarks sharing a sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    iterations: Option<u64>,
    clean_state: Option<Box<dyn FnMut()>>,
}

impl std::fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .field("sample_size", &self.sample_size)
            .field("iterations", &self.iterations)
            .field("clean_state", &self.clean_state.is_some())
            .finish()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Pins the per-sample iteration count for every benchmark in this
    /// group. Without this, the count is calibrated once per benchmark
    /// (before the first timed sample) and then held fixed — it never
    /// re-scales between samples or runs of the same binary.
    pub fn iterations(&mut self, n: u64) -> &mut Self {
        self.iterations = Some(n.max(1));
        self
    }

    /// Registers a clean-state hook run before each benchmark in the
    /// group starts sampling (after calibration). Use it to reset
    /// caches, drop scratch state, or let the host settle between
    /// configurations — the other half of the SimpleBench recipe.
    pub fn clean_state(&mut self, hook: impl FnMut() + 'static) -> &mut Self {
        self.clean_state = Some(Box::new(hook));
        self
    }

    /// Runs one benchmark: optional calibration, clean-state hook, then
    /// `sample_size` timed samples at a fixed iteration count.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        let iterations = match self.iterations {
            Some(n) => n,
            None => {
                // Calibration pass: find an iteration count that makes
                // one sample take ≥ ~1 ms so Instant resolution doesn't
                // dominate. Runs ONCE; the count is then pinned for all
                // samples and recorded in the result.
                f(&mut bencher);
                let per_iter = bencher.samples.last().copied().unwrap_or(1e-3);
                ((1e-3 / per_iter.max(1e-12)).ceil() as u64).clamp(1, 10_000)
            }
        };
        bencher.iters_per_sample = iterations;
        bencher.samples.clear();
        if let Some(hook) = self.clean_state.as_mut() {
            hook();
        }
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }

        let threshold = self.criterion.threshold();
        let stats = stats::robust(&bencher.samples, threshold);
        match &stats {
            None => {
                // The closure never called `b.iter`: no samples exist.
                // Report a skip instead of indexing an empty vector.
                println!("  {name:<32} SKIPPED (benchmark closure never called b.iter)");
            }
            Some(s) => {
                println!(
                    "  {name:<32} p50 {:>11} p90 {:>11} mad {:>11} spread {:>5.1}%{} \
                     ({} samples x {} iters{})",
                    format_time(s.p50),
                    format_time(s.p90),
                    format_time(s.mad),
                    s.rel_spread * 100.0,
                    if s.noisy { " NOISY" } else { "" },
                    s.retained,
                    iterations,
                    if s.outliers_rejected > 0 {
                        format!(", {} outlier(s) rejected", s.outliers_rejected)
                    } else {
                        String::new()
                    },
                );
            }
        }
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            name: name.to_owned(),
            iterations,
            sample_count: bencher.samples.len(),
            stats,
        });
        self
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Times closures; one `iter` call produces one sample.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `iters_per_sample` calls of `f` and records the mean
    /// seconds per iteration as one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.samples.push(elapsed / self.iters_per_sample as f64);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Registers benchmark functions under a group name, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::timing::Criterion::new();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group.sample_size(3).bench_function("counter", |b| {
            let mut runs = 0u64;
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        let result = &c.results()[0];
        assert_eq!(result.sample_count, 3);
        assert!(result.iterations >= 1);
        let stats = result.stats.as_ref().unwrap();
        assert!(stats.p50 >= 0.0);
    }

    #[test]
    fn pinned_iterations_skip_calibration_and_are_recorded() {
        let calls = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let probe = std::rc::Rc::clone(&calls);
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(4)
            .iterations(7)
            .bench_function("pinned", move |b| b.iter(|| probe.set(probe.get() + 1)));
        group.finish();
        let result = &c.results()[0];
        assert_eq!(result.iterations, 7);
        assert_eq!(result.sample_count, 4);
        // No calibration pass: exactly samples × iterations executions.
        assert_eq!(calls.get(), 4 * 7);
    }

    #[test]
    fn closure_without_iter_is_skipped_not_a_panic() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        // This closure never calls b.iter — the old shim indexed
        // sorted[len/2] on an empty vector here and panicked.
        group
            .sample_size(3)
            .iterations(1)
            .bench_function("empty", |_b| {});
        group.finish();
        let result = &c.results()[0];
        assert_eq!(result.sample_count, 0);
        assert!(result.stats.is_none());
    }

    #[test]
    fn clean_state_hook_runs_once_per_benchmark() {
        let count = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let probe = std::rc::Rc::clone(&count);
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(5)
            .iterations(1)
            .clean_state(move || probe.set(probe.get() + 1));
        group.bench_function("a", |b| b.iter(|| 1u32));
        group.bench_function("b", |b| b.iter(|| 2u32));
        group.finish();
        assert_eq!(count.get(), 2);
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
