//! Machine-readable benchmark reports: the `pv-bench-report/v1` schema.
//!
//! Both perf benches (`sweep` and `step`) emit the same JSON shape so a
//! single tool — `benchdiff` — can gate any of them against a committed
//! baseline. A report carries:
//!
//! * an **environment fingerprint** (host parallelism, rustc version,
//!   commit SHA, sample count) so a diff can tell "code got slower"
//!   apart from "different machine";
//! * a list of **metrics**, each with a robust point estimate (`value`,
//!   the p50), spread statistics, the pinned iteration count, and the
//!   `noisy` guardrail flag from [`crate::stats`];
//! * a list of boolean **checks** (e.g. the sweep's determinism
//!   contract) that `benchdiff` fails the build on unconditionally.
//!
//! Parsing is strict: [`BenchReport::from_json`] rejects missing or
//! mistyped fields with a field-path error message, which is what
//! `benchdiff --check-schema` surfaces as a PR-time lint.

use crate::stats::RobustStats;
use pv_json::Json;
use std::path::Path;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "pv-bench-report/v1";

/// Where the benchmark ran: enough context to judge comparability.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvFingerprint {
    /// `std::thread::available_parallelism` on the measuring host.
    pub host_parallelism: usize,
    /// `rustc -V` output, or `"unknown"` outside a toolchain.
    pub rustc_version: String,
    /// Commit SHA (`GITHUB_SHA` or `git rev-parse HEAD`), or `"unknown"`.
    pub commit_sha: String,
    /// Timed samples taken per metric.
    pub sample_count: usize,
}

impl EnvFingerprint {
    /// Captures the current host's fingerprint.
    pub fn capture(sample_count: usize) -> Self {
        let rustc_version = std::process::Command::new("rustc")
            .arg("-V")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        let commit_sha = std::env::var("GITHUB_SHA")
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                std::process::Command::new("git")
                    .args(["rev-parse", "HEAD"])
                    .output()
                    .ok()
                    .filter(|o| o.status.success())
                    .and_then(|o| String::from_utf8(o.stdout).ok())
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_owned());
        Self {
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rustc_version,
            commit_sha,
            sample_count,
        }
    }
}

/// One gated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable name `benchdiff` matches baselines by (e.g. `speedup/t4`).
    pub name: String,
    /// Display unit (`devices/s`, `ns/step`, `ms`, `x`, …).
    pub unit: String,
    /// Direction: `true` when bigger numbers are better.
    pub higher_is_better: bool,
    /// Robust point estimate (p50 of retained samples, or the derived
    /// scalar for ratio metrics).
    pub value: f64,
    /// 90th percentile of retained samples (== `value` for scalars).
    pub p90: f64,
    /// Smallest retained sample (== `value` for scalars).
    pub min: f64,
    /// Scaled MAD / p50; see [`crate::stats`].
    pub rel_spread: f64,
    /// True when `rel_spread` exceeded the bench's guardrail — the
    /// signal for `benchdiff` to widen its tolerance band.
    pub noisy: bool,
    /// Timed samples behind the estimate (0 for derived scalars).
    pub samples: usize,
    /// Pinned iterations per sample (1 when a sample is one full run).
    pub iterations: u64,
    /// Samples discarded by the IQR fence.
    pub outliers_rejected: usize,
}

impl Metric {
    /// Builds a metric from a robust sample summary.
    pub fn from_stats(
        name: impl Into<String>,
        unit: impl Into<String>,
        higher_is_better: bool,
        stats: &RobustStats,
        iterations: u64,
    ) -> Self {
        Self {
            name: name.into(),
            unit: unit.into(),
            higher_is_better,
            value: stats.p50,
            p90: stats.p90,
            min: stats.min,
            rel_spread: stats.rel_spread,
            noisy: stats.noisy,
            samples: stats.retained + stats.outliers_rejected,
            iterations,
            outliers_rejected: stats.outliers_rejected,
        }
    }

    /// Builds a derived scalar metric (e.g. a speedup ratio). Spread is
    /// propagated by the caller — pass the worst component's spread so
    /// the noise-aware widening rule still applies to ratios.
    pub fn scalar(
        name: impl Into<String>,
        unit: impl Into<String>,
        higher_is_better: bool,
        value: f64,
        rel_spread: f64,
        noisy: bool,
    ) -> Self {
        Self {
            name: name.into(),
            unit: unit.into(),
            higher_is_better,
            value,
            p90: value,
            min: value,
            rel_spread,
            noisy,
            samples: 0,
            iterations: 0,
            outliers_rejected: 0,
        }
    }
}

/// A pass/fail invariant carried alongside the metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// Stable name (e.g. `reports_identical`).
    pub name: String,
    /// Whether the invariant held on this run.
    pub ok: bool,
}

/// A full bench run: fingerprint + metrics + checks.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Which bench produced this (`sweep`, `step`).
    pub bench: String,
    /// Where and how it ran.
    pub env: EnvFingerprint,
    /// Gated measurements.
    pub metrics: Vec<Metric>,
    /// Hard invariants.
    pub checks: Vec<Check>,
}

impl BenchReport {
    /// Creates an empty report for `bench` with a captured fingerprint.
    pub fn new(bench: impl Into<String>, sample_count: usize) -> Self {
        Self {
            bench: bench.into(),
            env: EnvFingerprint::capture(sample_count),
            metrics: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the `pv-bench-report/v1` JSON shape.
    pub fn to_json(&self) -> Json {
        let mut env = Json::object();
        env.insert(
            "host_parallelism",
            Json::Number(self.env.host_parallelism as f64),
        );
        env.insert(
            "rustc_version",
            Json::String(self.env.rustc_version.clone()),
        );
        env.insert("commit_sha", Json::String(self.env.commit_sha.clone()));
        env.insert("sample_count", Json::Number(self.env.sample_count as f64));

        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut o = Json::object();
                o.insert("name", Json::String(m.name.clone()));
                o.insert("unit", Json::String(m.unit.clone()));
                o.insert("higher_is_better", Json::Bool(m.higher_is_better));
                o.insert("value", Json::Number(m.value));
                o.insert("p90", Json::Number(m.p90));
                o.insert("min", Json::Number(m.min));
                o.insert("rel_spread", Json::Number(m.rel_spread));
                o.insert("noisy", Json::Bool(m.noisy));
                o.insert("samples", Json::Number(m.samples as f64));
                o.insert("iterations", Json::Number(m.iterations as f64));
                o.insert(
                    "outliers_rejected",
                    Json::Number(m.outliers_rejected as f64),
                );
                o
            })
            .collect();

        let checks = self
            .checks
            .iter()
            .map(|c| {
                let mut o = Json::object();
                o.insert("name", Json::String(c.name.clone()));
                o.insert("ok", Json::Bool(c.ok));
                o
            })
            .collect();

        let mut out = Json::object();
        out.insert("schema", Json::String(SCHEMA.to_owned()));
        out.insert("bench", Json::String(self.bench.clone()));
        out.insert("env", env);
        out.insert("metrics", Json::Array(metrics));
        out.insert("checks", Json::Array(checks));
        out
    }

    /// Strict parse of the `pv-bench-report/v1` shape. Errors name the
    /// offending field path.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing string field `schema`")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let bench = json
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing string field `bench`")?
            .to_owned();
        let env = json.get("env").ok_or("missing object field `env`")?;
        let env = EnvFingerprint {
            host_parallelism: field_usize(env, "env", "host_parallelism")?,
            rustc_version: field_str(env, "env", "rustc_version")?,
            commit_sha: field_str(env, "env", "commit_sha")?,
            sample_count: field_usize(env, "env", "sample_count")?,
        };
        let metrics_json = json
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing array field `metrics`")?;
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for (i, m) in metrics_json.iter().enumerate() {
            let at = format!("metrics[{i}]");
            metrics.push(Metric {
                name: field_str(m, &at, "name")?,
                unit: field_str(m, &at, "unit")?,
                higher_is_better: field_bool(m, &at, "higher_is_better")?,
                value: field_f64(m, &at, "value")?,
                p90: field_f64(m, &at, "p90")?,
                min: field_f64(m, &at, "min")?,
                rel_spread: field_f64(m, &at, "rel_spread")?,
                noisy: field_bool(m, &at, "noisy")?,
                samples: field_usize(m, &at, "samples")?,
                iterations: field_f64(m, &at, "iterations")? as u64,
                outliers_rejected: field_usize(m, &at, "outliers_rejected")?,
            });
        }
        let checks_json = json
            .get("checks")
            .and_then(Json::as_array)
            .ok_or("missing array field `checks`")?;
        let mut checks = Vec::with_capacity(checks_json.len());
        for (i, c) in checks_json.iter().enumerate() {
            let at = format!("checks[{i}]");
            checks.push(Check {
                name: field_str(c, &at, "name")?,
                ok: field_bool(c, &at, "ok")?,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for m in &metrics {
            if !seen.insert(m.name.as_str()) {
                return Err(format!("duplicate metric name `{}`", m.name));
            }
        }
        Ok(Self {
            bench,
            env,
            metrics,
            checks,
        })
    }

    /// Writes the report as pretty JSON (with trailing newline).
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }

    /// Loads and strictly parses a report file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn field_f64(obj: &Json, at: &str, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field `{at}.{key}`"))
}

fn field_usize(obj: &Json, at: &str, key: &str) -> Result<usize, String> {
    let v = field_f64(obj, at, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field `{at}.{key}` must be a non-negative integer"));
    }
    Ok(v as usize)
}

fn field_str(obj: &Json, at: &str, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{at}.{key}`"))
}

fn field_bool(obj: &Json, at: &str, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing bool field `{at}.{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{robust, DEFAULT_NOISE_THRESHOLD};

    fn sample_report() -> BenchReport {
        let stats = robust(&[1.0, 1.1, 0.9, 1.0, 1.05], DEFAULT_NOISE_THRESHOLD).unwrap();
        let mut r = BenchReport::new("sweep", 5);
        r.metrics.push(Metric::from_stats(
            "devices_per_sec/t1",
            "devices/s",
            true,
            &stats,
            1,
        ));
        r.metrics
            .push(Metric::scalar("speedup/t4", "x", true, 2.4, 0.01, false));
        r.checks.push(Check {
            name: "reports_identical".to_owned(),
            ok: true,
        });
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let mut json = sample_report().to_json();
        if let Json::Object(entries) = &mut json {
            entries[0].1 = Json::String("something-else/v9".to_owned());
        }
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn parse_rejects_missing_metric_field() {
        let text = r#"{
          "schema": "pv-bench-report/v1",
          "bench": "sweep",
          "env": {"host_parallelism": 1, "rustc_version": "x", "commit_sha": "y", "sample_count": 3},
          "metrics": [{"name": "m", "unit": "x", "higher_is_better": true}],
          "checks": []
        }"#;
        let json = Json::from_str(text).unwrap();
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.contains("metrics[0].value"), "{err}");
    }

    #[test]
    fn parse_rejects_duplicate_metric_names() {
        let mut r = sample_report();
        let dup = r.metrics[0].clone();
        r.metrics.push(dup);
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("duplicate metric name"), "{err}");
    }

    #[test]
    fn fingerprint_capture_is_populated() {
        let env = EnvFingerprint::capture(7);
        assert!(env.host_parallelism >= 1);
        assert_eq!(env.sample_count, 7);
        assert!(!env.rustc_version.is_empty());
        assert!(!env.commit_sha.is_empty());
    }
}
