//! Benchmark harness crate. See benches/ and src/bin/repro.rs.
//!
//! The [`timing`] module is a dependency-free stand-in for the subset of
//! the Criterion API the benches use, so `cargo bench` works offline —
//! upgraded to a statistics engine: fixed (pinned or once-calibrated)
//! iteration counts, high sample counts with clean-state hooks, and
//! robust p50/p90/MAD reporting with a `noisy` relative-spread
//! guardrail ([`stats`]).
//!
//! The perf benches (`sweep`, `step`) write their results in the shared
//! `pv-bench-report/v1` JSON schema ([`report`]), and the `benchdiff`
//! binary ([`diff`]) gates fresh reports against the committed baselines
//! under `benches/baselines/` in CI. DESIGN.md §14 documents the
//! methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod report;
pub mod stats;
pub mod timing;
