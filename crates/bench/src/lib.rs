//! Benchmark harness crate. See benches/ and src/bin/repro.rs.
