//! Benchmark harness crate. See benches/ and src/bin/repro.rs.
//!
//! The [`timing`] module is a dependency-free stand-in for the subset of
//! the Criterion API the benches use, so `cargo bench` works offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;
