//! Cooperative SIGINT/SIGTERM handling for the CLI binaries.
//!
//! Shared between the `src/bin/*` targets via `#[path]` include (it must
//! not live in `src/bin/` itself, where cargo would auto-discover it as a
//! binary, and it cannot live in the library, which forbids unsafe code).
//!
//! The handler only flips a static [`AtomicBool`] — the single operation
//! that is async-signal-safe — and the sweep loop polls it between device
//! sessions through a [`CancelToken`]: the in-flight session finishes, its
//! outcome is journaled, and the process exits cleanly so a later
//! `--resume` picks up exactly where it stopped. The handler then restores
//! the default disposition, so a second Ctrl-C while the current session
//! drains kills the process immediately (the journal stays valid: recovery
//! drops any torn tail).

use accubench::journal::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    // `signal`'s handler argument is pointer-sized and also carries the
    // sentinel SIG_DFL (0), so it is declared as usize rather than a fn
    // pointer (Rust fn pointers cannot be null).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, no allocation, no locks.
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Second signal falls through to the default (terminating)
        // disposition.
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (reinstalling is harmless) and
/// returns the token the sweep loop polls.
pub fn install() -> CancelToken {
    imp::install();
    CancelToken::from_static(&INTERRUPTED)
}
