//! Cooperative SIGINT/SIGTERM handling for the CLI binaries.
//!
//! Shared between the `src/bin/*` targets via `#[path]` include (it must
//! not live in `src/bin/` itself, where cargo would auto-discover it as a
//! binary, and it cannot live in the library, which forbids unsafe code).
//!
//! The handler only performs async-signal-safe operations — one atomic
//! store, one `write(2)` to stderr, two `signal(2)` calls — and the sweep
//! loop polls the flag between device sessions through a [`CancelToken`]:
//! the in-flight session finishes, its outcome is journaled, and the
//! process exits cleanly so a later `--resume` picks up exactly where it
//! stopped. The handler announces this ("press Ctrl-C again to abort
//! immediately") and restores the default disposition, so a second Ctrl-C
//! while the current session drains kills the process immediately (the
//! journal stays valid: recovery drops any torn tail).

use accubench::journal::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;
    const STDERR: i32 = 2;

    // `signal`'s handler argument is pointer-sized and also carries the
    // sentinel SIG_DFL (0), so it is declared as usize rather than a fn
    // pointer (Rust fn pointers cannot be null).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, one raw write(2) (eprintln!
        // would allocate and lock — both forbidden in a handler), no locks.
        INTERRUPTED.store(true, Ordering::SeqCst);
        const MSG: &[u8] =
            b"\ninterrupt: finishing current device (press Ctrl-C again to abort immediately)\n";
        unsafe {
            // Best-effort: a full pipe or closed stderr must not stall the
            // handler, so the return value is deliberately ignored.
            let _ = write(STDERR, MSG.as_ptr(), MSG.len());
            // Second signal falls through to the default (terminating)
            // disposition.
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (reinstalling is harmless) and
/// returns the token the sweep loop polls.
pub fn install() -> CancelToken {
    imp::install();
    CancelToken::from_static(&INTERRUPTED)
}
