//! Golden tests for the `benchdiff` binary: the regression gate must
//! pass a clean run, fail a synthetic 15 % regression, widen for noisy
//! metrics, enforce the absolute floors, and give actionable errors for
//! missing baselines and malformed schemas. Each case drives the real
//! binary (`CARGO_BIN_EXE_benchdiff`) end-to-end over temp files.

use pv_bench::report::{BenchReport, Check, EnvFingerprint, Metric};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Unique per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "pv-benchdiff-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn env() -> EnvFingerprint {
    EnvFingerprint {
        host_parallelism: 4,
        rustc_version: "rustc-golden".to_owned(),
        commit_sha: "cafebabecafebabe".to_owned(),
        sample_count: 5,
    }
}

/// A healthy sweep report: comfortable speedup, quiet spreads.
fn sweep_report() -> BenchReport {
    BenchReport {
        bench: "sweep".to_owned(),
        env: env(),
        metrics: vec![
            Metric::scalar("devices_per_sec/t1", "devices/s", true, 1000.0, 0.01, false),
            Metric::scalar("devices_per_sec/t4", "devices/s", true, 2600.0, 0.02, false),
            Metric::scalar("speedup/t4", "x", true, 2.6, 0.02, false),
            Metric::scalar("batch_speedup/b8", "x", true, 1.1, 0.02, false),
            // Appended last so the index-based fixture edits above stay
            // stable; every floor metric must be present in a sweep report.
            Metric::scalar("sample_speedup/n2000", "x", true, 50.0, 0.02, false),
        ],
        checks: vec![Check {
            name: "reports_identical".to_owned(),
            ok: true,
        }],
    }
}

fn run_benchdiff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_benchdiff"))
        .args(args)
        .output()
        .expect("benchdiff binary runs")
}

fn diff_files(baseline: &Path, current: &Path) -> Output {
    run_benchdiff(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        current.to_str().unwrap(),
    ])
}

#[test]
fn golden_pass_identical_run() {
    let dir = Scratch::new("pass");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    sweep_report().write(&baseline).unwrap();
    sweep_report().write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("OK: no regression"), "{stdout}");
    assert!(stdout.contains("trend: sweep @"), "{stdout}");
    // The table renders a row per metric with the band column.
    assert!(stdout.contains("| speedup/t4 |"), "{stdout}");
}

#[test]
fn golden_fifteen_percent_regression_fails() {
    let dir = Scratch::new("regress");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    sweep_report().write(&baseline).unwrap();
    let mut slow = sweep_report();
    // Synthetic 15% slip on the 4-thread rate (speedup still above the
    // 2× floor, so it is the band — not the backstop — that catches it).
    slow.metrics[1] = Metric::scalar("devices_per_sec/t4", "devices/s", true, 2210.0, 0.02, false);
    slow.metrics[2] = Metric::scalar("speedup/t4", "x", true, 2.21, 0.02, false);
    slow.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stdout}\n{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("devices_per_sec/t4"), "{stdout}");
    assert!(stderr.contains("FAIL"), "{stderr}");
}

#[test]
fn golden_noisy_metric_widens_band_and_passes() {
    let dir = Scratch::new("noisy");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    let mut base = sweep_report();
    base.metrics[1] = Metric::scalar("devices_per_sec/t4", "devices/s", true, 2600.0, 0.12, true);
    base.write(&baseline).unwrap();
    let mut cur = sweep_report();
    // Same −15% drift as the failing case, but the metric is flagged
    // noisy on both sides → the band widens to ≥30% and it passes.
    // (speedup/t4 stays quiet and unchanged so only the noisy rule is
    // in play.)
    cur.metrics[1] = Metric::scalar("devices_per_sec/t4", "devices/s", true, 2210.0, 0.12, true);
    cur.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("ok (noisy)"), "{stdout}");
}

#[test]
fn golden_floor_backstop_fails_even_without_drift() {
    let dir = Scratch::new("floor");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    // Baseline itself already below the 2× floor: drift is zero, the
    // absolute backstop must still fail the current run.
    let mut report = sweep_report();
    report.metrics[2] = Metric::scalar("speedup/t4", "x", true, 1.5, 0.02, false);
    report.write(&baseline).unwrap();
    report.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FLOOR FAIL"), "{stdout}");
}

#[test]
fn golden_batch_floor_backstop_fails_even_without_drift() {
    let dir = Scratch::new("batchfloor");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    // Batched stepping slipping below scalar throughput (0.9×): zero
    // drift against an equally-bad baseline, yet the ≥1.0× backstop fails
    // the run — and it applies even on a single-CPU host.
    let mut report = sweep_report();
    report.env.host_parallelism = 1;
    report.metrics[3] = Metric::scalar("batch_speedup/b8", "x", true, 0.9, 0.02, false);
    report.write(&baseline).unwrap();
    report.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FLOOR FAIL"), "{stdout}");
    assert!(stdout.contains("batch_speedup/b8"), "{stdout}");
}

#[test]
fn golden_missing_baseline_gives_refresh_hint() {
    let dir = Scratch::new("missing");
    let baseline = dir.path("does-not-exist.json");
    let current = dir.path("current.json");
    sweep_report().write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("cannot load baseline"), "{stderr}");
    assert!(stderr.contains("Refreshing baselines"), "{stderr}");
}

#[test]
fn golden_missing_metric_in_current_fails() {
    let dir = Scratch::new("dropped");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    sweep_report().write(&baseline).unwrap();
    let mut cur = sweep_report();
    cur.metrics.remove(0); // drop devices_per_sec/t1
    cur.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("MISSING"), "{stdout}");
}

#[test]
fn golden_failed_check_fails() {
    let dir = Scratch::new("check");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    sweep_report().write(&baseline).unwrap();
    let mut cur = sweep_report();
    cur.checks[0].ok = false;
    cur.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("reports_identical"));
}

#[test]
fn check_schema_accepts_valid_and_rejects_garbage() {
    let dir = Scratch::new("schema");
    let good = dir.path("good.json");
    sweep_report().write(&good).unwrap();
    let out = run_benchdiff(&["--check-schema", good.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok:"));

    // Valid JSON, wrong shape: missing metric fields.
    let bad = dir.path("bad.json");
    std::fs::write(
        &bad,
        r#"{"schema": "pv-bench-report/v1", "bench": "sweep",
            "env": {"host_parallelism": 1, "rustc_version": "x",
                    "commit_sha": "y", "sample_count": 1},
            "metrics": [{"name": "m"}], "checks": []}"#,
    )
    .unwrap();
    let out = run_benchdiff(&["--check-schema", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SCHEMA ERROR"), "{stderr}");
    assert!(stderr.contains("metrics[0]"), "{stderr}");

    // Not JSON at all.
    let garbage = dir.path("garbage.json");
    std::fs::write(&garbage, "not json {").unwrap();
    let out = run_benchdiff(&["--check-schema", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn env_mismatch_widens_bands() {
    let dir = Scratch::new("envmismatch");
    let baseline = dir.path("baseline.json");
    let current = dir.path("current.json");
    sweep_report().write(&baseline).unwrap();
    let mut cur = sweep_report();
    cur.env.host_parallelism = 16;
    // −20% on both would fail the tight band; across machines the
    // absolute devices/s metric goes informational and the ratio's
    // band widens to ≥30%, so the gate passes with explanatory notes.
    cur.metrics[1] = Metric::scalar("devices_per_sec/t4", "devices/s", true, 2080.0, 0.02, false);
    cur.metrics[2] = Metric::scalar("speedup/t4", "x", true, 2.08, 0.02, false);
    cur.write(&current).unwrap();
    let out = diff_files(&baseline, &current);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("environment mismatch"), "{stdout}");
    assert!(stdout.contains("info (env)"), "{stdout}");
}
