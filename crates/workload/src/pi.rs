//! Rabinowitz–Wagon spigot computation of π digits.
//!
//! This is the actual arithmetic the paper's benchmark app performs in its
//! JavaScript worker: compute the first 4,285 decimal digits of π, in a
//! loop, on every core. The host-side examples and Criterion benches run
//! this Rust port for genuine CPU-bound load; its output is testable
//! against the known expansion, which also guards against the compiler
//! optimising the benchmark away.

use crate::WorkloadError;

/// Number of digits the paper's workload computes per iteration.
pub const PAPER_DIGITS: usize = 4285;

/// Computes the first `n` decimal digits of π (including the leading 3).
///
/// Implements the Rabinowitz–Wagon streaming spigot with the usual
/// held-predigit / nines-run carry handling.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] when `n == 0`.
///
/// # Examples
///
/// ```
/// let digits = pv_workload::pi::pi_digits(10)?;
/// assert_eq!(digits, vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
/// # Ok::<(), pv_workload::WorkloadError>(())
/// ```
pub fn pi_digits(n: usize) -> Result<Vec<u8>, WorkloadError> {
    if n == 0 {
        return Err(WorkloadError::InvalidParameter("n must be >= 1"));
    }
    // Work length per Rabinowitz–Wagon: floor(10n/3) + 1 mixed-radix places.
    let len = n * 10 / 3 + 1;
    let mut a = vec![2u64; len];
    let mut out: Vec<u8> = Vec::with_capacity(n + 2);
    let mut held: Option<u64> = None;
    let mut nines: usize = 0;

    // Produce a couple of spare digits so a trailing nines-run can resolve.
    let target = n + 2;
    'outer: for _ in 0..target + 8 {
        let mut q: u64 = 0;
        for i in (1..len).rev() {
            let denom = 2 * (i as u64) + 1;
            let x = 10 * a[i] + q * (i as u64 + 1);
            a[i] = x % denom;
            q = x / denom;
        }
        let x = 10 * a[0] + q;
        a[0] = x % 10;
        q = x / 10;

        if q == 9 {
            nines += 1;
        } else if q == 10 {
            // Carry ripples into the held digit and the nines become zeros.
            if let Some(h) = held {
                out.push((h + 1) as u8);
            }
            out.extend(std::iter::repeat_n(0u8, nines));
            held = Some(0);
            nines = 0;
        } else {
            if let Some(h) = held {
                out.push(h as u8);
            }
            out.extend(std::iter::repeat_n(9u8, nines));
            nines = 0;
            held = Some(q);
        }
        if out.len() >= target {
            break 'outer;
        }
    }
    // Flush whatever resolved digits remain.
    if out.len() < target {
        if let Some(h) = held {
            out.push(h as u8);
        }
        out.extend(std::iter::repeat_n(9u8, nines));
    }
    out.truncate(n);
    Ok(out)
}

/// One paper-sized benchmark iteration: computes [`PAPER_DIGITS`] digits of
/// π and folds them into a checksum (so the work cannot be optimised away).
///
/// # Panics
///
/// Never panics: `PAPER_DIGITS` is a valid digit count.
pub fn pi_iteration() -> u64 {
    let digits = pi_digits(PAPER_DIGITS).expect("PAPER_DIGITS >= 1");
    digits.iter().fold(0u64, |acc, &d| {
        acc.wrapping_mul(31).wrapping_add(u64::from(d))
    })
}

/// Formats digits as the familiar "3.14159…" string.
///
/// # Examples
///
/// ```
/// let digits = pv_workload::pi::pi_digits(6)?;
/// assert_eq!(pv_workload::pi::format_digits(&digits), "3.14159");
/// # Ok::<(), pv_workload::WorkloadError>(())
/// ```
pub fn format_digits(digits: &[u8]) -> String {
    let mut s = String::with_capacity(digits.len() + 1);
    for (i, &d) in digits.iter().enumerate() {
        s.push(char::from(b'0' + d));
        if i == 0 && digits.len() > 1 {
            s.push('.');
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI_50: &str = "31415926535897932384626433832795028841971693993751";

    #[test]
    fn first_50_digits_are_exact() {
        let digits = pi_digits(50).unwrap();
        let expected: Vec<u8> = PI_50.bytes().map(|b| b - b'0').collect();
        assert_eq!(digits, expected);
    }

    #[test]
    fn single_digit() {
        assert_eq!(pi_digits(1).unwrap(), vec![3]);
    }

    #[test]
    fn zero_digits_rejected() {
        assert!(pi_digits(0).is_err());
    }

    #[test]
    fn prefix_property() {
        // The first k digits of an n-digit run equal the k-digit run.
        let long = pi_digits(200).unwrap();
        let short = pi_digits(120).unwrap();
        assert_eq!(&long[..120], &short[..]);
    }

    #[test]
    fn digit_762_starts_the_feynman_point() {
        // The 762nd decimal place of π begins the famous "999999" run;
        // with the leading 3 that is 0-based index 762.
        let digits = pi_digits(769).unwrap();
        assert_eq!(&digits[762..768], &[9, 9, 9, 9, 9, 9]);
        // And the digit after the run is 8 — carries were handled right.
        assert_eq!(digits[768], 8);
    }

    #[test]
    fn paper_iteration_is_deterministic() {
        // Two iterations produce the same checksum, and it is derived from
        // the true digits (spot-check against a recomputation).
        let a = pi_iteration();
        let b = pi_iteration();
        assert_eq!(a, b);
        let digits = pi_digits(PAPER_DIGITS).unwrap();
        assert_eq!(digits.len(), PAPER_DIGITS);
        let check = digits.iter().fold(0u64, |acc, &d| {
            acc.wrapping_mul(31).wrapping_add(u64::from(d))
        });
        assert_eq!(a, check);
    }

    #[test]
    fn formatting() {
        let digits = pi_digits(5).unwrap();
        assert_eq!(format_digits(&digits), "3.1415");
        assert_eq!(format_digits(&[3]), "3");
    }
}
