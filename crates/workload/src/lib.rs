//! The paper's CPU-intensive workload, in two forms.
//!
//! ACCUBENCH's work unit is "compute the first 4,285 digits of π in a loop
//! on all available CPUs", a count chosen to take roughly one second per
//! iteration at the Nexus 6's top frequency (§III). This crate provides:
//!
//! * [`pi`] — a real [Rabinowitz–Wagon spigot](pi::pi_digits) that computes
//!   π digits on the host. Examples and Criterion benches use it for
//!   genuine CPU-bound work, and its output is verified against the known
//!   expansion.
//! * [`kernels`] — additional host kernels (FLOP-bound matmul,
//!   bandwidth-bound STREAM triad) behind one [`kernels::Kernel`] trait.
//! * [`WorkloadSpec`] / [`WorkTally`] — the simulator's work accounting:
//!   a core running at frequency *f* for time *dt* with utilisation *u*
//!   retires `f·dt·u` cycles; an iteration costs a fixed number of cycles
//!   (calibrated so a nominal die completes ~1 iteration/s/core at the
//!   Nexus 6's 2.65 GHz, matching the paper's sizing).
//!
//! # Examples
//!
//! ```
//! use pv_workload::{WorkloadSpec, WorkTally};
//! use pv_units::{MegaHertz, Seconds};
//!
//! let spec = WorkloadSpec::pi_digits_default();
//! let mut tally = WorkTally::new();
//! // Four cores flat out at 2649 MHz for 10 s.
//! for _ in 0..4 {
//!     tally.add(MegaHertz(2649.0), Seconds(10.0), 1.0);
//! }
//! let iters = tally.iterations(&spec);
//! assert!((iters - 40.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod pi;

use core::fmt;
use pv_units::{MegaHertz, Seconds};

/// Error type for workload construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Cost model of one benchmark iteration.
///
/// `cycles_per_iteration` is the core-cycles one π-loop iteration retires;
/// `utilization` is the per-core duty cycle the workload sustains (1.0 for
/// the tight spigot loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    cycles_per_iteration: f64,
    utilization: f64,
}

impl WorkloadSpec {
    /// The paper's workload: 4,285 π digits per iteration, sized to take
    /// ≈1 s per core at the Nexus 6's 2,649 MHz top frequency.
    pub fn pi_digits_default() -> Self {
        Self {
            cycles_per_iteration: 2.649e9,
            utilization: 1.0,
        }
    }

    /// Creates a custom workload cost model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless
    /// `cycles_per_iteration > 0` and `0 < utilization <= 1`.
    pub fn new(cycles_per_iteration: f64, utilization: f64) -> Result<Self, WorkloadError> {
        if !(cycles_per_iteration > 0.0 && cycles_per_iteration.is_finite()) {
            return Err(WorkloadError::InvalidParameter(
                "cycles_per_iteration must be > 0",
            ));
        }
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(WorkloadError::InvalidParameter(
                "utilization must be in (0,1]",
            ));
        }
        Ok(Self {
            cycles_per_iteration,
            utilization,
        })
    }

    /// Cycles retired per iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        self.cycles_per_iteration
    }

    /// Per-core duty cycle of the workload.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Iterations per second one core sustains at `freq`.
    pub fn rate_at(&self, freq: MegaHertz) -> f64 {
        freq.to_hz() * self.utilization / self.cycles_per_iteration
    }
}

/// Accumulates retired cycles across cores and steps.
///
/// The performance metric of every experiment — "the number of iterations
/// the device is able to complete across all cores within T_workload" — is
/// `tally.iterations(&spec)` at the end of the workload phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkTally {
    cycles: f64,
}

impl WorkTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits one core running at `freq` for `dt` with duty cycle `util`
    /// (clamped to `[0, 1]`). Call once per core per step.
    pub fn add(&mut self, freq: MegaHertz, dt: Seconds, util: f64) {
        let u = util.clamp(0.0, 1.0);
        let f = freq.value().max(0.0);
        let t = dt.value().max(0.0);
        self.cycles += MegaHertz(f).to_hz() * t * u;
    }

    /// Total cycles retired.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Completed iterations under `spec` (fractional: the paper counts
    /// whole iterations, use [`f64::floor`] if exactness matters).
    pub fn iterations(&self, spec: &WorkloadSpec) -> f64 {
        self.cycles / spec.cycles_per_iteration
    }

    /// Zeroes the tally for the next phase.
    pub fn reset(&mut self) {
        self.cycles = 0.0;
    }
}

impl fmt::Display for WorkTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} cycles", self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper_sizing() {
        // ~1 iteration per second per core at the Nexus 6 top frequency.
        let spec = WorkloadSpec::pi_digits_default();
        let rate = spec.rate_at(MegaHertz(2649.0));
        assert!((rate - 1.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn tally_accumulates_across_cores() {
        let spec = WorkloadSpec::pi_digits_default();
        let mut tally = WorkTally::new();
        // 4 cores × 300 s at half the Nexus 6 frequency = 4 × 300 × 0.5
        // iterations.
        for _ in 0..4 {
            tally.add(MegaHertz(1324.5), Seconds(300.0), 1.0);
        }
        assert!((tally.iterations(&spec) - 600.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_scales_linearly() {
        let spec = WorkloadSpec::new(1.0e9, 1.0).unwrap();
        let mut full = WorkTally::new();
        let mut half = WorkTally::new();
        full.add(MegaHertz(1000.0), Seconds(10.0), 1.0);
        half.add(MegaHertz(1000.0), Seconds(10.0), 0.5);
        assert!((full.iterations(&spec) - 2.0 * half.iterations(&spec)).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let mut tally = WorkTally::new();
        tally.add(MegaHertz(1000.0), Seconds(1.0), 2.0); // util clamps to 1
        let clamped = tally.cycles();
        assert_eq!(clamped, 1.0e9);
        tally.add(MegaHertz(-5.0), Seconds(1.0), 1.0); // negative freq = no-op
        tally.add(MegaHertz(1000.0), Seconds(-1.0), 1.0); // negative dt = no-op
        tally.add(MegaHertz(1000.0), Seconds(1.0), -0.5); // negative util = no-op
        assert_eq!(tally.cycles(), clamped);
    }

    #[test]
    fn spec_validation() {
        assert!(WorkloadSpec::new(0.0, 1.0).is_err());
        assert!(WorkloadSpec::new(-1.0, 1.0).is_err());
        assert!(WorkloadSpec::new(1.0e9, 0.0).is_err());
        assert!(WorkloadSpec::new(1.0e9, 1.5).is_err());
        assert!(WorkloadSpec::new(f64::NAN, 1.0).is_err());
        let s = WorkloadSpec::new(2.0e9, 0.8).unwrap();
        assert_eq!(s.cycles_per_iteration(), 2.0e9);
        assert_eq!(s.utilization(), 0.8);
    }

    #[test]
    fn reset_zeroes() {
        let mut tally = WorkTally::new();
        tally.add(MegaHertz(1000.0), Seconds(1.0), 1.0);
        tally.reset();
        assert_eq!(tally.cycles(), 0.0);
    }

    #[test]
    fn display_formats() {
        let mut tally = WorkTally::new();
        tally.add(MegaHertz(1000.0), Seconds(1.0), 1.0);
        assert!(format!("{tally}").contains("cycles"));
        assert!(!format!("{}", WorkloadError::InvalidParameter("x")).is_empty());
    }
}
