//! Host-runnable CPU kernels beyond the paper's π loop.
//!
//! The paper's benchmark is a single CPU-bound kernel. For methodology
//! studies on real hosts (and to show ACCUBENCH generalises), this module
//! adds two classic kernels with different bottlenecks:
//!
//! * [`Matmul`] — dense FLOP-bound matrix multiply (frequency-sensitive,
//!   like the π spigot);
//! * [`StreamTriad`] — the STREAM triad `a[i] = b[i] + s·c[i]`,
//!   bandwidth-bound (mostly frequency-*insensitive* on real hardware).
//!
//! All kernels are deterministic and fold their output into a checksum so
//! the optimiser cannot elide the work.

use crate::WorkloadError;

/// A deterministic, optimiser-proof unit of CPU work.
pub trait Kernel {
    /// Human-readable kernel name.
    fn name(&self) -> &'static str;

    /// Runs one iteration, returning a data-dependent checksum.
    fn run_once(&mut self) -> u64;
}

/// Dense `n×n` matrix multiply, FLOP-bound.
#[derive(Debug, Clone)]
pub struct Matmul {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl Matmul {
    /// Creates an `n×n` multiply with deterministic operands.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for `n == 0` or `n`
    /// large enough to risk memory exhaustion (> 2048).
    pub fn new(n: usize) -> Result<Self, WorkloadError> {
        if n == 0 || n > 2048 {
            return Err(WorkloadError::InvalidParameter("n must be in 1..=2048"));
        }
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 17) as f64) * 0.25 + 1.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) * 0.5 - 2.0).collect();
        Ok(Self {
            n,
            a,
            b,
            c: vec![0.0; n * n],
        })
    }

    /// The matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The product matrix from the last run (row-major), for verification.
    pub fn result(&self) -> &[f64] {
        &self.c
    }
}

impl Kernel for Matmul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn run_once(&mut self) -> u64 {
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (k, &aik) in self.a[i * n..(i + 1) * n].iter().enumerate() {
                    acc += aik * self.b[k * n + j];
                }
                self.c[i * n + j] = acc;
            }
        }
        self.c
            .iter()
            .fold(0u64, |h, &v| h.wrapping_mul(31).wrapping_add(v.to_bits()))
    }
}

/// STREAM triad `a[i] = b[i] + s·c[i]`, bandwidth-bound on real machines.
#[derive(Debug, Clone)]
pub struct StreamTriad {
    scalar: f64,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    passes: usize,
}

impl StreamTriad {
    /// Creates a triad over `len` elements, `passes` sweeps per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a zero length or
    /// zero passes.
    pub fn new(len: usize, passes: usize) -> Result<Self, WorkloadError> {
        if len == 0 {
            return Err(WorkloadError::InvalidParameter("len must be >= 1"));
        }
        if passes == 0 {
            return Err(WorkloadError::InvalidParameter("passes must be >= 1"));
        }
        Ok(Self {
            scalar: 3.0,
            a: vec![0.0; len],
            b: (0..len).map(|i| (i % 7) as f64).collect(),
            c: (0..len).map(|i| (i % 5) as f64 * 0.5).collect(),
            passes,
        })
    }

    /// Bytes moved per iteration (3 arrays × 8 bytes × len × passes).
    pub fn bytes_per_iteration(&self) -> usize {
        3 * 8 * self.a.len() * self.passes
    }
}

impl Kernel for StreamTriad {
    fn name(&self) -> &'static str {
        "stream-triad"
    }

    fn run_once(&mut self) -> u64 {
        for _ in 0..self.passes {
            for i in 0..self.a.len() {
                self.a[i] = self.b[i] + self.scalar * self.c[i];
            }
            // Feed back so successive passes aren't dead code.
            self.scalar = self.a[self.a.len() / 2] * 1e-6 + 3.0;
        }
        self.a
            .iter()
            .step_by((self.a.len() / 64).max(1))
            .fold(0u64, |h, &v| h.wrapping_mul(31).wrapping_add(v.to_bits()))
    }
}

/// The paper's π kernel wrapped in the [`Kernel`] interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct PiKernel {
    digits: usize,
}

impl PiKernel {
    /// Creates the paper-sized kernel (4,285 digits).
    pub fn paper() -> Self {
        Self {
            digits: crate::pi::PAPER_DIGITS,
        }
    }

    /// Creates a kernel computing `digits` digits.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for `digits == 0`.
    pub fn with_digits(digits: usize) -> Result<Self, WorkloadError> {
        if digits == 0 {
            return Err(WorkloadError::InvalidParameter("digits must be >= 1"));
        }
        Ok(Self { digits })
    }
}

impl Kernel for PiKernel {
    fn name(&self) -> &'static str {
        "pi-spigot"
    }

    fn run_once(&mut self) -> u64 {
        let digits = crate::pi::pi_digits(self.digits).expect("digits >= 1 by construction");
        digits
            .iter()
            .fold(0u64, |h, &d| h.wrapping_mul(31).wrapping_add(u64::from(d)))
    }
}

/// The standard host kernel suite (π, matmul, triad) at sizes that each run
/// in very roughly comparable time on a laptop core.
///
/// # Errors
///
/// Never fails in practice; sizes are valid by construction.
pub fn standard_suite() -> Result<Vec<Box<dyn Kernel>>, WorkloadError> {
    Ok(vec![
        Box::new(PiKernel::paper()),
        Box::new(Matmul::new(256)?),
        Box::new(StreamTriad::new(1 << 20, 24)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        // 2×2 with the deterministic init:
        // a = [1.0, 1.25; 1.5, 1.75], b = [-2.0, -1.5; -1.0, -0.5].
        let mut m = Matmul::new(2).unwrap();
        m.run_once();
        let c = m.result();
        assert!((c[0] - (1.0 * -2.0 - 1.25)).abs() < 1e-12);
        assert!((c[1] - (1.0 * -1.5 + 1.25 * -0.5)).abs() < 1e-12);
        assert!((c[2] - (1.5 * -2.0 - 1.75)).abs() < 1e-12);
        assert!((c[3] - (1.5 * -1.5 + 1.75 * -0.5)).abs() < 1e-12);
    }

    #[test]
    fn kernels_are_deterministic() {
        let mut a = Matmul::new(16).unwrap();
        let mut b = Matmul::new(16).unwrap();
        assert_eq!(a.run_once(), b.run_once());

        let mut s1 = StreamTriad::new(1024, 3).unwrap();
        let mut s2 = StreamTriad::new(1024, 3).unwrap();
        assert_eq!(s1.run_once(), s2.run_once());

        let mut p1 = PiKernel::with_digits(100).unwrap();
        let mut p2 = PiKernel::with_digits(100).unwrap();
        assert_eq!(p1.run_once(), p2.run_once());
    }

    #[test]
    fn pi_kernel_checksum_matches_pi_iteration() {
        let mut k = PiKernel::paper();
        assert_eq!(k.run_once(), crate::pi::pi_iteration());
    }

    #[test]
    fn triad_accounts_bytes() {
        let s = StreamTriad::new(1000, 4).unwrap();
        assert_eq!(s.bytes_per_iteration(), 3 * 8 * 1000 * 4);
    }

    #[test]
    fn validation() {
        assert!(Matmul::new(0).is_err());
        assert!(Matmul::new(4096).is_err());
        assert!(StreamTriad::new(0, 1).is_err());
        assert!(StreamTriad::new(8, 0).is_err());
        assert!(PiKernel::with_digits(0).is_err());
    }

    #[test]
    fn suite_has_three_distinct_kernels() {
        let suite = standard_suite().unwrap();
        let names: Vec<&str> = suite.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["pi-spigot", "matmul", "stream-triad"]);
    }

    #[test]
    fn stream_feedback_prevents_constant_folding() {
        // Successive iterations can differ because the scalar feeds back —
        // but from a fresh kernel the first run is always the same.
        let mut s = StreamTriad::new(4096, 2).unwrap();
        let first = s.run_once();
        let second = s.run_once();
        let mut fresh = StreamTriad::new(4096, 2).unwrap();
        assert_eq!(fresh.run_once(), first);
        // May or may not equal `first`; just exercise it.
        let _ = second;
    }
}
