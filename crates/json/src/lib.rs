//! Minimal JSON support for machine-readable experiment output.
//!
//! The repro/accubench binaries emit results as JSON and a few data types
//! round-trip through it. This crate provides the whole pipeline without
//! external dependencies: a [`Json`] value model, a writer
//! ([`Json::to_string_pretty`]), a parser ([`Json::from_str`]), the
//! [`ToJson`]/[`FromJson`] traits, and the [`impl_to_json!`] macro that
//! generates field-by-field `ToJson` impls for plain structs.
//!
//! # Examples
//!
//! ```
//! use pv_json::{Json, ToJson};
//!
//! let mut obj = Json::object();
//! obj.insert("mean", 1.5.to_json());
//! obj.insert("label", "bin-0".to_json());
//! let text = obj.to_string_pretty();
//! let back = Json::from_str(&text).unwrap();
//! assert_eq!(back["mean"].as_f64(), Some(1.5));
//! assert_eq!(back["label"].as_str(), Some("bin-0"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error from [`Json::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

static NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair; objects only (no-op otherwise).
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        if let Json::Object(entries) = self {
            entries.push((key.into(), value));
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Number(_))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-readable two-space-indented rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input or trailing garbage.
    #[allow(clippy::should_implement_trait)] // fallible and non-generic, like serde_json::from_str
    pub fn from_str(text: &str) -> Result<Self, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                offset: pos,
                message: "trailing characters",
            });
        }
        Ok(value)
    }
}

impl Index<&str> for Json {
    type Output = Json;
    /// Object field access; returns `Json::Null` for missing keys or
    /// non-objects (like `serde_json::Value`).
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Json {
    type Output = Json;
    /// Array element access; returns `Json::Null` out of bounds.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integers render without a fractional part.
            let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
        } else {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
    } else {
        // JSON has no NaN/Infinity; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError {
            offset: *pos,
            message: "unexpected token",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(ParseError {
            offset: *pos,
            message: "unexpected end of input",
        });
    };
    match b {
        b'n' => expect(bytes, pos, "null").map(|()| Json::Null),
        b't' => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            message: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError {
                        offset: *pos,
                        message: "expected ':'",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            message: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(ParseError {
            offset: *pos,
            message: "unexpected character",
        }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            offset: *pos,
            message: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(ParseError {
                offset: *pos,
                message: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ParseError {
                        offset: *pos,
                        message: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(ParseError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = core::str::from_utf8(hex).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own output;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            message: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(core::str::from_utf8(&bytes[start..*pos]).map_err(|_| {
                    ParseError {
                        offset: start,
                        message: "invalid utf-8",
                    }
                })?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    core::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or(ParseError {
            offset: start,
            message: "invalid number",
        })
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Renders `self` as JSON.
    fn to_json(&self) -> Json;
}

/// Fallible reconstruction from a [`Json`] value.
pub trait FromJson: Sized {
    /// Rebuilds `Self` from JSON; `None` on shape mismatch.
    fn from_json(value: &Json) -> Option<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_str().map(str::to_owned)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_owned())
    }
}

macro_rules! int_to_json {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Option<Self> {
                value.as_f64().map(|n| n as $ty)
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    /// `null` rebuilds as `None`; anything else must rebuild as `T`.
    fn from_json(value: &Json) -> Option<Self> {
        if value.is_null() {
            Some(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

macro_rules! tuple_to_json {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(value: &Json) -> Option<Self> {
                let items = value.as_array()?;
                let mut it = items.iter();
                let out = ($($name::from_json(it.next()?)?,)+);
                if it.next().is_some() { return None; }
                Some(out)
            }
        }
    )*};
}

tuple_to_json! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Generates a field-by-field [`ToJson`] impl for a plain struct:
///
/// ```
/// struct Point { x: f64, y: f64 }
/// pv_json::impl_to_json!(Point { x, y });
/// # use pv_json::ToJson;
/// let p = Point { x: 1.0, y: 2.0 };
/// assert_eq!(p.to_json()["y"].as_f64(), Some(2.0));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let mut obj = $crate::Json::object();
                $(obj.insert(stringify!($field), $crate::ToJson::to_json(&self.$field));)*
                obj
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::from_str(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
        assert!(v["e"].is_null());
        let again = Json::from_str(&v.to_string_pretty()).unwrap();
        assert_eq!(again, v);
        let compact = Json::from_str(&v.to_string_compact()).unwrap();
        assert_eq!(compact, v);
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = Json::from_str(r#"{"x": 1}"#).unwrap();
        assert!(v["nope"].is_null());
        assert!(v["x"]["deeper"].is_null());
        assert!(v[5].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul", ""] {
            assert!(Json::from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::String("a\"b\\c\u{1}".to_owned());
        let s = v.to_string_compact();
        assert_eq!(s, "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(Json::from_str(&s).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Number(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Number(3.0).to_string_compact(), "3");
        assert_eq!(Json::Number(3.25).to_string_compact(), "3.25");
    }

    #[test]
    fn struct_macro_and_collections() {
        struct Row {
            label: String,
            values: Vec<f64>,
            flag: Option<bool>,
        }
        impl_to_json!(Row {
            label,
            values,
            flag
        });
        let r = Row {
            label: "x".into(),
            values: vec![1.0, 2.0],
            flag: None,
        };
        let j = r.to_json();
        assert_eq!(j["label"].as_str(), Some("x"));
        assert_eq!(j["values"].as_array().unwrap().len(), 2);
        assert!(j["flag"].is_null());
    }

    #[test]
    fn options_round_trip() {
        let some: Option<f64> = FromJson::from_json(&Json::Number(2.5)).unwrap();
        assert_eq!(some, Some(2.5));
        let none: Option<f64> = FromJson::from_json(&Json::Null).unwrap();
        assert_eq!(none, None);
        let bad: Option<Option<f64>> = FromJson::from_json(&Json::Bool(true));
        assert!(bad.is_none());
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1.0, "two".to_owned(), 3u32);
        let j = t.to_json();
        let back: (f64, String, u32) = FromJson::from_json(&j).unwrap();
        assert_eq!(back, t);
    }
}
