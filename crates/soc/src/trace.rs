//! Per-step telemetry traces.
//!
//! The paper's Figures 4/5 plot temperature and frequency timelines of an
//! ACCUBENCH run; Figures 11/12 plot the *distributions* of frequency and
//! temperature across an iteration. [`Trace`] collects the per-step
//! [`TraceSample`]s a [`Device`](crate::device::Device) reports and derives
//! those artifacts.

use core::fmt;
use pv_units::{Celsius, MegaHertz, Seconds, Volts, Watts};

/// Telemetry from one simulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Simulation time at the *end* of the step.
    pub t: Seconds,
    /// Step length.
    pub dt: Seconds,
    /// True die temperature.
    pub die_temp: Celsius,
    /// Sensor-reported temperature (lagged/quantised).
    pub sensor_temp: Celsius,
    /// Case (skin) temperature.
    pub case_temp: Celsius,
    /// Frequency each cluster ran at.
    pub cluster_freqs: Vec<MegaHertz>,
    /// Cores online per cluster.
    pub active_cores: Vec<u32>,
    /// Power drawn from the supply (includes regulator loss).
    pub supply_power: Watts,
    /// Supply terminal voltage under that load.
    pub supply_voltage: Volts,
    /// Whether any throttle mechanism was engaged.
    pub throttled: bool,
}

/// An append-only sequence of [`TraceSample`]s with analysis helpers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    samples: Vec<TraceSample>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: TraceSample) {
        self.samples.push(sample);
    }

    /// The recorded samples in order.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total simulated time covered.
    pub fn duration(&self) -> Seconds {
        self.samples.iter().map(|s| s.dt).sum()
    }

    /// Time-weighted mean frequency of `cluster`; `None` if the trace is
    /// empty or the cluster index is out of range everywhere.
    pub fn mean_freq(&self, cluster: usize) -> Option<MegaHertz> {
        let mut weighted = 0.0;
        let mut time = 0.0;
        for s in &self.samples {
            if let Some(f) = s.cluster_freqs.get(cluster) {
                weighted += f.value() * s.dt.value();
                time += s.dt.value();
            }
        }
        if time > 0.0 {
            Some(MegaHertz(weighted / time))
        } else {
            None
        }
    }

    /// Time-weighted mean die temperature; `None` on an empty trace.
    pub fn mean_die_temp(&self) -> Option<Celsius> {
        let mut weighted = 0.0;
        let mut time = 0.0;
        for s in &self.samples {
            weighted += s.die_temp.value() * s.dt.value();
            time += s.dt.value();
        }
        if time > 0.0 {
            Some(Celsius(weighted / time))
        } else {
            None
        }
    }

    /// Peak die temperature; `None` on an empty trace.
    pub fn peak_die_temp(&self) -> Option<Celsius> {
        self.samples
            .iter()
            .map(|s| s.die_temp)
            .fold(None, |acc, t| match acc {
                None => Some(t),
                Some(best) => Some(best.max(t)),
            })
    }

    /// Peak case (skin) temperature; `None` on an empty trace.
    pub fn peak_case_temp(&self) -> Option<Celsius> {
        self.samples
            .iter()
            .map(|s| s.case_temp)
            .fold(None, |acc, t| match acc {
                None => Some(t),
                Some(best) => Some(best.max(t)),
            })
    }

    /// Time share of each distinct frequency the primary cluster visited,
    /// as `(frequency, fraction of trace time)` sorted by frequency — the
    /// residency view behind the Fig 11/12 histograms.
    pub fn freq_residency(&self, cluster: usize) -> Vec<(MegaHertz, f64)> {
        let total = self.duration().value();
        if total == 0.0 {
            return Vec::new();
        }
        let mut acc: Vec<(f64, f64)> = Vec::new();
        for s in &self.samples {
            if let Some(f) = s.cluster_freqs.get(cluster) {
                match acc
                    .iter_mut()
                    .find(|(freq, _)| (*freq - f.value()).abs() < 1e-9)
                {
                    Some((_, t)) => *t += s.dt.value(),
                    None => acc.push((f.value(), s.dt.value())),
                }
            }
        }
        acc.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite frequencies"));
        acc.into_iter()
            .map(|(f, t)| (MegaHertz(f), t / total))
            .collect()
    }

    /// Fraction of trace time with the die at or above `threshold` — the
    /// "time spent at temperature" statistic the paper shows is *not*
    /// sufficient to predict throttling (Fig 11).
    pub fn fraction_time_at_or_above(&self, threshold: Celsius) -> f64 {
        let total = self.duration().value();
        if total == 0.0 {
            return 0.0;
        }
        let above: f64 = self
            .samples
            .iter()
            .filter(|s| s.die_temp >= threshold)
            .map(|s| s.dt.value())
            .sum();
        above / total
    }

    /// Fraction of trace time any throttle was engaged.
    pub fn fraction_time_throttled(&self) -> f64 {
        let total = self.duration().value();
        if total == 0.0 {
            return 0.0;
        }
        let throttled: f64 = self
            .samples
            .iter()
            .filter(|s| s.throttled)
            .map(|s| s.dt.value())
            .sum();
        throttled / total
    }

    /// Total energy drawn from the supply over the trace.
    pub fn supply_energy(&self) -> pv_units::Joules {
        self.samples.iter().map(|s| s.supply_power * s.dt).sum()
    }

    /// Per-sample `(time, die temperature)` pairs, for plotting.
    pub fn temperature_series(&self) -> impl Iterator<Item = (Seconds, Celsius)> + '_ {
        self.samples.iter().map(|s| (s.t, s.die_temp))
    }

    /// Per-sample `(time, frequency)` pairs for `cluster`, for plotting.
    pub fn frequency_series(
        &self,
        cluster: usize,
    ) -> impl Iterator<Item = (Seconds, MegaHertz)> + '_ {
        self.samples
            .iter()
            .filter_map(move |s| s.cluster_freqs.get(cluster).map(|f| (s.t, *f)))
    }

    /// Renders the trace as CSV (header + one row per sample).
    pub fn to_csv(&self) -> String {
        let clusters = self
            .samples
            .first()
            .map(|s| s.cluster_freqs.len())
            .unwrap_or(0);
        let mut out = String::from("t_s,die_c,sensor_c,case_c,supply_w,supply_v,throttled");
        for c in 0..clusters {
            out.push_str(&format!(",freq{c}_mhz,cores{c}"));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{}",
                s.t.value(),
                s.die_temp.value(),
                s.sensor_temp.value(),
                s.case_temp.value(),
                s.supply_power.value(),
                s.supply_voltage.value(),
                u8::from(s.throttled)
            ));
            for c in 0..clusters {
                let f = s.cluster_freqs.get(c).map_or(0.0, |f| f.value());
                let n = s.active_cores.get(c).copied().unwrap_or(0);
                out.push_str(&format!(",{f:.0},{n}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace of {} samples over {:.1}",
            self.samples.len(),
            self.duration()
        )
    }
}

impl Extend<TraceSample> for Trace {
    fn extend<I: IntoIterator<Item = TraceSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl FromIterator<TraceSample> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceSample>>(iter: I) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

pv_json::impl_to_json!(TraceSample {
    t,
    dt,
    die_temp,
    sensor_temp,
    case_temp,
    cluster_freqs,
    active_cores,
    supply_power,
    supply_voltage,
    throttled
});
pv_json::impl_to_json!(Trace { samples });

impl pv_json::FromJson for TraceSample {
    fn from_json(value: &pv_json::Json) -> Option<Self> {
        fn field<T: pv_json::FromJson>(value: &pv_json::Json, key: &str) -> Option<T> {
            T::from_json(value.get(key)?)
        }
        Some(Self {
            t: field(value, "t")?,
            dt: field(value, "dt")?,
            die_temp: field(value, "die_temp")?,
            sensor_temp: field(value, "sensor_temp")?,
            case_temp: field(value, "case_temp")?,
            cluster_freqs: field(value, "cluster_freqs")?,
            active_cores: field(value, "active_cores")?,
            supply_power: field(value, "supply_power")?,
            supply_voltage: field(value, "supply_voltage")?,
            throttled: field(value, "throttled")?,
        })
    }
}

impl pv_json::FromJson for Trace {
    fn from_json(value: &pv_json::Json) -> Option<Self> {
        Some(Self {
            samples: pv_json::FromJson::from_json(value.get("samples")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, temp: f64, freq: f64, throttled: bool) -> TraceSample {
        TraceSample {
            t: Seconds(t),
            dt: Seconds(1.0),
            die_temp: Celsius(temp),
            sensor_temp: Celsius(temp - 0.5),
            case_temp: Celsius(temp - 10.0),
            cluster_freqs: vec![MegaHertz(freq)],
            active_cores: vec![4],
            supply_power: Watts(2.0),
            supply_voltage: Volts(4.0),
            throttled,
        }
    }

    fn trace() -> Trace {
        [
            sample(1.0, 40.0, 2265.0, false),
            sample(2.0, 60.0, 2265.0, false),
            sample(3.0, 80.0, 960.0, true),
            sample(4.0, 70.0, 1574.0, true),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn duration_and_len() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.duration(), Seconds(4.0));
    }

    #[test]
    fn mean_freq_is_time_weighted() {
        let t = trace();
        let mean = t.mean_freq(0).unwrap();
        let expected = (2265.0 + 2265.0 + 960.0 + 1574.0) / 4.0;
        assert!((mean.value() - expected).abs() < 1e-9);
        assert_eq!(t.mean_freq(5), None);
    }

    #[test]
    fn temperature_statistics() {
        let t = trace();
        assert!((t.mean_die_temp().unwrap().value() - 62.5).abs() < 1e-9);
        assert_eq!(t.peak_die_temp(), Some(Celsius(80.0)));
        assert!((t.fraction_time_at_or_above(Celsius(70.0)) - 0.5).abs() < 1e-12);
        assert!((t.fraction_time_at_or_above(Celsius(90.0))).abs() < 1e-12);
    }

    #[test]
    fn throttle_fraction() {
        let t = trace();
        assert!((t.fraction_time_throttled() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_integrates_supply_power() {
        let t = trace();
        assert_eq!(t.supply_energy(), pv_units::Joules(8.0));
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_freq(0), None);
        assert_eq!(t.mean_die_temp(), None);
        assert_eq!(t.peak_die_temp(), None);
        assert_eq!(t.fraction_time_at_or_above(Celsius(0.0)), 0.0);
        assert_eq!(t.fraction_time_throttled(), 0.0);
    }

    #[test]
    fn csv_round_trippable_shape() {
        let t = trace();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 rows
        assert!(lines[0].contains("freq0_mhz"));
        assert!(lines[3].ends_with(",1,960,4") || lines[3].contains(",960,4"));
    }

    #[test]
    fn series_iterators() {
        let t = trace();
        let temps: Vec<_> = t.temperature_series().collect();
        assert_eq!(temps.len(), 4);
        assert_eq!(temps[2].1, Celsius(80.0));
        let freqs: Vec<_> = t.frequency_series(0).collect();
        assert_eq!(freqs[2].1, MegaHertz(960.0));
    }

    #[test]
    fn case_temp_peak_and_residency() {
        let t = trace();
        assert_eq!(t.peak_case_temp(), Some(Celsius(70.0)));
        let res = t.freq_residency(0);
        // Frequencies 960, 1574, 2265 with shares 0.25, 0.25, 0.5.
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].0, MegaHertz(960.0));
        assert!((res[0].1 - 0.25).abs() < 1e-12);
        assert_eq!(res[2].0, MegaHertz(2265.0));
        assert!((res[2].1 - 0.5).abs() < 1e-12);
        // Residencies sum to 1 for a single-cluster trace.
        let total: f64 = res.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(Trace::new().freq_residency(0).is_empty());
        assert_eq!(Trace::new().peak_case_temp(), None);
    }

    #[test]
    fn extend_and_display() {
        let mut t = Trace::new();
        t.extend([sample(1.0, 30.0, 300.0, false)]);
        t.push(sample(2.0, 31.0, 300.0, false));
        assert_eq!(t.len(), 2);
        assert!(format!("{t}").contains("2 samples"));
    }
}
