//! Declarative device specifications.
//!
//! A [`DeviceSpec`] is everything that is identical across units of one
//! phone model: the SoC floorplan ([`SocSpec`] with its [`ClusterSpec`]s),
//! the chassis thermals ([`ThermalSpec`]), the throttle policy
//! ([`throttle::ThrottlePolicy`](crate::throttle::ThrottlePolicy)) and the
//! supply characteristics. What *differs* between units — the silicon — is
//! supplied separately as a [`pv_silicon::DieSample`] when instantiating a
//! [`Device`](crate::device::Device).

use crate::throttle::ThrottlePolicy;
use crate::SocError;
use pv_silicon::binning::VfTable;
use pv_silicon::power::PowerParams;
use pv_silicon::ProcessNode;
use pv_units::{Celsius, Seconds, TempDelta, ThermalCapacitance, ThermalResistance, Volts, Watts};

/// How a device derives its per-frequency supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoltageScheme {
    /// Static voltage-binned table baked at the factory (Nexus 5 / Nexus 6
    /// era; the paper's Table I).
    StaticTable,
    /// RBCPR closed loop: runtime trim from die quality and temperature
    /// (SD-810 and later, §IV-A2).
    Rbcpr(crate::rbcpr::RbcprSpec),
}

/// One CPU cluster of an SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name, e.g. `"Kryo-perf"` or `"A53"`.
    pub name: &'static str,
    /// Number of cores in the cluster.
    pub cores: u32,
    /// Per-cycle performance relative to the reference core (Krait = 1.0).
    /// Work tallies weight cycles by this, so a little core contributes
    /// fewer π iterations per cycle than a big one.
    pub perf_weight: f64,
    /// Calibrated power laws for this cluster.
    pub power: PowerParams,
    /// Base voltage/frequency ladder (the *slow-silicon* ladder for
    /// statically binned parts; the nominal ladder for RBCPR parts).
    pub vf_slow: VfTable,
    /// Fast-silicon ladder (equal to `vf_slow` for RBCPR parts, which trim
    /// at runtime instead).
    pub vf_fast: VfTable,
}

impl ClusterSpec {
    /// Validates the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] for zero cores, a non-positive
    /// perf weight, or mismatched ladders.
    pub fn validate(&self) -> Result<(), SocError> {
        if self.cores == 0 {
            return Err(SocError::InvalidSpec("cluster has zero cores"));
        }
        if !(self.perf_weight > 0.0 && self.perf_weight.is_finite()) {
            return Err(SocError::InvalidSpec("perf_weight must be > 0"));
        }
        if self.vf_slow.len() != self.vf_fast.len() {
            return Err(SocError::InvalidSpec("slow/fast ladder length mismatch"));
        }
        for (s, f) in self.vf_slow.points().iter().zip(self.vf_fast.points()) {
            if (s.freq.value() - f.freq.value()).abs() > 1e-9 {
                return Err(SocError::InvalidSpec("slow/fast ladder frequency mismatch"));
            }
            if s.voltage < f.voltage {
                return Err(SocError::InvalidSpec(
                    "slow ladder voltage below fast ladder",
                ));
            }
        }
        Ok(())
    }
}

/// An SoC: one or more clusters plus uncore power.
#[derive(Debug, Clone, PartialEq)]
pub struct SocSpec {
    /// Marketing name, e.g. `"SD-800"`.
    pub name: &'static str,
    /// Manufacturing process.
    pub node: ProcessNode,
    /// CPU clusters (1 for SD-800/805, 2 for big.LITTLE parts).
    pub clusters: Vec<ClusterSpec>,
    /// Constant uncore power while awake (memory controller, interconnect).
    pub uncore_power: Watts,
}

impl SocSpec {
    /// Validates the SoC.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] for an empty cluster list, a
    /// negative uncore power, or any invalid cluster.
    pub fn validate(&self) -> Result<(), SocError> {
        if self.clusters.is_empty() {
            return Err(SocError::InvalidSpec("SoC has no clusters"));
        }
        if !(self.uncore_power.value() >= 0.0 && self.uncore_power.is_finite()) {
            return Err(SocError::InvalidSpec("uncore_power must be >= 0"));
        }
        for c in &self.clusters {
            c.validate()?;
        }
        Ok(())
    }

    /// Total core count across clusters.
    pub fn total_cores(&self) -> u32 {
        self.clusters.iter().map(|c| c.cores).sum()
    }
}

/// Chassis thermal parameters: the lumped die → package → case → ambient
/// path, plus the temperature sensor the kernel throttles on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSpec {
    /// Heat capacity of the die + heat spreader.
    pub die_capacitance: ThermalCapacitance,
    /// Heat capacity of the PCB/package/battery mass.
    pub package_capacitance: ThermalCapacitance,
    /// Heat capacity of the case shell.
    pub case_capacitance: ThermalCapacitance,
    /// Die → package resistance.
    pub die_to_package: ThermalResistance,
    /// Package → case resistance.
    pub package_to_case: ThermalResistance,
    /// Case → ambient convection resistance.
    pub case_to_ambient: ThermalResistance,
    /// Thermal sensor lag time constant.
    pub sensor_tau: Seconds,
    /// Thermal sensor read-noise standard deviation.
    pub sensor_noise: TempDelta,
    /// Thermal sensor quantisation (kernel zones report whole degrees).
    pub sensor_quantum: TempDelta,
}

impl ThermalSpec {
    /// Validates the thermal parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] for non-positive capacitances or
    /// resistances, or negative sensor parameters.
    pub fn validate(&self) -> Result<(), SocError> {
        for (v, what) in [
            (self.die_capacitance.value(), "die_capacitance"),
            (self.package_capacitance.value(), "package_capacitance"),
            (self.case_capacitance.value(), "case_capacitance"),
            (self.die_to_package.value(), "die_to_package"),
            (self.package_to_case.value(), "package_to_case"),
            (self.case_to_ambient.value(), "case_to_ambient"),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(SocError::InvalidSpec(what));
            }
        }
        for (v, what) in [
            (self.sensor_tau.value(), "sensor_tau"),
            (self.sensor_noise.value(), "sensor_noise"),
            (self.sensor_quantum.value(), "sensor_quantum"),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(SocError::InvalidSpec(what));
            }
        }
        Ok(())
    }

    /// Total die-to-ambient resistance of the chain — the sustained power
    /// the chassis can reject per kelvin of headroom.
    pub fn total_resistance(&self) -> ThermalResistance {
        self.die_to_package + self.package_to_case + self.case_to_ambient
    }
}

/// A complete phone model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Model name, e.g. `"Nexus 5"`.
    pub model: &'static str,
    /// The SoC inside.
    pub soc: SocSpec,
    /// Chassis thermals.
    pub thermal: ThermalSpec,
    /// Thermal + input-voltage throttle policy.
    pub throttle: ThrottlePolicy,
    /// How per-frequency voltage is derived.
    pub voltage_scheme: VoltageScheme,
    /// Nominal battery voltage printed on the label (what the paper first
    /// programmed the Monsoon to).
    pub nominal_battery_voltage: Volts,
    /// Maximum battery voltage printed on the label.
    pub max_battery_voltage: Volts,
    /// Supply → rail conversion efficiency of the PMIC (0, 1].
    pub regulator_efficiency: f64,
    /// Baseline platform power with screen off and radios disabled (the
    /// paper's experimental configuration).
    pub idle_power: Watts,
    /// Ambient the device model starts at.
    pub initial_ambient: Celsius,
}

impl DeviceSpec {
    /// Validates the whole specification.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SocError> {
        self.soc.validate()?;
        self.thermal.validate()?;
        self.throttle.validate()?;
        if self.nominal_battery_voltage.value() <= 0.0
            || self.nominal_battery_voltage.value().is_nan()
        {
            return Err(SocError::InvalidSpec("nominal_battery_voltage"));
        }
        if self.max_battery_voltage < self.nominal_battery_voltage {
            return Err(SocError::InvalidSpec(
                "max_battery_voltage below nominal_battery_voltage",
            ));
        }
        if !(self.regulator_efficiency > 0.0 && self.regulator_efficiency <= 1.0) {
            return Err(SocError::InvalidSpec("regulator_efficiency not in (0,1]"));
        }
        if !(self.idle_power.value() >= 0.0 && self.idle_power.is_finite()) {
            return Err(SocError::InvalidSpec("idle_power must be >= 0"));
        }
        if !self.initial_ambient.is_finite() {
            return Err(SocError::InvalidSpec("initial_ambient non-finite"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn catalog_specs_validate() {
        // Every shipped spec must pass its own validation.
        for spec in [
            catalog::nexus5_spec().unwrap(),
            catalog::nexus6_spec().unwrap(),
            catalog::nexus6p_spec().unwrap(),
            catalog::lg_g5_spec().unwrap(),
            catalog::pixel_spec().unwrap(),
            catalog::pixel2_spec().unwrap(),
        ] {
            spec.validate().unwrap();
            assert!(spec.soc.total_cores() >= 4);
            assert!(spec.thermal.total_resistance().value() > 0.0);
        }
    }

    #[test]
    fn validation_catches_broken_specs() {
        let mut spec = catalog::nexus5_spec().unwrap();
        spec.regulator_efficiency = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = catalog::nexus5_spec().unwrap();
        spec.max_battery_voltage = Volts(1.0);
        assert!(spec.validate().is_err());

        let mut spec = catalog::nexus5_spec().unwrap();
        spec.idle_power = Watts(-1.0);
        assert!(spec.validate().is_err());

        let mut spec = catalog::nexus5_spec().unwrap();
        spec.soc.clusters.clear();
        assert!(spec.validate().is_err());

        let mut spec = catalog::nexus5_spec().unwrap();
        spec.soc.clusters[0].cores = 0;
        assert!(spec.validate().is_err());

        let mut spec = catalog::nexus5_spec().unwrap();
        spec.thermal.die_capacitance = ThermalCapacitance(0.0);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn big_little_perf_weights_differ() {
        let spec = catalog::nexus6p_spec().unwrap();
        assert_eq!(spec.soc.clusters.len(), 2);
        assert!(spec.soc.clusters[0].perf_weight > spec.soc.clusters[1].perf_weight);
    }
}
