//! Thermal and input-voltage throttling.
//!
//! Android thermal engines cap the CPU frequency in discrete steps as the
//! sensed temperature crosses trip points, with hysteresis so caps release
//! only after the die cools past a clear point. Devices differ in their
//! tables and aggressiveness — exactly the difference the paper exploits in
//! §IV-B: two Pixels with different silicon throttle *differently* even
//! under the same policy, because the leakier die cools more slowly once
//! capped.
//!
//! Two additional mechanisms appear in the paper:
//!
//! * **Core hotplug** — the Nexus 5 shuts one core down when the sensor
//!   reports 80 °C (Fig 1 caption).
//! * **Input-voltage throttling** — the LG G5 caps frequency when its power
//!   input sits at or below a voltage threshold, which is why a Monsoon at
//!   the battery's *nominal* 3.85 V makes the phone ~20 % slower (Fig 10).

use crate::SocError;
use core::fmt;
use pv_units::{Celsius, MegaHertz, Volts};

/// One thermal throttle step: at or above `trip`, frequency is capped at
/// `cap`; the step releases when the sensor falls below `clear`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleStep {
    /// Temperature at which this step engages.
    pub trip: Celsius,
    /// Temperature below which this step releases (must be ≤ `trip`).
    pub clear: Celsius,
    /// Frequency cap while engaged.
    pub cap: MegaHertz,
}

/// Core-hotplug rule: at or above `trip`, cores are shut down until only
/// `min_cores` remain; they return when the sensor falls below `clear`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotplugRule {
    /// Temperature at which cores are unplugged.
    pub trip: Celsius,
    /// Temperature below which cores come back.
    pub clear: Celsius,
    /// Cores left online while engaged (per cluster).
    pub min_cores: u32,
}

/// Critical thermal-shutdown rule: at or above `trip` the CPU is forced
/// idle (workload suspended, cores power-collapsed) until the die cools
/// below `clear`. Android's thermal engine does this as a last resort; a
/// die that cannot even survive this is a dead chip — the likely fate of
/// the paper's bin-4 unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalRule {
    /// Temperature at which the emergency stop engages.
    pub trip: Celsius,
    /// Temperature below which normal operation resumes.
    pub clear: Celsius,
}

/// Input-voltage throttle rule (LG G5): when the supply terminal voltage is
/// at or below `threshold`, every cluster's frequency is capped at
/// `cap_fraction` of its maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputVoltageRule {
    /// Terminal-voltage threshold at or below which the throttle engages.
    pub threshold: Volts,
    /// Fraction of each cluster's top frequency allowed while engaged.
    pub cap_fraction: f64,
}

/// A device's complete throttle policy.
///
/// # Examples
///
/// ```
/// use pv_soc::throttle::{ThrottlePolicy, ThrottleState, ThrottleStep};
/// use pv_units::{Celsius, MegaHertz, Volts};
///
/// let policy = ThrottlePolicy {
///     steps: vec![ThrottleStep {
///         trip: Celsius(70.0),
///         clear: Celsius(66.0),
///         cap: MegaHertz(1574.0),
///     }],
///     ..ThrottlePolicy::default()
/// };
/// policy.validate()?;
/// let mut state = ThrottleState::new();
/// let decision = state.update(&policy, Celsius(72.0), Volts(4.0));
/// assert_eq!(decision.freq_cap, Some(MegaHertz(1574.0)));
/// # Ok::<(), pv_soc::SocError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThrottlePolicy {
    /// Stepped frequency caps, ordered by ascending trip temperature.
    pub steps: Vec<ThrottleStep>,
    /// Optional hotplug rule.
    pub hotplug: Option<HotplugRule>,
    /// Optional input-voltage rule.
    pub input_voltage: Option<InputVoltageRule>,
    /// Optional emergency thermal-shutdown rule.
    pub critical: Option<CriticalRule>,
}

impl ThrottlePolicy {
    /// Validates ordering and hysteresis constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] if steps are unsorted, any clear
    /// point exceeds its trip, caps are non-positive, or rule parameters
    /// are out of range.
    pub fn validate(&self) -> Result<(), SocError> {
        for s in &self.steps {
            if s.clear > s.trip {
                return Err(SocError::InvalidSpec("throttle clear above trip"));
            }
            if !(s.cap.value() > 0.0 && s.cap.is_finite()) {
                return Err(SocError::InvalidSpec("throttle cap must be > 0"));
            }
            if !(s.trip.is_finite() && s.clear.is_finite()) {
                return Err(SocError::InvalidSpec("throttle temperature non-finite"));
            }
        }
        for w in self.steps.windows(2) {
            if w[1].trip <= w[0].trip {
                return Err(SocError::InvalidSpec(
                    "throttle steps must have ascending trips",
                ));
            }
            if w[1].cap.value() >= w[0].cap.value() {
                return Err(SocError::InvalidSpec(
                    "deeper throttle steps must cap lower",
                ));
            }
        }
        if let Some(h) = &self.hotplug {
            if h.clear > h.trip {
                return Err(SocError::InvalidSpec("hotplug clear above trip"));
            }
            if h.min_cores == 0 {
                return Err(SocError::InvalidSpec("hotplug must keep >= 1 core"));
            }
        }
        if let Some(iv) = &self.input_voltage {
            if !(iv.threshold.value() > 0.0 && iv.threshold.is_finite()) {
                return Err(SocError::InvalidSpec("input-voltage threshold"));
            }
            if !(iv.cap_fraction > 0.0 && iv.cap_fraction <= 1.0) {
                return Err(SocError::InvalidSpec(
                    "input-voltage cap fraction not in (0,1]",
                ));
            }
        }
        if let Some(c) = &self.critical {
            if c.clear > c.trip {
                return Err(SocError::InvalidSpec("critical clear above trip"));
            }
            if let Some(last) = self.steps.last() {
                if c.trip <= last.trip {
                    return Err(SocError::InvalidSpec(
                        "critical trip must exceed the deepest step trip",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runtime state of a [`ThrottlePolicy`]: how many steps are engaged,
/// whether hotplug and the input-voltage cap are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThrottleState {
    engaged_steps: usize,
    hotplug_active: bool,
    input_voltage_active: bool,
    critical_active: bool,
}

impl ThrottleState {
    /// Fresh, fully-released state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates the state from a sensor reading and the supply terminal
    /// voltage, then returns the constraint to apply this step.
    pub fn update(
        &mut self,
        policy: &ThrottlePolicy,
        sensor: Celsius,
        input_voltage: Volts,
    ) -> ThrottleDecision {
        // Engage deeper steps while the sensor is at/above the next trip.
        while self.engaged_steps < policy.steps.len()
            && sensor >= policy.steps[self.engaged_steps].trip
        {
            self.engaged_steps += 1;
        }
        // Release while below the deepest engaged step's clear point.
        while self.engaged_steps > 0 && sensor < policy.steps[self.engaged_steps - 1].clear {
            self.engaged_steps -= 1;
        }

        if let Some(h) = &policy.hotplug {
            if self.hotplug_active {
                if sensor < h.clear {
                    self.hotplug_active = false;
                }
            } else if sensor >= h.trip {
                self.hotplug_active = true;
            }
        }

        self.input_voltage_active = policy
            .input_voltage
            .as_ref()
            .is_some_and(|iv| input_voltage <= iv.threshold);

        if let Some(c) = &policy.critical {
            if self.critical_active {
                if sensor < c.clear {
                    self.critical_active = false;
                }
            } else if sensor >= c.trip {
                self.critical_active = true;
            }
        }

        ThrottleDecision {
            freq_cap: if self.engaged_steps > 0 {
                Some(policy.steps[self.engaged_steps - 1].cap)
            } else {
                None
            },
            min_cores: if self.hotplug_active {
                policy.hotplug.map(|h| h.min_cores)
            } else {
                None
            },
            freq_fraction: if self.input_voltage_active {
                policy.input_voltage.map(|iv| iv.cap_fraction)
            } else {
                None
            },
            emergency_stop: self.critical_active,
        }
    }

    /// Number of thermal steps currently engaged.
    pub fn engaged_steps(&self) -> usize {
        self.engaged_steps
    }

    /// Whether hotplug is currently unplugging cores.
    pub fn hotplug_active(&self) -> bool {
        self.hotplug_active
    }

    /// Whether the input-voltage cap is currently active.
    pub fn input_voltage_active(&self) -> bool {
        self.input_voltage_active
    }

    /// Whether the emergency thermal shutdown is currently active.
    pub fn critical_active(&self) -> bool {
        self.critical_active
    }

    /// Whether any mechanism is limiting the device right now.
    pub fn is_throttled(&self) -> bool {
        self.engaged_steps > 0
            || self.hotplug_active
            || self.input_voltage_active
            || self.critical_active
    }

    /// Releases everything (e.g. when resetting a device between runs).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for ThrottleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} hotplug={} input_v={} critical={}",
            self.engaged_steps,
            self.hotplug_active,
            self.input_voltage_active,
            self.critical_active
        )
    }
}

/// The constraint a [`ThrottleState::update`] call imposes on this step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleDecision {
    /// Absolute frequency cap from thermal steps, if any.
    pub freq_cap: Option<MegaHertz>,
    /// Per-cluster core floor from hotplug, if active.
    pub min_cores: Option<u32>,
    /// Fractional frequency cap from input-voltage throttling, if active.
    pub freq_fraction: Option<f64>,
    /// Emergency thermal shutdown: the workload must be suspended.
    pub emergency_stop: bool,
}

impl ThrottleDecision {
    /// Whether this decision constrains anything.
    pub fn is_throttled(&self) -> bool {
        self.freq_cap.is_some()
            || self.min_cores.is_some()
            || self.freq_fraction.is_some()
            || self.emergency_stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ThrottlePolicy {
        ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(70.0),
                    clear: Celsius(65.0),
                    cap: MegaHertz(1574.0),
                },
                ThrottleStep {
                    trip: Celsius(75.0),
                    clear: Celsius(71.0),
                    cap: MegaHertz(960.0),
                },
            ],
            hotplug: Some(HotplugRule {
                trip: Celsius(80.0),
                clear: Celsius(74.0),
                min_cores: 3,
            }),
            input_voltage: Some(InputVoltageRule {
                threshold: Volts(3.9),
                cap_fraction: 0.8,
            }),
            critical: Some(CriticalRule {
                trip: Celsius(90.0),
                clear: Celsius(80.0),
            }),
        }
    }

    #[test]
    fn cool_device_is_unthrottled() {
        let p = policy();
        let mut s = ThrottleState::new();
        let d = s.update(&p, Celsius(40.0), Volts(4.4));
        assert!(!d.is_throttled());
        assert!(!s.is_throttled());
    }

    #[test]
    fn steps_engage_in_order() {
        let p = policy();
        let mut s = ThrottleState::new();
        let d = s.update(&p, Celsius(71.0), Volts(4.4));
        assert_eq!(d.freq_cap, Some(MegaHertz(1574.0)));
        let d = s.update(&p, Celsius(76.0), Volts(4.4));
        assert_eq!(d.freq_cap, Some(MegaHertz(960.0)));
        assert_eq!(s.engaged_steps(), 2);
    }

    #[test]
    fn hot_jump_engages_multiple_steps_at_once() {
        let p = policy();
        let mut s = ThrottleState::new();
        let d = s.update(&p, Celsius(78.0), Volts(4.4));
        assert_eq!(d.freq_cap, Some(MegaHertz(960.0)));
    }

    #[test]
    fn hysteresis_holds_until_clear() {
        let p = policy();
        let mut s = ThrottleState::new();
        s.update(&p, Celsius(76.0), Volts(4.4));
        // Cooling to 72 °C: step 2 clears at 71, so still capped at 960.
        let d = s.update(&p, Celsius(72.0), Volts(4.4));
        assert_eq!(d.freq_cap, Some(MegaHertz(960.0)));
        // Below 71: down to step 1's cap.
        let d = s.update(&p, Celsius(70.5), Volts(4.4));
        assert_eq!(d.freq_cap, Some(MegaHertz(1574.0)));
        // Below 65: fully released.
        let d = s.update(&p, Celsius(64.0), Volts(4.4));
        assert_eq!(d.freq_cap, None);
    }

    #[test]
    fn hotplug_cycle() {
        let p = policy();
        let mut s = ThrottleState::new();
        let d = s.update(&p, Celsius(80.0), Volts(4.4));
        assert_eq!(d.min_cores, Some(3));
        assert!(s.hotplug_active());
        // Must cool below 74 to restore the core.
        let d = s.update(&p, Celsius(75.0), Volts(4.4));
        assert_eq!(d.min_cores, Some(3));
        let d = s.update(&p, Celsius(73.0), Volts(4.4));
        assert_eq!(d.min_cores, None);
    }

    #[test]
    fn input_voltage_throttle_tracks_supply() {
        let p = policy();
        let mut s = ThrottleState::new();
        // The Fig 10 scenario: Monsoon at nominal 3.85 V ⇒ throttled.
        let d = s.update(&p, Celsius(30.0), Volts(3.85));
        assert_eq!(d.freq_fraction, Some(0.8));
        assert!(s.input_voltage_active());
        // Raised to 4.4 V ⇒ released immediately (no hysteresis: the OS
        // samples the rail directly).
        let d = s.update(&p, Celsius(30.0), Volts(4.4));
        assert_eq!(d.freq_fraction, None);
    }

    #[test]
    fn validation_rules() {
        let mut p = policy();
        p.steps[1].trip = Celsius(60.0); // unsorted
        assert!(p.validate().is_err());

        let mut p = policy();
        p.steps[0].clear = Celsius(99.0); // clear above trip
        assert!(p.validate().is_err());

        let mut p = policy();
        p.steps[1].cap = MegaHertz(2000.0); // deeper step caps higher
        assert!(p.validate().is_err());

        let mut p = policy();
        p.hotplug = Some(HotplugRule {
            trip: Celsius(80.0),
            clear: Celsius(74.0),
            min_cores: 0,
        });
        assert!(p.validate().is_err());

        let mut p = policy();
        p.input_voltage = Some(InputVoltageRule {
            threshold: Volts(3.9),
            cap_fraction: 1.5,
        });
        assert!(p.validate().is_err());

        assert!(policy().validate().is_ok());
        assert!(ThrottlePolicy::default().validate().is_ok());
    }

    #[test]
    fn reset_releases_everything() {
        let p = policy();
        let mut s = ThrottleState::new();
        s.update(&p, Celsius(85.0), Volts(3.0));
        assert!(s.is_throttled());
        s.reset();
        assert!(!s.is_throttled());
        assert_eq!(s, ThrottleState::new());
    }

    #[test]
    fn display_is_nonempty() {
        let s = ThrottleState::new();
        assert!(!format!("{s}").is_empty());
    }
}
