//! Calibrated models of the paper's five handsets.
//!
//! | Chipset | Model | Process | CPU | Voltage scheme |
//! |---------|-------|---------|-----|----------------|
//! | SD-800 | Nexus 5 | 28 nm | 4× Krait 400 @ 2,265 MHz | static bin table (Table I) |
//! | SD-805 | Nexus 6 | 28 nm | 4× Krait 450 @ 2,649 MHz | static bin table |
//! | SD-810 | Nexus 6P | 20 nm | 4× A57 @ 1,958 + 4× A53 @ 1,555 | RBCPR |
//! | SD-820 | LG G5 | 14 nm FinFET | 2+2 Kryo @ 2,150 / 1,593 | RBCPR + input-voltage throttle |
//! | SD-821 | Google Pixel | 14 nm FinFET | 2+2 Kryo @ 2,150 / 1,593 | RBCPR |
//!
//! Ladder frequencies and trip temperatures come from the paper and public
//! kernel sources; power-law constants are calibrated so the ACCUBENCH
//! experiments land in the paper's reported variation bands (see DESIGN.md
//! §4 for the per-experiment tolerances).
//!
//! The [`fleet`] module provides the exact device populations of §IV: four
//! Nexus 5 bins (bin-4 failed during the paper's experiments and is likewise
//! omitted), three Nexus 6 units, three Nexus 6P units including the named
//! device-363/device-793, five LG G5 units, and three Pixels including
//! device-488/device-653.

use crate::device::Device;
use crate::rbcpr::RbcprSpec;
use crate::spec::{ClusterSpec, DeviceSpec, SocSpec, ThermalSpec, VoltageScheme};
use crate::throttle::{CriticalRule, HotplugRule, InputVoltageRule, ThrottlePolicy, ThrottleStep};
use crate::SocError;
use pv_power::Monsoon;
use pv_silicon::binning::{self, BinId, VfPoint, VfTable};
use pv_silicon::power::PowerParams;
use pv_silicon::{DieSample, ProcessNode};
use pv_units::{
    Celsius, MegaHertz, MilliVolts, Seconds, TempDelta, ThermalCapacitance, ThermalResistance,
    Volts, Watts,
};

fn table(points: &[(f64, u32)]) -> Result<VfTable, SocError> {
    let pts = points
        .iter()
        .map(|&(f, mv)| VfPoint {
            freq: MegaHertz(f),
            voltage: MilliVolts(mv),
        })
        .collect();
    VfTable::new(pts).map_err(SocError::from)
}

/// Deterministic seed derived from a device label, so two devices with
/// different labels get independent (but reproducible) sensor noise.
fn seed_from_label(label: &str) -> u64 {
    label.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

// ---------------------------------------------------------------------------
// Nexus 5 — Snapdragon 800
// ---------------------------------------------------------------------------

/// Device specification for the Nexus 5 (SD-800).
///
/// The slow/fast voltage ladders are the paper's Table I bin-0 and bin-6
/// rows; a unit's actual table is regenerated from its die grade by
/// [`pv_silicon::binning::voltage_bin_table`].
///
/// # Errors
///
/// Never fails in practice; the error branch exists because table
/// construction is fallible.
pub fn nexus5_spec() -> Result<DeviceSpec, SocError> {
    let vf_slow = binning::nexus5::reference_table(BinId(0))?;
    let vf_fast = binning::nexus5::reference_table(BinId(6))?;
    let power = PowerParams::new(
        0.42e-9,      // Ceff per Krait core
        Watts(0.130), // per-core leakage at 0.9 V / 26 °C, nominal die
        Volts(0.9),
        Celsius(26.0),
        2.0,
        0.029,
    )?;
    Ok(DeviceSpec {
        model: "Nexus 5",
        soc: SocSpec {
            name: "SD-800",
            node: ProcessNode::PLANAR_28NM,
            clusters: vec![ClusterSpec {
                name: "Krait-400",
                cores: 4,
                perf_weight: 1.0,
                power,
                vf_slow,
                vf_fast,
            }],
            uncore_power: Watts(0.15),
        },
        thermal: nexus_era_thermals(),
        throttle: ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(70.0),
                    clear: Celsius(66.0),
                    cap: MegaHertz(1574.0),
                },
                ThrottleStep {
                    trip: Celsius(75.0),
                    clear: Celsius(71.0),
                    cap: MegaHertz(960.0),
                },
                ThrottleStep {
                    trip: Celsius(78.0),
                    clear: Celsius(74.0),
                    cap: MegaHertz(729.0),
                },
                // Emergency cap: keeps even the leakiest bin-6 die out of
                // thermal runaway once hotplug alone cannot stem the
                // leakage avalanche.
                ThrottleStep {
                    trip: Celsius(81.0),
                    clear: Celsius(75.0),
                    cap: MegaHertz(300.0),
                },
            ],
            hotplug: Some(HotplugRule {
                trip: Celsius(80.0),
                clear: Celsius(75.0),
                min_cores: 3,
            }),
            input_voltage: None,
            critical: Some(CriticalRule {
                trip: Celsius(86.0),
                clear: Celsius(76.0),
            }),
        },
        voltage_scheme: VoltageScheme::StaticTable,
        nominal_battery_voltage: Volts(3.8),
        max_battery_voltage: Volts(4.35),
        regulator_efficiency: 0.88,
        idle_power: Watts(0.07),
        initial_ambient: Celsius(26.0),
    })
}

fn nexus_era_thermals() -> ThermalSpec {
    ThermalSpec {
        die_capacitance: ThermalCapacitance(2.5),
        package_capacitance: ThermalCapacitance(8.0),
        case_capacitance: ThermalCapacitance(5.0),
        die_to_package: ThermalResistance(3.2),
        package_to_case: ThermalResistance(3.0),
        case_to_ambient: ThermalResistance(10.0),
        sensor_tau: Seconds(1.5),
        sensor_noise: TempDelta(0.15),
        sensor_quantum: TempDelta(1.0),
    }
}

/// A Nexus 5 unit from voltage bin `bin` (die at the bin's centre grade),
/// powered by a Monsoon at the nominal battery voltage — the paper's
/// standard setup.
///
/// # Errors
///
/// Returns [`SocError`] for bins outside 0..=6.
pub fn nexus5(bin: BinId) -> Result<Device, SocError> {
    let spec = nexus5_spec()?;
    let grade = binning::nexus5::bin_center_grade(bin)?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = format!("bin-{}", bin.index());
    let supply = Box::new(Monsoon::new(spec.nominal_battery_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

// ---------------------------------------------------------------------------
// Nexus 6 — Snapdragon 805
// ---------------------------------------------------------------------------

/// Device specification for the Nexus 6 (SD-805).
///
/// Same 28 nm Krait generation as the SD-800 but clocked to 2,649 MHz at
/// higher voltage — which is why the paper's Fig 13 finds it *less*
/// efficient than its predecessor despite being faster.
///
/// # Errors
///
/// Never fails in practice (fallible table construction).
pub fn nexus6_spec() -> Result<DeviceSpec, SocError> {
    let vf_slow = table(&[
        (300.0, 810),
        (729.0, 845),
        (1032.0, 885),
        (1574.0, 975),
        (2265.0, 1110),
        (2649.0, 1180),
    ])?;
    let vf_fast = table(&[
        (300.0, 760),
        (729.0, 770),
        (1032.0, 810),
        (1574.0, 880),
        (2265.0, 960),
        (2649.0, 1030),
    ])?;
    let power = PowerParams::new(
        0.46e-9,     // Krait 450: wider datapaths, higher Ceff
        Watts(0.19), // hotter-running bin of the same 28nm process
        Volts(0.9),
        Celsius(26.0),
        2.0,
        0.022,
    )?;
    Ok(DeviceSpec {
        model: "Nexus 6",
        soc: SocSpec {
            name: "SD-805",
            node: ProcessNode::PLANAR_28NM,
            clusters: vec![ClusterSpec {
                name: "Krait-450",
                cores: 4,
                perf_weight: 1.0,
                power,
                vf_slow,
                vf_fast,
            }],
            uncore_power: Watts(0.25),
        },
        thermal: ThermalSpec {
            // Physically larger phablet: more thermal mass, better spreading.
            die_capacitance: ThermalCapacitance(3.0),
            package_capacitance: ThermalCapacitance(11.0),
            case_capacitance: ThermalCapacitance(7.0),
            die_to_package: ThermalResistance(3.0),
            package_to_case: ThermalResistance(2.8),
            case_to_ambient: ThermalResistance(8.0),
            sensor_tau: Seconds(1.5),
            sensor_noise: TempDelta(0.15),
            sensor_quantum: TempDelta(1.0),
        },
        throttle: ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(70.0),
                    clear: Celsius(66.0),
                    cap: MegaHertz(2265.0),
                },
                ThrottleStep {
                    trip: Celsius(75.0),
                    clear: Celsius(71.0),
                    cap: MegaHertz(1574.0),
                },
                ThrottleStep {
                    trip: Celsius(78.0),
                    clear: Celsius(74.0),
                    cap: MegaHertz(1032.0),
                },
            ],
            hotplug: Some(HotplugRule {
                trip: Celsius(80.0),
                clear: Celsius(75.0),
                min_cores: 3,
            }),
            input_voltage: None,
            critical: Some(CriticalRule {
                trip: Celsius(86.0),
                clear: Celsius(76.0),
            }),
        },
        voltage_scheme: VoltageScheme::StaticTable,
        nominal_battery_voltage: Volts(3.8),
        max_battery_voltage: Volts(4.35),
        regulator_efficiency: 0.88,
        idle_power: Watts(0.08),
        initial_ambient: Celsius(26.0),
    })
}

/// A Nexus 6 unit with a die at `grade`, Monsoon-powered.
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1).
pub fn nexus6(grade: f64, label: impl Into<String>) -> Result<Device, SocError> {
    let spec = nexus6_spec()?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = label.into();
    let supply = Box::new(Monsoon::new(spec.nominal_battery_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

// ---------------------------------------------------------------------------
// Nexus 6P — Snapdragon 810
// ---------------------------------------------------------------------------

/// Device specification for the Nexus 6P (SD-810).
///
/// The notorious 20 nm big.LITTLE part: four hot A57s over four frugal
/// A53s, with RBCPR runtime voltage trimming instead of static bin tables
/// (all the paper's units reported "speed-bin 0", §IV-A2).
///
/// # Errors
///
/// Never fails in practice (fallible table construction).
pub fn nexus6p_spec() -> Result<DeviceSpec, SocError> {
    let a57 = table(&[
        (384.0, 800),
        (768.0, 850),
        (1248.0, 920),
        (1632.0, 1000),
        (1958.0, 1080),
    ])?;
    let a53 = table(&[
        (384.0, 750),
        (768.0, 800),
        (1152.0, 850),
        (1440.0, 900),
        (1555.0, 930),
    ])?;
    let a57_power = PowerParams::new(
        0.62e-9, // A57: power-hungry OoO core on leaky 20nm
        Watts(0.22),
        Volts(0.9),
        Celsius(26.0),
        2.0,
        0.024,
    )?;
    let a53_power = PowerParams::new(0.18e-9, Watts(0.06), Volts(0.9), Celsius(26.0), 2.0, 0.024)?;
    Ok(DeviceSpec {
        model: "Nexus 6P",
        soc: SocSpec {
            name: "SD-810",
            node: ProcessNode::PLANAR_20NM,
            clusters: vec![
                ClusterSpec {
                    name: "A57",
                    cores: 4,
                    perf_weight: 1.15,
                    power: a57_power,
                    vf_slow: a57.clone(),
                    vf_fast: a57,
                },
                ClusterSpec {
                    name: "A53",
                    cores: 4,
                    perf_weight: 0.55,
                    power: a53_power,
                    vf_slow: a53.clone(),
                    vf_fast: a53,
                },
            ],
            uncore_power: Watts(0.30),
        },
        thermal: ThermalSpec {
            die_capacitance: ThermalCapacitance(3.0),
            package_capacitance: ThermalCapacitance(9.5),
            case_capacitance: ThermalCapacitance(6.5),
            die_to_package: ThermalResistance(2.8),
            package_to_case: ThermalResistance(2.6),
            case_to_ambient: ThermalResistance(8.2),
            sensor_tau: Seconds(1.2),
            sensor_noise: TempDelta(0.12),
            sensor_quantum: TempDelta(1.0),
        },
        throttle: ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(68.0),
                    clear: Celsius(63.0),
                    cap: MegaHertz(1632.0),
                },
                ThrottleStep {
                    trip: Celsius(73.0),
                    clear: Celsius(68.0),
                    cap: MegaHertz(1248.0),
                },
                ThrottleStep {
                    trip: Celsius(77.0),
                    clear: Celsius(72.0),
                    cap: MegaHertz(768.0),
                },
                ThrottleStep {
                    trip: Celsius(80.0),
                    clear: Celsius(75.0),
                    cap: MegaHertz(384.0),
                },
            ],
            // The 810 famously parks A57 cores under thermal pressure.
            hotplug: Some(HotplugRule {
                trip: Celsius(79.0),
                clear: Celsius(72.0),
                min_cores: 2,
            }),
            input_voltage: None,
            critical: Some(CriticalRule {
                trip: Celsius(87.0),
                clear: Celsius(77.0),
            }),
        },
        voltage_scheme: VoltageScheme::Rbcpr(RbcprSpec::new(0.05, 0.0004, Celsius(26.0), 0.85)?),
        nominal_battery_voltage: Volts(3.84),
        max_battery_voltage: Volts(4.35),
        regulator_efficiency: 0.88,
        idle_power: Watts(0.09),
        initial_ambient: Celsius(26.0),
    })
}

/// A Nexus 6P unit with a die at `grade`, Monsoon-powered.
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1).
pub fn nexus6p(grade: f64, label: impl Into<String>) -> Result<Device, SocError> {
    let spec = nexus6p_spec()?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = label.into();
    let supply = Box::new(Monsoon::new(spec.nominal_battery_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

// ---------------------------------------------------------------------------
// LG G5 — Snapdragon 820
// ---------------------------------------------------------------------------

/// Device specification for the LG G5 (SD-820).
///
/// First 14 nm FinFET part in the study: two performance Kryo cores at
/// 2,150 MHz over two efficiency Kryos at 1,593 MHz. Uniquely, the G5
/// throttles on *input voltage* (Fig 10): at or below ≈3.9 V at the power
/// input the OS caps the CPU near 80 % of maximum.
///
/// # Errors
///
/// Never fails in practice (fallible table construction).
pub fn lg_g5_spec() -> Result<DeviceSpec, SocError> {
    let kryo_perf = table(&[(307.0, 720), (998.0, 790), (1594.0, 870), (2150.0, 990)])?;
    let kryo_eff = table(&[(307.0, 700), (998.0, 770), (1324.0, 820), (1593.0, 865)])?;
    let perf_power = PowerParams::new(0.44e-9, Watts(0.16), Volts(0.9), Celsius(26.0), 2.0, 0.022)?;
    let eff_power = PowerParams::new(0.30e-9, Watts(0.10), Volts(0.9), Celsius(26.0), 2.0, 0.022)?;
    Ok(DeviceSpec {
        model: "LG G5",
        soc: SocSpec {
            name: "SD-820",
            node: ProcessNode::FINFET_14NM,
            clusters: vec![
                ClusterSpec {
                    name: "Kryo-perf",
                    cores: 2,
                    perf_weight: 1.45,
                    power: perf_power,
                    vf_slow: kryo_perf.clone(),
                    vf_fast: kryo_perf,
                },
                ClusterSpec {
                    name: "Kryo-eff",
                    cores: 2,
                    perf_weight: 1.35,
                    power: eff_power,
                    vf_slow: kryo_eff.clone(),
                    vf_fast: kryo_eff,
                },
            ],
            uncore_power: Watts(0.25),
        },
        thermal: ThermalSpec {
            die_capacitance: ThermalCapacitance(2.4),
            package_capacitance: ThermalCapacitance(6.5),
            case_capacitance: ThermalCapacitance(4.0),
            die_to_package: ThermalResistance(3.0),
            package_to_case: ThermalResistance(2.8),
            case_to_ambient: ThermalResistance(8.0),
            sensor_tau: Seconds(1.0),
            sensor_noise: TempDelta(0.1),
            sensor_quantum: TempDelta(0.1),
        },
        throttle: ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(72.0),
                    clear: Celsius(68.0),
                    cap: MegaHertz(1594.0),
                },
                ThrottleStep {
                    trip: Celsius(77.0),
                    clear: Celsius(72.0),
                    cap: MegaHertz(998.0),
                },
            ],
            hotplug: None,
            input_voltage: Some(InputVoltageRule {
                threshold: Volts(3.9),
                cap_fraction: 0.78,
            }),
            critical: Some(CriticalRule {
                trip: Celsius(85.0),
                clear: Celsius(75.0),
            }),
        },
        voltage_scheme: VoltageScheme::Rbcpr(RbcprSpec::new(0.03, 0.0003, Celsius(26.0), 0.85)?),
        nominal_battery_voltage: Volts(3.85),
        max_battery_voltage: Volts(4.4),
        regulator_efficiency: 0.90,
        idle_power: Watts(0.07),
        initial_ambient: Celsius(26.0),
    })
}

/// An LG G5 unit with a die at `grade`.
///
/// The Monsoon is programmed to the battery's **maximum** 4.4 V — the
/// configuration the paper settled on after discovering the input-voltage
/// throttle (use [`lg_g5_at_voltage`] for the Fig 10 comparison).
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1).
pub fn lg_g5(grade: f64, label: impl Into<String>) -> Result<Device, SocError> {
    let spec = lg_g5_spec()?;
    lg_g5_at_voltage(grade, label, spec.max_battery_voltage)
}

/// An LG G5 unit powered by a Monsoon programmed to `supply_voltage` —
/// the Fig 10 experiment's independent variable.
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1) or a non-positive
/// voltage.
pub fn lg_g5_at_voltage(
    grade: f64,
    label: impl Into<String>,
    supply_voltage: Volts,
) -> Result<Device, SocError> {
    let spec = lg_g5_spec()?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = label.into();
    let supply = Box::new(Monsoon::new(supply_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

// ---------------------------------------------------------------------------
// Google Pixel — Snapdragon 821
// ---------------------------------------------------------------------------

/// Device specification for the Google Pixel (SD-821).
///
/// Same 14 nm Kryo generation as the SD-820 with a refreshed bin and a more
/// finely stepped throttle policy — the policy whose interaction with
/// silicon quality produces the counter-intuitive Fig 11 result (the device
/// spending *more* time hot throttles *less*).
///
/// # Errors
///
/// Never fails in practice (fallible table construction).
pub fn pixel_spec() -> Result<DeviceSpec, SocError> {
    let kryo_perf = table(&[
        (307.0, 715),
        (998.0, 785),
        (1594.0, 860),
        (1996.0, 940),
        (2150.0, 980),
    ])?;
    let kryo_eff = table(&[(307.0, 695), (998.0, 765), (1324.0, 815), (1593.0, 855)])?;
    let perf_power = PowerParams::new(0.47e-9, Watts(0.15), Volts(0.9), Celsius(26.0), 2.0, 0.022)?;
    let eff_power = PowerParams::new(0.31e-9, Watts(0.095), Volts(0.9), Celsius(26.0), 2.0, 0.022)?;
    Ok(DeviceSpec {
        model: "Google Pixel",
        soc: SocSpec {
            name: "SD-821",
            node: ProcessNode::FINFET_14NM,
            clusters: vec![
                ClusterSpec {
                    name: "Kryo-perf",
                    cores: 2,
                    perf_weight: 1.48,
                    power: perf_power,
                    vf_slow: kryo_perf.clone(),
                    vf_fast: kryo_perf,
                },
                ClusterSpec {
                    name: "Kryo-eff",
                    cores: 2,
                    perf_weight: 1.38,
                    power: eff_power,
                    vf_slow: kryo_eff.clone(),
                    vf_fast: kryo_eff,
                },
            ],
            uncore_power: Watts(0.24),
        },
        thermal: ThermalSpec {
            die_capacitance: ThermalCapacitance(2.4),
            package_capacitance: ThermalCapacitance(6.8),
            case_capacitance: ThermalCapacitance(4.0),
            die_to_package: ThermalResistance(3.0),
            package_to_case: ThermalResistance(2.8),
            case_to_ambient: ThermalResistance(9.0),
            sensor_tau: Seconds(1.0),
            sensor_noise: TempDelta(0.1),
            sensor_quantum: TempDelta(0.1),
        },
        throttle: ThrottlePolicy {
            // Finer steps, tighter hysteresis than the G5: the Pixel rides
            // closer to its trip temperature.
            steps: vec![
                ThrottleStep {
                    trip: Celsius(70.0),
                    clear: Celsius(67.0),
                    cap: MegaHertz(1996.0),
                },
                ThrottleStep {
                    trip: Celsius(74.0),
                    clear: Celsius(71.0),
                    cap: MegaHertz(1594.0),
                },
                ThrottleStep {
                    trip: Celsius(78.0),
                    clear: Celsius(74.0),
                    cap: MegaHertz(998.0),
                },
            ],
            hotplug: None,
            input_voltage: None,
            critical: Some(CriticalRule {
                trip: Celsius(85.0),
                clear: Celsius(75.0),
            }),
        },
        voltage_scheme: VoltageScheme::Rbcpr(RbcprSpec::new(0.03, 0.0003, Celsius(26.0), 0.85)?),
        nominal_battery_voltage: Volts(3.85),
        max_battery_voltage: Volts(4.4),
        regulator_efficiency: 0.90,
        idle_power: Watts(0.06),
        initial_ambient: Celsius(26.0),
    })
}

/// A Google Pixel unit with a die at `grade`, Monsoon-powered.
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1).
pub fn pixel(grade: f64, label: impl Into<String>) -> Result<Device, SocError> {
    let spec = pixel_spec()?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = label.into();
    let supply = Box::new(Monsoon::new(spec.nominal_battery_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

// ---------------------------------------------------------------------------
// Study fleets — the paper's exact device populations
// ---------------------------------------------------------------------------

/// The device populations of the paper's §IV study.
pub mod fleet {
    use super::*;

    /// The four working Nexus 5 chips: bins 0–3 (the paper's bin-4 unit
    /// died mid-study and is excluded, §IV-A1).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn nexus5_study() -> Result<Vec<Device>, SocError> {
        [0u8, 1, 2, 3]
            .into_iter()
            .map(|b| nexus5(BinId(b)))
            .collect()
    }

    /// All seven Nexus 5 bins for the Fig 1 background experiment.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn nexus5_all_bins() -> Result<Vec<Device>, SocError> {
        (0u8..7).map(|b| nexus5(BinId(b))).collect()
    }

    /// Three Nexus 6 units. The paper found only 2 % spread across its
    /// three units — silicon drawn from the middle of the distribution.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn nexus6_study() -> Result<Vec<Device>, SocError> {
        [
            ("device-214", 0.47),
            ("device-385", 0.50),
            ("device-771", 0.53),
        ]
        .into_iter()
        .map(|(label, g)| nexus6(g, label))
        .collect()
    }

    /// Three Nexus 6P units, including the paper's named device-363 (worst:
    /// 10 % slower, 12 % more energy) and device-793 (best).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn nexus6p_study() -> Result<Vec<Device>, SocError> {
        [
            ("device-793", 0.39),
            ("device-541", 0.52),
            ("device-363", 0.65),
        ]
        .into_iter()
        .map(|(label, g)| nexus6p(g, label))
        .collect()
    }

    /// Five LG G5 units (Monsoon at 4.4 V, the post-Fig-10 configuration).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn lg_g5_study() -> Result<Vec<Device>, SocError> {
        [
            ("device-112", 0.24),
            ("device-278", 0.37),
            ("device-430", 0.50),
            ("device-556", 0.63),
            ("device-689", 0.76),
        ]
        .into_iter()
        .map(|(label, g)| lg_g5(g, label))
        .collect()
    }

    /// Three Google Pixel units, including the paper's named device-488
    /// (best; 7 % faster than device-653 in the Fig 11 iterations).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn pixel_study() -> Result<Vec<Device>, SocError> {
        [
            ("device-488", 0.24),
            ("device-570", 0.50),
            ("device-653", 0.76),
        ]
        .into_iter()
        .map(|(label, g)| pixel(g, label))
        .collect()
    }

    /// Three Google Pixel 2 (SD-835) units for the forecast experiment —
    /// one process generation past the paper's study.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none in practice).
    pub fn pixel2_forecast() -> Result<Vec<Device>, SocError> {
        [
            ("device-2a", 0.25),
            ("device-2b", 0.50),
            ("device-2c", 0.75),
        ]
        .into_iter()
        .map(|(label, g)| pixel2(g, label))
        .collect()
    }
}

// ---------------------------------------------------------------------------
// Google Pixel 2 — Snapdragon 835 (forecast device, one generation past the
// paper's study)
// ---------------------------------------------------------------------------

/// Device specification for the Google Pixel 2 (SD-835, 10 nm FinFET).
///
/// Not part of the paper's study: the forecast experiment uses it to
/// extrapolate the Fig 13 efficiency trend one process generation forward
/// (4+4 Kryo 280 at 2,362 / 1,900 MHz, RBCPR).
///
/// # Errors
///
/// Never fails in practice (fallible table construction).
pub fn pixel2_spec() -> Result<DeviceSpec, SocError> {
    let kryo_perf = table(&[
        (300.0, 690),
        (1056.0, 750),
        (1766.0, 830),
        (2112.0, 890),
        (2362.0, 940),
    ])?;
    let kryo_eff = table(&[(300.0, 670), (1056.0, 730), (1555.0, 790), (1900.0, 845)])?;
    let perf_power = PowerParams::new(0.34e-9, Watts(0.10), Volts(0.9), Celsius(26.0), 2.0, 0.021)?;
    let eff_power = PowerParams::new(0.16e-9, Watts(0.05), Volts(0.9), Celsius(26.0), 2.0, 0.021)?;
    Ok(DeviceSpec {
        model: "Google Pixel 2",
        soc: SocSpec {
            name: "SD-835",
            node: ProcessNode::FINFET_10NM,
            clusters: vec![
                ClusterSpec {
                    name: "Kryo280-perf",
                    cores: 4,
                    perf_weight: 1.55,
                    power: perf_power,
                    vf_slow: kryo_perf.clone(),
                    vf_fast: kryo_perf,
                },
                ClusterSpec {
                    name: "Kryo280-eff",
                    cores: 4,
                    perf_weight: 1.05,
                    power: eff_power,
                    vf_slow: kryo_eff.clone(),
                    vf_fast: kryo_eff,
                },
            ],
            uncore_power: Watts(0.22),
        },
        thermal: ThermalSpec {
            die_capacitance: ThermalCapacitance(2.6),
            package_capacitance: ThermalCapacitance(7.5),
            case_capacitance: ThermalCapacitance(4.5),
            die_to_package: ThermalResistance(2.8),
            package_to_case: ThermalResistance(2.6),
            case_to_ambient: ThermalResistance(8.5),
            sensor_tau: Seconds(0.8),
            sensor_noise: TempDelta(0.08),
            sensor_quantum: TempDelta(0.1),
        },
        throttle: ThrottlePolicy {
            steps: vec![
                ThrottleStep {
                    trip: Celsius(72.0),
                    clear: Celsius(69.0),
                    cap: MegaHertz(2112.0),
                },
                ThrottleStep {
                    trip: Celsius(76.0),
                    clear: Celsius(72.0),
                    cap: MegaHertz(1766.0),
                },
                ThrottleStep {
                    trip: Celsius(80.0),
                    clear: Celsius(75.0),
                    cap: MegaHertz(1056.0),
                },
            ],
            hotplug: None,
            input_voltage: None,
            critical: Some(CriticalRule {
                trip: Celsius(86.0),
                clear: Celsius(76.0),
            }),
        },
        voltage_scheme: VoltageScheme::Rbcpr(RbcprSpec::new(0.03, 0.0003, Celsius(26.0), 0.85)?),
        nominal_battery_voltage: Volts(3.85),
        max_battery_voltage: Volts(4.4),
        regulator_efficiency: 0.91,
        idle_power: Watts(0.05),
        initial_ambient: Celsius(26.0),
    })
}

/// A Google Pixel 2 unit with a die at `grade`, Monsoon-powered.
///
/// # Errors
///
/// Returns [`SocError`] for a grade outside (0, 1).
pub fn pixel2(grade: f64, label: impl Into<String>) -> Result<Device, SocError> {
    let spec = pixel2_spec()?;
    let die = DieSample::from_grade(spec.soc.node, grade)?;
    let label = label.into();
    let supply = Box::new(Monsoon::new(spec.nominal_battery_voltage)?);
    let seed = seed_from_label(&label);
    Device::new(spec, die, supply, label, seed)
}

/// Parses a device descriptor of the form `model:selector` into a ready
/// [`Device`]:
///
/// * `nexus5:<bin>` — a Nexus 5 from voltage bin 0–6 (`nexus5:2`);
/// * `nexus6:<grade>`, `nexus6p:<grade>`, `lgg5:<grade>`, `pixel:<grade>`,
///   `pixel2:<grade>` — a unit with a die at the given grade in (0, 1)
///   (`pixel:0.5`).
///
/// # Errors
///
/// Returns [`SocError::InvalidSpec`] for an unknown model or malformed
/// selector, and propagates construction errors for out-of-range values.
///
/// # Examples
///
/// ```
/// let device = pv_soc::catalog::parse_device("nexus5:2")?;
/// assert_eq!(device.spec().model, "Nexus 5");
/// let device = pv_soc::catalog::parse_device("pixel:0.5")?;
/// assert_eq!(device.spec().soc.name, "SD-821");
/// # Ok::<(), pv_soc::SocError>(())
/// ```
pub fn parse_device(descriptor: &str) -> Result<Device, SocError> {
    let (model, selector) = descriptor
        .split_once(':')
        .ok_or(SocError::InvalidSpec("expected model:selector"))?;
    let label = descriptor.replace(':', "-");
    match model.to_ascii_lowercase().as_str() {
        "nexus5" => {
            let bin: u8 = selector
                .parse()
                .map_err(|_| SocError::InvalidSpec("nexus5 selector must be a bin 0-6"))?;
            nexus5(BinId(bin))
        }
        other => {
            let grade: f64 = selector
                .parse()
                .map_err(|_| SocError::InvalidSpec("selector must be a grade in (0,1)"))?;
            match other {
                "nexus6" => nexus6(grade, label),
                "nexus6p" => nexus6p(grade, label),
                "lgg5" | "lg-g5" | "g5" => lg_g5(grade, label),
                "pixel" => pixel(grade, label),
                "pixel2" => pixel2(grade, label),
                _ => Err(SocError::InvalidSpec("unknown model")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_constructors_build() {
        nexus5(BinId(0)).unwrap();
        nexus5(BinId(6)).unwrap();
        nexus6(0.5, "n6").unwrap();
        nexus6p(0.5, "n6p").unwrap();
        lg_g5(0.5, "g5").unwrap();
        lg_g5_at_voltage(0.5, "g5", Volts(3.85)).unwrap();
        pixel(0.5, "px").unwrap();
    }

    #[test]
    fn fleets_have_paper_sizes() {
        assert_eq!(fleet::nexus5_study().unwrap().len(), 4);
        assert_eq!(fleet::nexus5_all_bins().unwrap().len(), 7);
        assert_eq!(fleet::nexus6_study().unwrap().len(), 3);
        assert_eq!(fleet::nexus6p_study().unwrap().len(), 3);
        assert_eq!(fleet::lg_g5_study().unwrap().len(), 5);
        assert_eq!(fleet::pixel_study().unwrap().len(), 3);
    }

    #[test]
    fn named_personas_exist() {
        let n6p = fleet::nexus6p_study().unwrap();
        assert!(n6p.iter().any(|d| d.label() == "device-363"));
        assert!(n6p.iter().any(|d| d.label() == "device-793"));
        let px = fleet::pixel_study().unwrap();
        assert!(px.iter().any(|d| d.label() == "device-488"));
        assert!(px.iter().any(|d| d.label() == "device-653"));
    }

    #[test]
    fn nexus5_table_tracks_bin() {
        // A bin-0 unit's generated table must sit at/near the Table I bin-0
        // ladder; a bin-6 unit near the bin-6 ladder.
        let d0 = nexus5(BinId(0)).unwrap();
        let d6 = nexus5(BinId(6)).unwrap();
        let f = MegaHertz(2265.0);
        let v0 = d0.tables()[0].voltage_at(f).value();
        let v6 = d6.tables()[0].voltage_at(f).value();
        assert!(v0 > v6, "bin-0 must run at higher voltage than bin-6");
        assert!((v0 - 1.090).abs() < 0.015, "bin-0 top voltage {v0}");
        assert!((v6 - 0.960).abs() < 0.015, "bin-6 top voltage {v6}");
    }

    #[test]
    fn seeds_differ_by_label() {
        assert_ne!(seed_from_label("device-363"), seed_from_label("device-793"));
        assert_eq!(seed_from_label("x"), seed_from_label("x"));
    }

    #[test]
    fn parse_device_handles_all_models() {
        assert_eq!(parse_device("nexus5:0").unwrap().spec().model, "Nexus 5");
        assert_eq!(
            parse_device("nexus6:0.5").unwrap().spec().soc.name,
            "SD-805"
        );
        assert_eq!(
            parse_device("nexus6p:0.5").unwrap().spec().soc.name,
            "SD-810"
        );
        assert_eq!(parse_device("lgg5:0.5").unwrap().spec().soc.name, "SD-820");
        assert_eq!(parse_device("g5:0.5").unwrap().spec().soc.name, "SD-820");
        assert_eq!(parse_device("PIXEL:0.5").unwrap().spec().soc.name, "SD-821");
        assert_eq!(
            parse_device("pixel2:0.5").unwrap().spec().soc.name,
            "SD-835"
        );
        assert!(parse_device("nexus5").is_err());
        assert!(parse_device("nexus5:nine").is_err());
        assert!(parse_device("nexus5:9").is_err());
        assert!(parse_device("iphone:0.5").is_err());
        assert!(parse_device("pixel:1.5").is_err());
    }

    #[test]
    fn g5_default_supply_is_max_voltage() {
        let d = lg_g5(0.5, "g5").unwrap();
        assert_eq!(d.supply().terminal_voltage(Watts(1.0)), Volts(4.4));
    }
}
