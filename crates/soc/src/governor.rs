//! DVFS governors beyond the paper's two modes.
//!
//! The paper measures with the governor pinned (UNCONSTRAINED = always-max,
//! FIXED-FREQUENCY = pinned low). Real phones run demand-driven governors,
//! and process variation is visible under them too — a leaky die throttles
//! even when `ondemand` would otherwise have kept it at max. These
//! governors produce a *target* frequency each tick; feed it to
//! [`FrequencyMode::Fixed`](crate::device::FrequencyMode::Fixed) (the device
//! snaps to the ladder and still applies thermal caps on top, exactly like
//! cpufreq sitting below the thermal engine).

use crate::SocError;
use core::fmt;
use pv_silicon::binning::VfTable;
use pv_units::MegaHertz;

/// Linux-`ondemand`-style governor: jump to maximum when utilisation
/// crosses the up-threshold, otherwise scale frequency proportionally to
/// the load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ondemand {
    up_threshold: f64,
    current: MegaHertz,
}

impl Ondemand {
    /// Creates an `ondemand` governor starting from `initial` with the
    /// given up-threshold (Linux default: 0.80).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] unless `0 < up_threshold <= 1`.
    pub fn new(up_threshold: f64, initial: MegaHertz) -> Result<Self, SocError> {
        if !(up_threshold > 0.0 && up_threshold <= 1.0) {
            return Err(SocError::InvalidSpec("up_threshold not in (0,1]"));
        }
        Ok(Self {
            up_threshold,
            current: initial,
        })
    }

    /// Next target frequency given the cluster's ladder and the utilisation
    /// observed over the last sampling period.
    pub fn target(&mut self, table: &VfTable, util: f64) -> MegaHertz {
        let util = util.clamp(0.0, 1.0);
        let target = if util >= self.up_threshold {
            table.max_freq()
        } else {
            // Scale so the next period would run at ~up_threshold load.
            let wanted = self.current.value() * util / self.up_threshold;
            table
                .highest_freq_at_or_below(MegaHertz(wanted))
                .unwrap_or_else(|| table.min_freq())
        };
        self.current = target;
        target
    }

    /// The governor's current frequency.
    pub fn current(&self) -> MegaHertz {
        self.current
    }
}

impl fmt::Display for Ondemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ondemand(up={:.0}%, at {:.0})",
            self.up_threshold * 100.0,
            self.current
        )
    }
}

/// Linux-`conservative`-style governor: walk the ladder one step at a time
/// instead of jumping, trading responsiveness for stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conservative {
    up_threshold: f64,
    down_threshold: f64,
    current: MegaHertz,
}

impl Conservative {
    /// Creates a `conservative` governor (Linux defaults: up 0.80,
    /// down 0.20).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] unless
    /// `0 <= down_threshold < up_threshold <= 1`.
    pub fn new(
        up_threshold: f64,
        down_threshold: f64,
        initial: MegaHertz,
    ) -> Result<Self, SocError> {
        if !(up_threshold > 0.0 && up_threshold <= 1.0) {
            return Err(SocError::InvalidSpec("up_threshold not in (0,1]"));
        }
        if !(down_threshold >= 0.0 && down_threshold < up_threshold) {
            return Err(SocError::InvalidSpec(
                "down_threshold must be in [0, up_threshold)",
            ));
        }
        Ok(Self {
            up_threshold,
            down_threshold,
            current: initial,
        })
    }

    /// Next target: one ladder step up on high load, one down on low load.
    pub fn target(&mut self, table: &VfTable, util: f64) -> MegaHertz {
        let util = util.clamp(0.0, 1.0);
        let freqs: Vec<MegaHertz> = table.freqs().collect();
        let idx = freqs
            .iter()
            .position(|f| (f.value() - self.current.value()).abs() < 1e-9)
            // Unknown current (e.g. table swapped): restart from the bottom.
            .unwrap_or(0);
        let next = if util >= self.up_threshold {
            freqs[(idx + 1).min(freqs.len() - 1)]
        } else if util <= self.down_threshold {
            freqs[idx.saturating_sub(1)]
        } else {
            freqs[idx]
        };
        self.current = next;
        next
    }

    /// The governor's current frequency.
    pub fn current(&self) -> MegaHertz {
        self.current
    }
}

impl fmt::Display for Conservative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conservative(up={:.0}%, down={:.0}%, at {:.0})",
            self.up_threshold * 100.0,
            self.down_threshold * 100.0,
            self.current
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_silicon::binning::{nexus5, BinId};

    fn ladder() -> VfTable {
        nexus5::reference_table(BinId(0)).unwrap()
    }

    #[test]
    fn ondemand_jumps_to_max_on_high_load() {
        let t = ladder();
        let mut g = Ondemand::new(0.8, t.min_freq()).unwrap();
        assert_eq!(g.target(&t, 1.0), MegaHertz(2265.0));
        assert_eq!(g.current(), MegaHertz(2265.0));
    }

    #[test]
    fn ondemand_scales_down_proportionally() {
        let t = ladder();
        let mut g = Ondemand::new(0.8, t.max_freq()).unwrap();
        // 20% load from 2265 → wants 2265·0.2/0.8 ≈ 566 → snaps to 300.
        assert_eq!(g.target(&t, 0.2), MegaHertz(300.0));
        // Fully idle pins the floor.
        assert_eq!(g.target(&t, 0.0), MegaHertz(300.0));
    }

    #[test]
    fn ondemand_settles_at_a_sustainable_step() {
        let t = ladder();
        let mut g = Ondemand::new(0.8, t.max_freq()).unwrap();
        // Constant 60% load: first step down, then stable.
        let mut f = MegaHertz(0.0);
        for _ in 0..10 {
            f = g.target(&t, 0.6);
        }
        assert!(f >= t.min_freq() && f < t.max_freq());
        let settled = g.target(&t, 0.6);
        // May oscillate between adjacent steps at worst; never jumps to max.
        assert!(settled < t.max_freq());
    }

    #[test]
    fn conservative_steps_one_at_a_time() {
        let t = ladder();
        let mut g = Conservative::new(0.8, 0.2, MegaHertz(960.0)).unwrap();
        assert_eq!(g.target(&t, 0.95), MegaHertz(1574.0));
        assert_eq!(g.target(&t, 0.95), MegaHertz(2265.0));
        assert_eq!(g.target(&t, 0.95), MegaHertz(2265.0)); // clamped at top
        assert_eq!(g.target(&t, 0.05), MegaHertz(1574.0));
        assert_eq!(g.target(&t, 0.5), MegaHertz(1574.0)); // hold inside band
    }

    #[test]
    fn conservative_clamps_at_floor() {
        let t = ladder();
        let mut g = Conservative::new(0.8, 0.2, MegaHertz(300.0)).unwrap();
        assert_eq!(g.target(&t, 0.0), MegaHertz(300.0));
    }

    #[test]
    fn validation() {
        let f = MegaHertz(300.0);
        assert!(Ondemand::new(0.0, f).is_err());
        assert!(Ondemand::new(1.5, f).is_err());
        assert!(Conservative::new(0.8, 0.8, f).is_err());
        assert!(Conservative::new(0.8, -0.1, f).is_err());
        assert!(Conservative::new(0.0, 0.0, f).is_err());
    }

    #[test]
    fn displays() {
        let t = ladder();
        let mut g = Ondemand::new(0.8, t.min_freq()).unwrap();
        g.target(&t, 1.0);
        assert!(format!("{g}").contains("ondemand"));
        let c = Conservative::new(0.8, 0.2, t.min_freq()).unwrap();
        assert!(format!("{c}").contains("conservative"));
    }

    #[test]
    fn governor_driven_device_runs_cooler_at_partial_load() {
        // Integration: a device driven by ondemand at 50% load stays cooler
        // than one pinned at max with the same load.
        use crate::catalog;
        use crate::device::{CpuDemand, FrequencyMode};
        use pv_units::Seconds;

        let mut pinned = catalog::nexus5(BinId(2)).unwrap();
        let mut governed = catalog::nexus5(BinId(2)).unwrap();
        let table = governed.tables()[0].clone();
        let mut gov = Ondemand::new(0.8, table.min_freq()).unwrap();
        for _ in 0..1200 {
            pinned
                .step(
                    Seconds(0.1),
                    CpuDemand::Busy { util: 0.5 },
                    FrequencyMode::Unconstrained,
                )
                .unwrap();
            let target = gov.target(&table, 0.5);
            governed
                .step(
                    Seconds(0.1),
                    CpuDemand::Busy { util: 0.5 },
                    FrequencyMode::Fixed(target),
                )
                .unwrap();
        }
        assert!(
            governed.die_temp() < pinned.die_temp(),
            "governed {} vs pinned {}",
            governed.die_temp(),
            pinned.die_temp()
        );
    }
}
