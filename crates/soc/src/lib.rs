//! Smartphone SoC and device models.
//!
//! This crate assembles the substrates ([`pv_silicon`], [`pv_thermal`],
//! [`pv_power`], [`pv_workload`]) into complete simulated handsets — the
//! synthetic stand-ins for the paper's Nexus 5, Nexus 6, Nexus 6P, LG G5 and
//! Google Pixel:
//!
//! * [`spec`] — declarative device descriptions: clusters, OPP ladders,
//!   thermal RC parameters, throttle policies, supply characteristics.
//! * [`governor`] — demand-driven DVFS governors (`ondemand`,
//!   `conservative`) for studies beyond the paper's pinned modes.
//! * [`throttle`] — stepped thermal throttling with hysteresis, core
//!   hotplug (the Nexus 5 shuts a core at 80 °C, Fig 1), and the LG G5's
//!   input-voltage throttle (Fig 10).
//! * [`rbcpr`] — Rapid-Bridge Core Power Reduction: the closed-loop voltage
//!   trimmer SD-810-class parts use instead of static bin tables (§IV-A2).
//! * [`device`] — the time-stepped device simulator: governor picks a
//!   frequency, silicon turns it into watts, the RC network turns watts into
//!   temperature, the throttler closes the loop, and the work tally counts
//!   what the paper counts — π-loop iterations completed.
//! * [`trace`] — per-step telemetry for the Fig 4/5 timelines and the
//!   Fig 11/12 frequency/temperature distributions.
//! * [`catalog`] — calibrated models of the five handsets plus the named
//!   device personas used throughout the paper's figures.
//!
//! # Examples
//!
//! ```
//! use pv_soc::catalog;
//! use pv_soc::device::{CpuDemand, FrequencyMode};
//! use pv_silicon::binning::BinId;
//! use pv_units::Seconds;
//!
//! let mut device = catalog::nexus5(BinId(0))?;
//! // One busy minute, unconstrained.
//! let mut work = 0.0;
//! for _ in 0..600 {
//!     let report = device.step(
//!         Seconds(0.1),
//!         CpuDemand::busy(),
//!         FrequencyMode::Unconstrained,
//!     )?;
//!     work += report.work_cycles;
//! }
//! assert!(work > 0.0);
//! # Ok::<(), pv_soc::SocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod device;
pub mod faulty;
pub mod governor;
pub mod rbcpr;
pub mod spec;
pub mod throttle;
pub mod trace;

use core::fmt;

/// Error type for device construction and simulation.
#[derive(Debug)]
pub enum SocError {
    /// A specification parameter was out of domain.
    InvalidSpec(&'static str),
    /// An underlying silicon-model error.
    Silicon(pv_silicon::SiliconError),
    /// An underlying thermal-model error.
    Thermal(pv_thermal::ThermalError),
    /// An underlying power-delivery error.
    Power(pv_power::PowerError),
    /// A simulation-step argument was invalid.
    InvalidStep(&'static str),
    /// A core flapped offline mid-step (injected hotplug fault); the busy
    /// step could not run. Transient: idle steps still work, and busy steps
    /// succeed once the fault window passes.
    HotplugFlap,
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::InvalidSpec(what) => write!(f, "invalid device spec: {what}"),
            SocError::Silicon(e) => write!(f, "silicon model: {e}"),
            SocError::Thermal(e) => write!(f, "thermal model: {e}"),
            SocError::Power(e) => write!(f, "power model: {e}"),
            SocError::InvalidStep(what) => write!(f, "invalid step: {what}"),
            SocError::HotplugFlap => {
                write!(f, "core flapped offline mid-step (hotplug fault)")
            }
        }
    }
}

impl std::error::Error for SocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SocError::Silicon(e) => Some(e),
            SocError::Thermal(e) => Some(e),
            SocError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pv_silicon::SiliconError> for SocError {
    fn from(e: pv_silicon::SiliconError) -> Self {
        SocError::Silicon(e)
    }
}

impl From<pv_thermal::ThermalError> for SocError {
    fn from(e: pv_thermal::ThermalError) -> Self {
        SocError::Thermal(e)
    }
}

impl From<pv_power::PowerError> for SocError {
    fn from(e: pv_power::PowerError) -> Self {
        SocError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = SocError::InvalidSpec("bad");
        assert!(!format!("{e}").is_empty());
        assert!(e.source().is_none());
        let wrapped: SocError = pv_silicon::SiliconError::GradeOutOfRange(2.0).into();
        assert!(wrapped.source().is_some());
        let wrapped: SocError = pv_thermal::ThermalError::SelfLoop.into();
        assert!(format!("{wrapped}").contains("thermal"));
        let wrapped: SocError = pv_power::PowerError::BatteryEmpty.into();
        assert!(format!("{wrapped}").contains("power"));
    }
}
