//! A device under test driven through a fault-injection gate.
//!
//! [`FaultyDevice`] wraps a [`Device`] and applies the four device-level
//! fault kinds from an armed [`pv_faults::FaultPlan`]:
//!
//! * sensor faults ([`FaultKind::ProbeStuck`], [`FaultKind::ProbeDropout`],
//!   [`FaultKind::ProbeSpike`]) corrupt what
//!   [`Dut::try_read_sensor`] reports — the die keeps its true temperature;
//! * [`FaultKind::ThrottleGlitch`] pins busy steps to the lowest operating
//!   point (a spurious thermal-daemon trip);
//! * [`FaultKind::HotplugFlap`] refuses busy steps outright (the benchmark
//!   process lost its cores mid-run). Idle steps still succeed, so a
//!   session harness waiting out the fault in simulated time always makes
//!   progress.
//!
//! With a disarmed handle (the default) every call is a plain pass-through:
//! step reports, sensor readings, and timings are bit-identical to the
//! inner device's. That property is what lets the session harness wrap
//! *every* device unconditionally and arm faults only when asked.

use crate::device::{CpuDemand, Device, Dut, FrequencyMode, StepReport};
use crate::SocError;
use core::fmt;
use pv_faults::{FaultHandle, FaultKind};
use pv_units::{Celsius, MegaHertz, Seconds, TempDelta};

/// A [`Device`] whose sensor and scheduler pass through injected faults.
///
/// See the [module docs](self) for fault semantics.
#[derive(Debug)]
pub struct FaultyDevice {
    inner: Device,
    faults: FaultHandle,
    stuck_reading: Option<Celsius>,
}

impl FaultyDevice {
    /// Wraps `device`, gating it on `faults`. A disarmed handle makes the
    /// wrapper fully transparent.
    pub fn new(device: Device, faults: FaultHandle) -> Self {
        Self {
            inner: device,
            faults,
            stuck_reading: None,
        }
    }

    /// Shared view of the device's fault handle.
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Device {
        &self.inner
    }

    /// Mutable access to the wrapped device (bypasses the fault gate).
    pub fn inner_mut(&mut self) -> &mut Device {
        &mut self.inner
    }

    /// Unwraps back into the plain device.
    pub fn into_inner(self) -> Device {
        self.inner
    }

    /// Lowest operating point across the device's clusters — where an
    /// injected throttle glitch pins the frequency.
    fn frequency_floor(&self) -> MegaHertz {
        self.inner
            .tables()
            .iter()
            .map(|t| t.min_freq())
            .fold(MegaHertz(f64::INFINITY), |a, b| {
                if b.value() < a.value() {
                    b
                } else {
                    a
                }
            })
    }
}

impl Dut for FaultyDevice {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn die_temp(&self) -> Celsius {
        self.inner.die_temp()
    }

    fn set_ambient(&mut self, ambient: Celsius) -> Result<(), SocError> {
        self.inner.set_ambient(ambient)
    }

    fn try_read_sensor(&mut self) -> Result<Celsius, SocError> {
        if let Some(e) = self.faults.active(FaultKind::ProbeDropout) {
            self.faults
                .report_once(&e, "device sensor returned no reading");
            return Err(SocError::Thermal(pv_thermal::ThermalError::ProbeDropout));
        }
        if let Some(e) = self.faults.active(FaultKind::ProbeStuck) {
            let held = match self.stuck_reading {
                Some(held) => held,
                None => {
                    let first = self.inner.read_sensor();
                    self.stuck_reading = Some(first);
                    first
                }
            };
            self.faults
                .report_once(&e, format!("device sensor stuck at {held}"));
            return Ok(held);
        }
        self.stuck_reading = None;
        let mut reading = self.inner.read_sensor();
        if let Some(e) = self.faults.active(FaultKind::ProbeSpike) {
            reading += TempDelta(e.magnitude);
            self.faults
                .report_once(&e, format!("device sensor spiked by {:+.2} K", e.magnitude));
        }
        Ok(reading)
    }

    fn step(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
    ) -> Result<StepReport, SocError> {
        let mut report = StepReport::empty();
        self.step_into(dt, demand, mode, &mut report)?;
        Ok(report)
    }

    fn step_into(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        out: &mut StepReport,
    ) -> Result<(), SocError> {
        // A flapping core only breaks *busy* work: the housekeeping core
        // that idles the device stays up, so waiting out the fault in
        // simulated time always progresses.
        if matches!(demand, CpuDemand::Busy { .. }) {
            if let Some(e) = self.faults.active(FaultKind::HotplugFlap) {
                self.faults
                    .report_once(&e, "core flapped offline; busy step refused");
                return Err(SocError::HotplugFlap);
            }
        }
        let mut mode = mode;
        if let Some(e) = self.faults.active(FaultKind::ThrottleGlitch) {
            let floor = self.frequency_floor();
            self.faults
                .report_once(&e, format!("spurious throttle pinned frequency to {floor}"));
            mode = FrequencyMode::Fixed(floor);
        }
        self.inner.step_into(dt, demand, mode, out)
    }

    fn set_integrator(&mut self, integrator: pv_thermal::network::Integrator) {
        self.inner.set_integrator(integrator);
    }
}

impl fmt::Display for FaultyDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gate = if self.faults.is_armed() {
            "faults armed"
        } else {
            "faults disarmed"
        };
        write!(f, "{} ({gate})", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use pv_faults::{FaultEvent, FaultPlan};
    use pv_silicon::binning::BinId;

    fn device() -> Device {
        catalog::nexus5(BinId(3)).unwrap()
    }

    #[test]
    fn disarmed_wrapper_matches_plain_device() {
        let mut plain = device();
        let mut gated = FaultyDevice::new(device(), FaultHandle::disarmed());
        for i in 0..50 {
            let demand = if i % 5 == 0 {
                CpuDemand::Idle
            } else {
                CpuDemand::busy()
            };
            let a = plain
                .step(Seconds(0.1), demand, FrequencyMode::Unconstrained)
                .unwrap();
            let b = Dut::step(
                &mut gated,
                Seconds(0.1),
                demand,
                FrequencyMode::Unconstrained,
            )
            .unwrap();
            assert_eq!(a, b);
            assert_eq!(plain.read_sensor(), gated.try_read_sensor().unwrap());
        }
    }

    #[test]
    fn hotplug_flap_refuses_busy_but_not_idle() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 0.0,
            duration: 10.0,
            kind: FaultKind::HotplugFlap,
            magnitude: 0.0,
        });
        let handle = FaultHandle::armed(plan);
        let mut d = FaultyDevice::new(device(), handle.clone());
        assert!(matches!(
            Dut::step(
                &mut d,
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained
            ),
            Err(SocError::HotplugFlap)
        ));
        // Idle steps keep working, so simulated time can pass the window.
        Dut::step(
            &mut d,
            Seconds(0.5),
            CpuDemand::Idle,
            FrequencyMode::Unconstrained,
        )
        .unwrap();
        handle.advance(10.0);
        Dut::step(
            &mut d,
            Seconds(0.1),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
        )
        .unwrap();
        assert_eq!(handle.report_count(), 1);
    }

    #[test]
    fn throttle_glitch_pins_to_frequency_floor() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 0.0,
            duration: 10.0,
            kind: FaultKind::ThrottleGlitch,
            magnitude: 0.0,
        });
        let handle = FaultHandle::armed(plan);
        let mut d = FaultyDevice::new(device(), handle.clone());
        let floor = d.frequency_floor();
        let r = Dut::step(
            &mut d,
            Seconds(0.1),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
        )
        .unwrap();
        for f in &r.cluster_freqs {
            assert!(f.value() <= floor.value() + 1e-9);
        }
        // Past the window, full speed returns.
        handle.advance(20.0);
        let r = Dut::step(
            &mut d,
            Seconds(0.1),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
        )
        .unwrap();
        assert!(r.cluster_freqs.iter().any(|f| f.value() > floor.value()));
    }

    #[test]
    fn sensor_faults_gate_reads() {
        let plan = FaultPlan::empty()
            .with_event(FaultEvent {
                at: 0.0,
                duration: 5.0,
                kind: FaultKind::ProbeDropout,
                magnitude: 0.0,
            })
            .with_event(FaultEvent {
                at: 10.0,
                duration: 5.0,
                kind: FaultKind::ProbeStuck,
                magnitude: 0.0,
            })
            .with_event(FaultEvent {
                at: 20.0,
                duration: 5.0,
                kind: FaultKind::ProbeSpike,
                magnitude: 2.5,
            });
        let handle = FaultHandle::armed(plan);
        let mut d = FaultyDevice::new(device(), handle.clone());
        assert!(matches!(
            d.try_read_sensor(),
            Err(SocError::Thermal(pv_thermal::ThermalError::ProbeDropout))
        ));
        handle.advance(10.0);
        let held = d.try_read_sensor().unwrap();
        // Heat the device; the stuck sensor does not move.
        for _ in 0..20 {
            Dut::step(
                &mut d,
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
            )
            .unwrap();
        }
        assert_eq!(d.try_read_sensor().unwrap(), held);
        handle.advance(10.0);
        let spiked = d.try_read_sensor().unwrap();
        handle.advance(10.0);
        let clean = d.try_read_sensor().unwrap();
        // The spiked reading sits ~2.5 K above a clean one taken at the same
        // thermal state (reads differ only by sensor noise/quantisation).
        assert!(spiked.value() > clean.value() + 1.0);
        assert_eq!(handle.report_count(), 3);
    }
}
