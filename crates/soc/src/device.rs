//! The time-stepped device simulator.
//!
//! A [`Device`] is one physical unit: a [`DeviceSpec`] (shared across the
//! model line) plus one [`DieSample`] (this unit's silicon) plus a power
//! supply. Each [`Device::step`] advances the closed loop the paper
//! describes:
//!
//! 1. the kernel reads the (lagged, quantised) thermal sensor;
//! 2. the throttle policy picks frequency caps / core counts;
//! 3. the governor selects each cluster's operating point;
//! 4. the voltage scheme (static bin table or RBCPR) sets the rail voltage;
//! 5. the silicon model turns V/f/T into watts — with the *leakage–
//!    temperature feedback* that separates good dies from bad;
//! 6. the RC network integrates temperatures; the supply is drained;
//! 7. retired, perf-weighted cycles are credited toward π iterations.

use crate::spec::{DeviceSpec, VoltageScheme};
use crate::throttle::ThrottleState;
use crate::trace::TraceSample;
use crate::SocError;
use core::fmt;
use pv_power::PowerSupply;
use pv_silicon::binning::{voltage_bin_table, VfTable};
use pv_silicon::DieSample;
use pv_thermal::network::{Integrator, NodeId, ThermalNetwork, ThermalNetworkBuilder};
use pv_thermal::probe::Probe;
use pv_units::{Celsius, MegaHertz, Seconds, TempDelta, Volts, Watts};

/// Fast-path power-cache temperature resolution in kelvin. Die temperature
/// is snapped to this grid before the voltage trim and power model run, so
/// an unchanged operating point turns into a cache hit. 0.1 K bounds the
/// leakage error at roughly 0.25 % (β ≈ 0.025/K), well inside the
/// documented fast-path tolerance budget (DESIGN.md §11).
const POWER_CACHE_TEMP_QUANTUM: f64 = 0.1;

/// Per-cluster cap on cached (frequency, temperature-bin, load) power
/// points. Steady states touch a handful; throttle ladders a few dozen.
const POWER_CACHE_CAP: usize = 64;

/// Per-cluster cap on memoised governor-target → OPP resolutions.
const OPP_MEMO_CAP: usize = 16;

/// What the CPU cores are asked to do this step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuDemand {
    /// Deep idle: cores power-collapsed except one housekeeping core, screen
    /// off — the ACCUBENCH cooldown state.
    Idle,
    /// All cores loaded at the given per-core utilisation.
    Busy {
        /// Per-core duty cycle in `(0, 1]`.
        util: f64,
    },
}

impl CpuDemand {
    /// Fully busy on every core — the paper's π workload.
    pub fn busy() -> Self {
        CpuDemand::Busy { util: 1.0 }
    }

    /// Per-core utilisation this demand represents.
    pub fn util(&self) -> f64 {
        match self {
            CpuDemand::Idle => 0.0,
            CpuDemand::Busy { util } => *util,
        }
    }
}

/// How the governor chooses frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencyMode {
    /// Run at the highest available frequency (subject to throttling) — the
    /// paper's UNCONSTRAINED workload.
    Unconstrained,
    /// Pin all clusters at (the nearest ladder step at or below) the given
    /// frequency — the paper's FIXED-FREQUENCY workload.
    Fixed(MegaHertz),
}

/// Telemetry returned by one [`Device::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Step length.
    pub dt: Seconds,
    /// True die temperature at the end of the step.
    pub die_temp: Celsius,
    /// Sensor reading the throttler acted on this step.
    pub sensor_temp: Celsius,
    /// Case (skin) temperature — what the user's hand feels.
    pub case_temp: Celsius,
    /// Frequency each cluster ran at.
    pub cluster_freqs: Vec<MegaHertz>,
    /// Rail voltage each cluster ran at.
    pub cluster_voltages: Vec<Volts>,
    /// Cores online per cluster.
    pub active_cores: Vec<u32>,
    /// SoC rail power (cores + uncore + platform baseline).
    pub soc_power: Watts,
    /// Power drawn from the supply (rail power over regulator efficiency).
    pub supply_power: Watts,
    /// Supply terminal voltage under this step's load.
    pub supply_voltage: Volts,
    /// Perf-weighted cycles retired this step.
    pub work_cycles: f64,
    /// Whether any throttle mechanism was engaged.
    pub throttled: bool,
}

impl StepReport {
    /// An all-zero report whose `Vec`s can be filled in place by
    /// [`Device::step_into`] — the harness keeps one as reusable scratch so
    /// the session loop never reallocates telemetry.
    pub fn empty() -> Self {
        Self {
            dt: Seconds::ZERO,
            die_temp: Celsius(0.0),
            sensor_temp: Celsius(0.0),
            case_temp: Celsius(0.0),
            cluster_freqs: Vec::new(),
            cluster_voltages: Vec::new(),
            active_cores: Vec::new(),
            soc_power: Watts::ZERO,
            supply_power: Watts::ZERO,
            supply_voltage: Volts(0.0),
            work_cycles: 0.0,
            throttled: false,
        }
    }

    /// Converts to a [`TraceSample`] stamped at time `t`.
    pub fn to_sample(&self, t: Seconds) -> TraceSample {
        TraceSample {
            t,
            dt: self.dt,
            die_temp: self.die_temp,
            sensor_temp: self.sensor_temp,
            case_temp: self.case_temp,
            cluster_freqs: self.cluster_freqs.clone(),
            active_cores: self.active_cores.clone(),
            supply_power: self.supply_power,
            supply_voltage: self.supply_voltage,
            throttled: self.throttled,
        }
    }
}

/// One simulated handset.
///
/// # Examples
///
/// ```
/// use pv_soc::catalog;
/// use pv_soc::device::{CpuDemand, FrequencyMode};
/// use pv_silicon::binning::BinId;
/// use pv_units::Seconds;
///
/// let mut device = catalog::nexus5(BinId(0))?;
/// let report = device.step(Seconds(0.1), CpuDemand::busy(), FrequencyMode::Unconstrained)?;
/// assert!(report.soc_power.value() > 0.0);
/// # Ok::<(), pv_soc::SocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    // Fleet sweeps move whole devices onto executor worker threads; every
    // field (including the boxed supply, whose trait requires Send) must
    // stay Send. The assertion below turns a regression into a compile
    // error at the definition site instead of deep inside the executor.
    // Clone (via PowerSupply::clone_box for the boxed supply) is what lets
    // supervised sweeps retry a failed session on a pristine device copy.
    spec: DeviceSpec,
    die: DieSample,
    label: String,
    tables: Vec<VfTable>,
    network: ThermalNetwork,
    die_node: NodeId,
    package_node: NodeId,
    case_node: NodeId,
    ambient_node: NodeId,
    probe: Probe,
    throttle: ThrottleState,
    supply: Box<dyn PowerSupply>,
    last_supply_voltage: Volts,
    time: Seconds,
    /// True iff the network runs [`Integrator::Exponential`]. Gates the OPP
    /// memo and power cache so the Euler/RK4 reference paths stay
    /// bit-identical to the original implementation.
    fast_path: bool,
    /// Per-cluster governor-target → (ladder frequency, nominal voltage)
    /// memo, keyed on the target's bit pattern (fast path only).
    opp_memo: Vec<Vec<(u64, MegaHertz, Volts)>>,
    /// Per-cluster power cache keyed on (frequency, quantised-temperature
    /// bin, powered cores, utilisation); values are the trimmed rail
    /// voltage and modelled power computed *at the quantised temperature*,
    /// so a hit is bit-identical to recomputing (fast path only). The
    /// temperature bin in the key is what invalidates RBCPR trims when the
    /// die moves: a new bin is a miss and an exact recompute.
    power_cache: Vec<Vec<(PowerKey, Volts, Watts)>>,
}

/// Operating-point key for the fast-path power cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PowerKey {
    freq_bits: u64,
    temp_bin: i64,
    powered_bits: u64,
    util_bits: u64,
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Device>();
};

impl Device {
    /// Builds a device from a spec, a die, and a power supply.
    ///
    /// For statically binned parts the per-cluster voltage tables are
    /// generated here by [`voltage_bin_table`] from the die's grade; RBCPR
    /// parts keep the nominal ladder and trim at runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] if the spec fails validation, or a
    /// wrapped substrate error from table generation / network construction.
    pub fn new(
        spec: DeviceSpec,
        die: DieSample,
        supply: Box<dyn PowerSupply>,
        label: impl Into<String>,
        seed: u64,
    ) -> Result<Self, SocError> {
        spec.validate()?;
        let mut tables = Vec::with_capacity(spec.soc.clusters.len());
        for cluster in &spec.soc.clusters {
            let table = match spec.voltage_scheme {
                VoltageScheme::StaticTable => {
                    voltage_bin_table(&cluster.vf_slow, &cluster.vf_fast, &die)?
                }
                VoltageScheme::Rbcpr(_) => cluster.vf_slow.clone(),
            };
            tables.push(table);
        }

        let ambient = spec.initial_ambient;
        let mut builder = ThermalNetworkBuilder::new();
        let die_node = builder.add_node("die", spec.thermal.die_capacitance, ambient)?;
        let package_node =
            builder.add_node("package", spec.thermal.package_capacitance, ambient)?;
        let case_node = builder.add_node("case", spec.thermal.case_capacitance, ambient)?;
        let ambient_node = builder.add_boundary("ambient", ambient)?;
        builder.connect(die_node, package_node, spec.thermal.die_to_package)?;
        builder.connect(package_node, case_node, spec.thermal.package_to_case)?;
        builder.connect(case_node, ambient_node, spec.thermal.case_to_ambient)?;
        let network = builder.build()?;

        let mut probe = Probe::new(
            spec.thermal.sensor_tau,
            spec.thermal.sensor_noise,
            spec.thermal.sensor_quantum,
            seed,
        )?;
        probe.reset(ambient);
        let last_supply_voltage = supply.terminal_voltage(spec.idle_power);

        let n_clusters = spec.soc.clusters.len();
        Ok(Self {
            spec,
            die,
            label: label.into(),
            tables,
            network,
            die_node,
            package_node,
            case_node,
            ambient_node,
            probe,
            throttle: ThrottleState::new(),
            supply,
            last_supply_voltage,
            time: Seconds::ZERO,
            fast_path: false,
            opp_memo: vec![Vec::new(); n_clusters],
            power_cache: vec![Vec::new(); n_clusters],
        })
    }

    /// Thermal integration scheme currently in effect.
    pub fn integrator(&self) -> Integrator {
        self.network.integrator()
    }

    /// Selects the thermal integration scheme. [`Integrator::Exponential`]
    /// additionally enables the device-level fast path (OPP memoisation and
    /// the quantised-temperature power cache); Euler/RK4 run the original
    /// reference arithmetic bit-for-bit. Caches are cleared on every
    /// switch, so alternating schemes cannot leak stale entries.
    pub fn set_integrator(&mut self, integrator: Integrator) {
        self.network.set_integrator(integrator);
        self.fast_path = integrator == Integrator::Exponential;
        for m in &mut self.opp_memo {
            m.clear();
        }
        for c in &mut self.power_cache {
            c.clear();
        }
    }

    /// The device's model specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// This unit's silicon.
    pub fn die(&self) -> &DieSample {
        &self.die
    }

    /// The per-cluster voltage tables in effect.
    pub fn tables(&self) -> &[VfTable] {
        &self.tables
    }

    /// Experiment label (e.g. `"bin-0"` or `"device-363"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Simulated time elapsed.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Current true die temperature.
    pub fn die_temp(&self) -> Celsius {
        self.network.temperature(self.die_node)
    }

    /// Reads the thermal sensor the way the benchmark app's cooldown loop
    /// does (lag, noise, quantisation included).
    pub fn read_sensor(&mut self) -> Celsius {
        self.probe.read()
    }

    /// The power supply.
    pub fn supply(&self) -> &dyn PowerSupply {
        self.supply.as_ref()
    }

    /// Mutable access to the power supply (e.g. to reprogram a Monsoon).
    pub fn supply_mut(&mut self) -> &mut dyn PowerSupply {
        self.supply.as_mut()
    }

    /// Swaps the power supply (the Fig 10 battery-vs-Monsoon comparison).
    pub fn set_supply(&mut self, supply: Box<dyn PowerSupply>) {
        self.last_supply_voltage = supply.terminal_voltage(self.spec.idle_power);
        self.supply = supply;
    }

    /// Re-pins the ambient boundary (e.g. to track a
    /// [`ThermaBox`](pv_thermal::thermabox::ThermaBox) air temperature, or
    /// to sweep ambient as in Fig 2).
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`pv_thermal::ThermalError`] for non-finite input.
    pub fn set_ambient(&mut self, ambient: Celsius) -> Result<(), SocError> {
        self.network.set_boundary_temp(self.ambient_node, ambient)?;
        Ok(())
    }

    /// Resets all thermal state to `ambient` and releases all throttles —
    /// a device that has rested indefinitely.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`pv_thermal::ThermalError`] for non-finite input.
    pub fn reset_thermal(&mut self, ambient: Celsius) -> Result<(), SocError> {
        self.network.set_temperature(self.die_node, ambient)?;
        self.network.set_temperature(self.package_node, ambient)?;
        self.network.set_temperature(self.case_node, ambient)?;
        self.network.set_boundary_temp(self.ambient_node, ambient)?;
        self.probe.reset(ambient);
        self.throttle.reset();
        Ok(())
    }

    /// Advances the device by `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidStep`] for a non-positive `dt` or an
    /// out-of-range fixed frequency, and wrapped substrate errors for
    /// thermal/supply failures (e.g. a drained battery).
    pub fn step(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
    ) -> Result<StepReport, SocError> {
        let mut report = StepReport::empty();
        self.step_into(dt, demand, mode, &mut report)?;
        Ok(report)
    }

    /// As [`Device::step`], but fills a caller-owned report in place. The
    /// report's `Vec`s are cleared and re-pushed, so a reused report makes
    /// steady-state stepping allocation-free end to end.
    ///
    /// # Errors
    ///
    /// As [`Device::step`]. On error the report contents are unspecified.
    pub fn step_into(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        out: &mut StepReport,
    ) -> Result<(), SocError> {
        let heat = self.step_prepare(dt, demand, mode, out)?;
        // SoC power heats the die; regulator loss heats the board.
        self.network.step(
            dt,
            &[
                (self.die_node, heat.die),
                (self.package_node, heat.package),
            ],
        )?;
        self.step_finish(dt, out)
    }

    /// Everything [`Device::step_into`] does *before* the thermal step:
    /// validation, sensor read, throttle update, per-cluster OPP/power
    /// resolution, supply draw, and the report fields known pre-thermal.
    /// Returns the heat pair the thermal step must inject. Split out so the
    /// batched fleet path (`DeviceBatch`) can run many devices' thermal
    /// steps through one shared propagator while every other line of device
    /// logic stays this exact code — the bit-identity contract is "same
    /// lines, same order", not "equivalent arithmetic".
    pub(crate) fn step_prepare(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        out: &mut StepReport,
    ) -> Result<PendingHeat, SocError> {
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(SocError::InvalidStep("dt must be > 0"));
        }
        if let CpuDemand::Busy { util } = demand {
            if !(util > 0.0 && util <= 1.0) {
                return Err(SocError::InvalidStep("util must be in (0,1]"));
            }
        }
        if let FrequencyMode::Fixed(f) = mode {
            if !(f.value() > 0.0 && f.is_finite()) {
                return Err(SocError::InvalidStep("fixed frequency must be > 0"));
            }
        }

        let die_temp = self.network.temperature(self.die_node);
        let sensor_temp = self.probe.read();
        let decision =
            self.throttle
                .update(&self.spec.throttle, sensor_temp, self.last_supply_voltage);

        let n_clusters = self.spec.soc.clusters.len();
        out.cluster_freqs.clear();
        out.cluster_voltages.clear();
        out.active_cores.clear();
        let mut core_power = Watts::ZERO;
        let mut work_cycles = 0.0;

        // Emergency thermal shutdown suspends the workload outright.
        let idle = matches!(demand, CpuDemand::Idle) || decision.emergency_stop;

        // Fast path: the power model (and RBCPR trim) sees the die
        // temperature snapped to the cache grid, so an unchanged operating
        // point is a pure lookup and a hit is bit-identical to recomputing.
        let temp_bin = (die_temp.value() / POWER_CACHE_TEMP_QUANTUM).round() as i64;
        let power_temp = if self.fast_path {
            Celsius(temp_bin as f64 * POWER_CACHE_TEMP_QUANTUM)
        } else {
            die_temp
        };

        for ci in 0..n_clusters {
            let cluster = &self.spec.soc.clusters[ci];
            let table = &self.tables[ci];
            let max_f = table.max_freq();

            // Governor target.
            let mut target = match mode {
                FrequencyMode::Unconstrained => max_f,
                FrequencyMode::Fixed(f) => f,
            };
            // Thermal cap.
            if let Some(cap) = decision.freq_cap {
                target = MegaHertz(target.value().min(cap.value()));
            }
            // Input-voltage cap (fraction of this cluster's top frequency).
            if let Some(frac) = decision.freq_fraction {
                target = MegaHertz(target.value().min(max_f.value() * frac));
            }
            if idle {
                target = table.min_freq();
            }

            // OPP resolution: ladder snap + nominal voltage, memoised per
            // target on the fast path (the ladder is fixed per device).
            let freq = if self.fast_path {
                let memo = &mut self.opp_memo[ci];
                let bits = target.value().to_bits();
                if let Some(pos) = memo.iter().position(|e| e.0 == bits) {
                    let hit = memo[pos];
                    if pos != 0 {
                        memo.swap(pos, pos - 1);
                    }
                    hit.1
                } else {
                    let f = table
                        .highest_freq_at_or_below(target)
                        .unwrap_or_else(|| table.min_freq());
                    memo.truncate(OPP_MEMO_CAP - 1);
                    memo.insert(0, (bits, f, table.voltage_at(f)));
                    f
                }
            } else {
                table
                    .highest_freq_at_or_below(target)
                    .unwrap_or_else(|| table.min_freq())
            };

            // Hotplug floor.
            let mut cores = cluster.cores;
            if let Some(min_cores) = decision.min_cores {
                cores = cores.min(min_cores);
            }
            // Idle: all but one housekeeping core (on the most efficient
            // cluster — the last one by catalog convention) power-collapse.
            let (powered, util) = if idle {
                let keep = if ci + 1 == n_clusters { 1.0 } else { 0.0 };
                (keep, 0.02 * keep)
            } else {
                (f64::from(cores), demand.util())
            };

            // Rail voltage + modelled power. The fast path caches both per
            // (frequency, temperature bin, load) point; the temperature bin
            // in the key invalidates RBCPR trims as the die moves.
            let (v, power) = if self.fast_path {
                let key = PowerKey {
                    freq_bits: freq.value().to_bits(),
                    temp_bin,
                    powered_bits: powered.to_bits(),
                    util_bits: util.to_bits(),
                };
                let cache = &mut self.power_cache[ci];
                if let Some(pos) = cache.iter().position(|e| e.0 == key) {
                    let hit = cache[pos];
                    if pos != 0 {
                        cache.swap(pos, pos - 1);
                    }
                    (hit.1, hit.2)
                } else {
                    let nominal_v = table.voltage_at(freq);
                    let v = match &self.spec.voltage_scheme {
                        VoltageScheme::StaticTable => nominal_v,
                        VoltageScheme::Rbcpr(rb) => rb.trim(nominal_v, &self.die, power_temp),
                    };
                    let p = cluster.power.total_power(
                        &self.die,
                        v,
                        freq,
                        power_temp,
                        powered * util,
                        powered,
                    );
                    cache.truncate(POWER_CACHE_CAP - 1);
                    cache.insert(0, (key, v, p));
                    (v, p)
                }
            } else {
                let nominal_v = table.voltage_at(freq);
                let v = match &self.spec.voltage_scheme {
                    VoltageScheme::StaticTable => nominal_v,
                    VoltageScheme::Rbcpr(rb) => rb.trim(nominal_v, &self.die, die_temp),
                };
                let p = cluster.power.total_power(
                    &self.die,
                    v,
                    freq,
                    die_temp,
                    powered * util,
                    powered,
                );
                (v, p)
            };
            core_power += power;

            if !idle {
                work_cycles += powered * util * freq.to_hz() * cluster.perf_weight * dt.value();
            }

            out.cluster_freqs.push(freq);
            out.cluster_voltages.push(v);
            out.active_cores
                .push(if idle { powered as u32 } else { cores });
        }

        let uncore = if idle {
            self.spec.soc.uncore_power * 0.2
        } else {
            self.spec.soc.uncore_power
        };
        let soc_power = core_power + uncore + self.spec.idle_power;
        let supply_power = soc_power / self.spec.regulator_efficiency;
        let regulator_loss = supply_power - soc_power;

        let supply_voltage = self.supply.terminal_voltage(supply_power);
        self.last_supply_voltage = supply_voltage;
        self.supply.draw(supply_power, dt)?;

        out.dt = dt;
        out.sensor_temp = sensor_temp;
        out.soc_power = soc_power;
        out.supply_power = supply_power;
        out.supply_voltage = supply_voltage;
        out.work_cycles = work_cycles;
        out.throttled = decision.is_throttled();
        Ok(PendingHeat {
            die: soc_power,
            package: regulator_loss,
        })
    }

    /// Everything [`Device::step_into`] does *after* the thermal step:
    /// probe observation, time accounting, and the post-thermal report
    /// fields. See [`Device::step_prepare`].
    pub(crate) fn step_finish(&mut self, dt: Seconds, out: &mut StepReport) -> Result<(), SocError> {
        let new_die_temp = self.network.temperature(self.die_node);
        self.probe.observe(new_die_temp, dt)?;
        self.time += dt;
        out.die_temp = new_die_temp;
        out.case_temp = self.network.temperature(self.case_node);
        Ok(())
    }

    /// Shared thermal-network view for the batch kernel.
    pub(crate) fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    /// Mutable thermal-network access for the batch kernel's scatter and
    /// propagator fetch.
    pub(crate) fn network_mut(&mut self) -> &mut ThermalNetwork {
        &mut self.network
    }

    /// The (die, package) heat-injection nodes, in the order
    /// [`Device::step_into`] passes them to the thermal step.
    pub(crate) fn heat_nodes(&self) -> (NodeId, NodeId) {
        (self.die_node, self.package_node)
    }
}

/// The heat pair a prepared step injects into the thermal network:
/// SoC power into the die, regulator loss into the package/board.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingHeat {
    pub(crate) die: Watts,
    pub(crate) package: Watts,
}

impl Device {
    /// Drives the device for `total` time in steps of `dt`, returning the
    /// perf-weighted cycles retired and the supply energy consumed.
    ///
    /// Convenience over a manual [`step`](Self::step) loop for examples and
    /// quick experiments; the harness in `accubench` remains the
    /// full-protocol driver.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidStep`] for non-positive durations and
    /// propagates any step error.
    ///
    /// # Examples
    ///
    /// ```
    /// use pv_soc::catalog;
    /// use pv_soc::device::{CpuDemand, FrequencyMode};
    /// use pv_silicon::binning::BinId;
    /// use pv_units::Seconds;
    ///
    /// let mut device = catalog::nexus5(BinId(0))?;
    /// let (work, energy) = device.run_for(
    ///     Seconds(10.0),
    ///     Seconds(0.1),
    ///     CpuDemand::busy(),
    ///     FrequencyMode::Unconstrained,
    /// )?;
    /// assert!(work > 0.0);
    /// assert!(energy.value() > 0.0);
    /// # Ok::<(), pv_soc::SocError>(())
    /// ```
    pub fn run_for(
        &mut self,
        total: Seconds,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
    ) -> Result<(f64, pv_units::Joules), SocError> {
        if !(total.value() > 0.0 && total.is_finite()) {
            return Err(SocError::InvalidStep("total must be > 0"));
        }
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(SocError::InvalidStep("dt must be > 0"));
        }
        let mut work = 0.0;
        let mut energy = pv_units::Joules::ZERO;
        let mut remaining = total.value();
        while remaining > 0.0 {
            let step = Seconds(remaining.min(dt.value()));
            let r = self.step(step, demand, mode)?;
            work += r.work_cycles;
            energy += r.supply_power * step;
            remaining -= step.value();
        }
        Ok((work, energy))
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] on {} ({})",
            self.spec.model, self.label, self.spec.soc.name, self.die
        )
    }
}

/// The device-under-test surface the session harness drives.
///
/// [`Device`] implements it directly (a clean, fault-free unit).
/// [`FaultyDevice`](crate::faulty::FaultyDevice) implements it through a
/// fault-injection gate. The harness is generic over this trait, so every
/// experiment runs unchanged against either.
///
/// Unlike [`Device::read_sensor`], sensor reads here are fallible: a faulty
/// unit's probe can transiently drop out mid-cooldown, and the harness must
/// see that as an error it can retry rather than a bogus temperature.
pub trait Dut {
    /// Human-readable per-unit label.
    fn label(&self) -> &str;

    /// Current true die temperature (for traces and gates, not visible to
    /// the simulated benchmark app).
    fn die_temp(&self) -> Celsius;

    /// Re-pins the ambient boundary (see [`Device::set_ambient`]).
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`pv_thermal::ThermalError`] for non-finite input.
    fn set_ambient(&mut self, ambient: Celsius) -> Result<(), SocError>;

    /// Reads the thermal sensor the way the benchmark app does.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Thermal`] ([`pv_thermal::ThermalError::ProbeDropout`])
    /// when an injected dropout makes the sensor unreadable.
    fn try_read_sensor(&mut self) -> Result<Celsius, SocError>;

    /// Advances the device by `dt` (see [`Device::step`]).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidStep`] for bad arguments, wrapped
    /// substrate errors, or [`SocError::HotplugFlap`] when an injected flap
    /// refuses a busy step.
    fn step(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
    ) -> Result<StepReport, SocError>;

    /// As [`Dut::step`], but fills a caller-owned report in place so a hot
    /// driver loop can reuse one report's allocations. The default simply
    /// delegates to [`Dut::step`]; [`Device`] overrides it with a true
    /// in-place implementation.
    ///
    /// # Errors
    ///
    /// As [`Dut::step`]. On error the report contents are unspecified.
    fn step_into(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        out: &mut StepReport,
    ) -> Result<(), SocError> {
        *out = self.step(dt, demand, mode)?;
        Ok(())
    }

    /// Selects the thermal integration scheme (see
    /// [`Device::set_integrator`]). The default is a no-op so simple test
    /// doubles keep compiling; real DUTs forward to their device.
    fn set_integrator(&mut self, integrator: Integrator) {
        let _ = integrator;
    }
}

impl Dut for Device {
    fn label(&self) -> &str {
        Device::label(self)
    }

    fn die_temp(&self) -> Celsius {
        Device::die_temp(self)
    }

    fn set_ambient(&mut self, ambient: Celsius) -> Result<(), SocError> {
        Device::set_ambient(self, ambient)
    }

    fn try_read_sensor(&mut self) -> Result<Celsius, SocError> {
        Ok(self.read_sensor())
    }

    fn step(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
    ) -> Result<StepReport, SocError> {
        Device::step(self, dt, demand, mode)
    }

    fn step_into(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        out: &mut StepReport,
    ) -> Result<(), SocError> {
        Device::step_into(self, dt, demand, mode, out)
    }

    fn set_integrator(&mut self, integrator: Integrator) {
        Device::set_integrator(self, integrator);
    }
}

// The case node handle: stored via a small extension because construction
// happens inside `new`. Kept as a private field accessor pattern.
impl Device {
    /// Current case (skin) temperature — what the user's hand feels.
    pub fn case_temp(&self) -> Celsius {
        self.network.temperature(self.case_node)
    }

    /// Current package/board temperature.
    pub fn package_temp(&self) -> Celsius {
        self.network.temperature(self.package_node)
    }

    /// Temperature headroom before the first thermal trip, based on the
    /// current *die* temperature (negative once past the trip).
    pub fn headroom(&self) -> Option<TempDelta> {
        self.spec
            .throttle
            .steps
            .first()
            .map(|s| s.trip - self.die_temp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use pv_power::Monsoon;
    use pv_silicon::binning::BinId;

    fn n5(bin: u8) -> Device {
        catalog::nexus5(BinId(bin)).unwrap()
    }

    #[test]
    fn busy_device_heats_up_and_does_work() {
        let mut d = n5(0);
        let t0 = d.die_temp();
        let mut work = 0.0;
        for _ in 0..300 {
            let r = d
                .step(
                    Seconds(0.1),
                    CpuDemand::busy(),
                    FrequencyMode::Unconstrained,
                )
                .unwrap();
            work += r.work_cycles;
            assert!(r.soc_power > Watts(0.0));
        }
        assert!(d.die_temp() > t0 + TempDelta(5.0));
        assert!(work > 0.0);
        assert!(d.time() > Seconds(29.9));
    }

    #[test]
    fn idle_device_cools_back_down() {
        let mut d = n5(0);
        for _ in 0..600 {
            d.step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
            )
            .unwrap();
        }
        let hot = d.die_temp();
        for _ in 0..6000 {
            d.step(Seconds(0.5), CpuDemand::Idle, FrequencyMode::Unconstrained)
                .unwrap();
        }
        assert!(d.die_temp() < hot - TempDelta(10.0));
        // Near ambient after 50 idle minutes.
        assert!(d.die_temp().value() < 35.0, "idle temp {}", d.die_temp());
    }

    #[test]
    fn sustained_load_eventually_throttles() {
        let mut d = n5(3);
        let mut ever_throttled = false;
        let mut min_freq = f64::INFINITY;
        for _ in 0..6000 {
            let r = d
                .step(
                    Seconds(0.1),
                    CpuDemand::busy(),
                    FrequencyMode::Unconstrained,
                )
                .unwrap();
            ever_throttled |= r.throttled;
            min_freq = min_freq.min(r.cluster_freqs[0].value());
        }
        assert!(ever_throttled, "device never throttled under 10 min load");
        assert!(min_freq < 2265.0, "frequency never dropped");
        // Die must not run away past the policy's deepest trip by much.
        assert!(d.die_temp().value() < 95.0, "runaway: {}", d.die_temp());
    }

    #[test]
    fn fixed_low_frequency_never_throttles() {
        let mut d = n5(3);
        for _ in 0..3000 {
            let r = d
                .step(
                    Seconds(0.1),
                    CpuDemand::busy(),
                    FrequencyMode::Fixed(MegaHertz(960.0)),
                )
                .unwrap();
            assert!(!r.throttled, "throttled at fixed 960 MHz");
            assert_eq!(r.cluster_freqs[0], MegaHertz(960.0));
        }
    }

    #[test]
    fn fixed_mode_snaps_to_ladder() {
        let mut d = n5(0);
        let r = d
            .step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(1000.0)),
            )
            .unwrap();
        assert_eq!(r.cluster_freqs[0], MegaHertz(960.0));
    }

    #[test]
    fn leakier_bin_draws_more_power_at_same_operating_point() {
        let mut slow = n5(0);
        let mut fast = n5(3);
        let mode = FrequencyMode::Fixed(MegaHertz(960.0));
        let mut p_slow = Watts::ZERO;
        let mut p_fast = Watts::ZERO;
        for _ in 0..1200 {
            p_slow = slow
                .step(Seconds(0.1), CpuDemand::busy(), mode)
                .unwrap()
                .soc_power;
            p_fast = fast
                .step(Seconds(0.1), CpuDemand::busy(), mode)
                .unwrap()
                .soc_power;
        }
        assert!(
            p_fast > p_slow,
            "bin-3 ({p_fast}) should out-consume bin-0 ({p_slow})"
        );
    }

    #[test]
    fn work_scales_with_frequency() {
        let mut d = n5(0);
        let low = d
            .step(
                Seconds(1.0),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(300.0)),
            )
            .unwrap()
            .work_cycles;
        let mut d = n5(0);
        let high = d
            .step(
                Seconds(1.0),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(960.0)),
            )
            .unwrap()
            .work_cycles;
        assert!((high / low - 3.2).abs() < 1e-9);
    }

    #[test]
    fn reset_thermal_restores_cold_state() {
        let mut d = n5(0);
        for _ in 0..1000 {
            d.step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
            )
            .unwrap();
        }
        d.reset_thermal(Celsius(26.0)).unwrap();
        assert_eq!(d.die_temp(), Celsius(26.0));
        assert_eq!(d.case_temp(), Celsius(26.0));
        assert_eq!(d.package_temp(), Celsius(26.0));
    }

    #[test]
    fn ambient_shift_propagates() {
        let mut d = n5(0);
        d.set_ambient(Celsius(40.0)).unwrap();
        for _ in 0..36_000 {
            d.step(Seconds(0.5), CpuDemand::Idle, FrequencyMode::Unconstrained)
                .unwrap();
        }
        assert!(
            d.die_temp().value() > 38.0,
            "die should drift toward hot ambient: {}",
            d.die_temp()
        );
    }

    #[test]
    fn step_validation() {
        let mut d = n5(0);
        assert!(d
            .step(
                Seconds(0.0),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained
            )
            .is_err());
        assert!(d
            .step(
                Seconds(0.1),
                CpuDemand::Busy { util: 0.0 },
                FrequencyMode::Unconstrained
            )
            .is_err());
        assert!(d
            .step(
                Seconds(0.1),
                CpuDemand::Busy { util: 1.5 },
                FrequencyMode::Unconstrained
            )
            .is_err());
        assert!(d
            .step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(0.0))
            )
            .is_err());
    }

    #[test]
    fn supply_swap_changes_terminal_voltage() {
        let mut d = n5(0);
        let v1 = d.supply().terminal_voltage(Watts(1.0));
        d.set_supply(Box::new(Monsoon::new(Volts(9.0)).unwrap()));
        let v2 = d.supply().terminal_voltage(Watts(1.0));
        assert_ne!(v1, v2);
        assert_eq!(v2, Volts(9.0));
    }

    #[test]
    fn report_converts_to_trace_sample() {
        let mut d = n5(0);
        let r = d
            .step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
            )
            .unwrap();
        let s = r.to_sample(Seconds(0.1));
        assert_eq!(s.dt, r.dt);
        assert_eq!(s.cluster_freqs, r.cluster_freqs);
        assert_eq!(s.supply_power, r.supply_power);
    }

    #[test]
    fn display_mentions_model_and_label() {
        let d = n5(2);
        let s = format!("{d}");
        assert!(s.contains("Nexus 5"));
        assert!(s.contains("bin-2"));
    }

    #[test]
    fn headroom_shrinks_as_device_heats() {
        let mut d = n5(0);
        let h0 = d.headroom().unwrap();
        for _ in 0..600 {
            d.step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
            )
            .unwrap();
        }
        assert!(d.headroom().unwrap() < h0);
    }
}
