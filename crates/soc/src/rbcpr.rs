//! Rapid-Bridge Core Power Reduction (RBCPR).
//!
//! From the paper (§IV-A2): SD-810-class big.LITTLE parts "implement a
//! hardware block named Rapid-Bridge Core Power Reduction that provides a
//! feedback loop to optimize the voltage settings for each core. These
//! runtime voltage settings are determined based on the binning process and
//! current temperature of the chip" — which is why no static bin table can
//! be extracted from those kernels.
//!
//! The model: starting from the nominal ladder voltage `V₀(f)`, the loop
//! removes margin for fast silicon and adds margin for slow silicon, plus a
//! small temperature-coefficient term (hotter silicon switches faster, so
//! margin can shrink):
//!
//! ```text
//! V(f) = V₀(f) − k_grade·(grade − 0.5) − k_temp·(T − T_ref)
//! ```
//!
//! clamped to a configurable floor fraction of `V₀(f)` so the loop never
//! trims below retention limits.

use crate::SocError;
use pv_silicon::DieSample;
use pv_units::{Celsius, Volts};

/// Parameters of the RBCPR voltage-trim loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbcprSpec {
    /// Volts removed per unit of grade above the median die (and added
    /// below it). A value of 0.15 spans ±75 mV across the population.
    pub volts_per_grade: f64,
    /// Volts removed per kelvin above the reference temperature.
    pub volts_per_kelvin: f64,
    /// Reference temperature of the temperature compensation term.
    pub t_ref: Celsius,
    /// Lowest fraction of the nominal voltage the loop may trim to.
    pub floor_fraction: f64,
}

impl RbcprSpec {
    /// Creates a validated spec.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] for negative coefficients, a
    /// non-finite reference temperature, or a floor fraction outside (0, 1].
    pub fn new(
        volts_per_grade: f64,
        volts_per_kelvin: f64,
        t_ref: Celsius,
        floor_fraction: f64,
    ) -> Result<Self, SocError> {
        if !(volts_per_grade >= 0.0 && volts_per_grade.is_finite()) {
            return Err(SocError::InvalidSpec("volts_per_grade must be >= 0"));
        }
        if !(volts_per_kelvin >= 0.0 && volts_per_kelvin.is_finite()) {
            return Err(SocError::InvalidSpec("volts_per_kelvin must be >= 0"));
        }
        if !t_ref.is_finite() {
            return Err(SocError::InvalidSpec("t_ref non-finite"));
        }
        if !(floor_fraction > 0.0 && floor_fraction <= 1.0) {
            return Err(SocError::InvalidSpec("floor_fraction not in (0,1]"));
        }
        Ok(Self {
            volts_per_grade,
            volts_per_kelvin,
            t_ref,
            floor_fraction,
        })
    }

    /// The runtime voltage for a die at temperature `temp`, given the
    /// nominal ladder voltage `nominal`.
    pub fn trim(&self, nominal: Volts, die: &DieSample, temp: Celsius) -> Volts {
        let grade_term = self.volts_per_grade * (die.grade() - 0.5);
        let temp_term = self.volts_per_kelvin * (temp - self.t_ref).value();
        let trimmed = nominal.value() - grade_term - temp_term;
        Volts(trimmed.max(nominal.value() * self.floor_fraction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_silicon::ProcessNode;

    fn spec() -> RbcprSpec {
        RbcprSpec::new(0.12, 0.0006, Celsius(26.0), 0.85).unwrap()
    }

    fn die(grade: f64) -> DieSample {
        DieSample::from_grade(ProcessNode::PLANAR_20NM, grade).unwrap()
    }

    #[test]
    fn median_die_at_reference_gets_nominal_voltage() {
        let v = spec().trim(Volts(1.0), &die(0.5), Celsius(26.0));
        assert!((v.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_silicon_is_trimmed_down() {
        let fast = spec().trim(Volts(1.0), &die(0.9), Celsius(26.0));
        let slow = spec().trim(Volts(1.0), &die(0.1), Celsius(26.0));
        assert!(fast < Volts(1.0));
        assert!(slow > Volts(1.0));
        // Symmetric around the median: ±0.4 grade × 0.12 V = ±48 mV.
        assert!((slow.value() - fast.value() - 0.096).abs() < 1e-12);
    }

    #[test]
    fn hot_silicon_is_trimmed_down() {
        let cold = spec().trim(Volts(1.0), &die(0.5), Celsius(26.0));
        let hot = spec().trim(Volts(1.0), &die(0.5), Celsius(76.0));
        assert!(hot < cold);
        assert!((cold.value() - hot.value() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn floor_prevents_undervolting() {
        let s = RbcprSpec::new(2.0, 0.0, Celsius(26.0), 0.9).unwrap();
        let v = s.trim(Volts(1.0), &die(0.99), Celsius(26.0));
        assert!((v.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(RbcprSpec::new(-0.1, 0.0, Celsius(26.0), 0.9).is_err());
        assert!(RbcprSpec::new(0.1, -0.1, Celsius(26.0), 0.9).is_err());
        assert!(RbcprSpec::new(0.1, 0.0, Celsius(f64::NAN), 0.9).is_err());
        assert!(RbcprSpec::new(0.1, 0.0, Celsius(26.0), 0.0).is_err());
        assert!(RbcprSpec::new(0.1, 0.0, Celsius(26.0), 1.1).is_err());
    }
}
