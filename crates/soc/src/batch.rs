//! Batched lockstep device stepping for fleet sweeps.
//!
//! A [`DeviceBatch`] owns a worker's chunk of same-model devices and steps
//! them through one protocol in lockstep. Per step it runs every lane's
//! [`Device`] logic (sensor, throttle, OPP, power, supply) through the
//! *exact* scalar code — `Device::step_prepare` / `Device::step_finish`
//! are the unmodified halves of `Device::step_into` — and hoists only the
//! thermal integration into one shared-propagator
//! [`ThermalBatch`] mat-mat when every
//! lane runs [`Integrator::Exponential`] on the same topology archetype.
//! Lanes with differing topologies or a non-exponential integrator fall
//! back to per-lane scalar stepping inside the same driver: slower, still
//! batched at the session level, still bit-identical.
//!
//! **Eviction contract:** any lane that fails a step is reported to the
//! caller and simply skipped from then on (via the `active` mask). The
//! caller re-runs the pristine original device through the scalar
//! supervised path, which reproduces the failure — and its exact bytes —
//! by definition. The batch path therefore only ever has to be
//! bit-identical for *clean* steps, which it is by construction.
//!
//! [`BatchReport`] is the structure-of-arrays report scratch: one
//! [`StepReport`] per lane, allocated once per worker and refilled in
//! place every step, extending the allocation-free steady-state contract
//! to the batched path.

use crate::device::{CpuDemand, Device, FrequencyMode, StepReport};
use crate::SocError;
use pv_thermal::batch::ThermalBatch;
use pv_thermal::network::Integrator;
use pv_units::Seconds;

/// Per-lane step reports, allocated once and refilled in place each step.
///
/// `StepReport`'s internal `Vec`s keep their capacity across refills, so
/// after the first step a `BatchReport` never allocates again.
#[derive(Debug, Clone)]
pub struct BatchReport {
    reports: Vec<StepReport>,
}

impl BatchReport {
    /// Allocates `width` empty lane reports.
    pub fn new(width: usize) -> Self {
        Self {
            reports: (0..width).map(|_| StepReport::empty()).collect(),
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.reports.len()
    }

    /// Lane `i`'s report from the most recent step it participated in.
    pub fn lane(&self, i: usize) -> &StepReport {
        &self.reports[i]
    }

    /// Mutable lane report (the batch driver writes through this).
    pub fn lane_mut(&mut self, i: usize) -> &mut StepReport {
        &mut self.reports[i]
    }
}

/// A chunk of devices stepped in lockstep. See the [module docs](self).
#[derive(Debug)]
pub struct DeviceBatch {
    lanes: Vec<Device>,
    thermal: ThermalBatch,
    /// Slot→lane map for the current step: lanes that prepared cleanly
    /// are compacted into the leading thermal columns, so the kernel only
    /// sweeps live lanes. Allocated once (no per-step allocation).
    slots: Vec<usize>,
    /// True when every lane shares one topology archetype — the
    /// precondition for the fused shared-propagator mat-mat. Re-checked
    /// against the integrator at each step, since integrators can change
    /// between protocol iterations.
    same_archetype: bool,
}

impl DeviceBatch {
    /// Takes ownership of a chunk of devices as batch lanes. Archetype
    /// grouping is detected here (structural-signature equality); a mixed
    /// chunk still works, it just steps thermally lane by lane.
    pub fn new(lanes: Vec<Device>) -> Self {
        let same_archetype = lanes
            .windows(2)
            .all(|w| w[0].network().structural_signature() == w[1].network().structural_signature());
        let nodes = lanes.first().map_or(0, |d| d.network().node_count());
        let width = lanes.len();
        Self {
            lanes,
            thermal: ThermalBatch::new(width, nodes),
            slots: Vec::with_capacity(width),
            same_archetype,
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Immutable lane access.
    pub fn lane(&self, i: usize) -> &Device {
        &self.lanes[i]
    }

    /// Mutable lane access (per-lane protocol actions: ambient, sensor
    /// polls, integrator selection).
    pub fn lane_mut(&mut self, i: usize) -> &mut Device {
        &mut self.lanes[i]
    }

    /// Disassembles the batch back into its devices.
    pub fn into_lanes(self) -> Vec<Device> {
        self.lanes
    }

    /// Whether the next step would take the fused mat-mat path (all lanes
    /// one archetype, all on the exponential integrator).
    pub fn fused(&self) -> bool {
        self.same_archetype
            && self
                .lanes
                .iter()
                .all(|d| d.integrator() == Integrator::Exponential)
    }

    /// Steps every lane with `active[lane]` set, all with the same
    /// `(dt, demand, mode)` — the lockstep protocol round. Lane `i`'s
    /// report lands in `reports.lane(i)`; inactive lanes keep their
    /// previous contents. Per-lane failures are appended to `failures`
    /// (cleared first); failed lanes' devices are left in an unspecified
    /// state and must be evicted by the caller. Lanes that do not fail are
    /// stepped bit-identically to [`Device::step_into`].
    ///
    /// # Panics
    ///
    /// Panics if `active` or `reports` are narrower than the batch.
    pub fn step_active(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        active: &[bool],
        reports: &mut BatchReport,
        failures: &mut Vec<(usize, SocError)>,
    ) {
        assert!(active.len() >= self.lanes.len());
        assert!(reports.width() >= self.lanes.len());
        failures.clear();
        if self.fused() {
            self.step_fused(dt, demand, mode, active, reports, failures);
        } else {
            for (lane, device) in self.lanes.iter_mut().enumerate() {
                if !active[lane] {
                    continue;
                }
                if let Err(e) = device.step_into(dt, demand, mode, reports.lane_mut(lane)) {
                    failures.push((lane, e));
                }
            }
        }
    }

    /// The fused path: per-lane prepare (scalar code), one shared-propagator
    /// mat-mat across all prepared lanes, per-lane finish (scalar code).
    fn step_fused(
        &mut self,
        dt: Seconds,
        demand: CpuDemand,
        mode: FrequencyMode,
        active: &[bool],
        reports: &mut BatchReport,
        failures: &mut Vec<(usize, SocError)>,
    ) {
        let Self {
            lanes,
            thermal,
            slots,
            ..
        } = self;
        slots.clear();
        for (lane, device) in lanes.iter_mut().enumerate() {
            if !active[lane] {
                continue;
            }
            match device.step_prepare(dt, demand, mode, reports.lane_mut(lane)) {
                Ok(heat) => {
                    let (die, package) = device.heat_nodes();
                    let slot = slots.len();
                    thermal.gather(slot, device.network());
                    // Node validity (range, non-boundary) is a
                    // construction-time property of the device; only the
                    // per-step finiteness check remains on the hot path.
                    match thermal.set_heat_pair(slot, (die, heat.die), (package, heat.package)) {
                        Ok(()) => slots.push(lane),
                        Err(e) => failures.push((lane, e.into())),
                    }
                }
                Err(e) => failures.push((lane, e)),
            }
        }
        if slots.is_empty() {
            return;
        }
        // One propagator serves every lane (same archetype ⇒ bit-identical
        // matrices); fetching it through a lane's network keeps the local
        // and shared caches in the same state a scalar step would. The
        // kernel sweeps only the compacted live columns.
        let first = slots[0];
        let kernel = lanes[first]
            .network_mut()
            .exponential_propagator(dt)
            .and_then(|prop| thermal.step_cols(&prop, slots.len()));
        if let Err(e) = kernel {
            // Batch-level kernel failure (cannot happen for validated
            // same-archetype lanes): evict every prepared lane; the scalar
            // rerun decides each one's true fate.
            for &lane in slots.iter() {
                failures.push((lane, e.clone().into()));
            }
            return;
        }
        for (slot, &lane) in slots.iter().enumerate() {
            let device = &mut lanes[lane];
            thermal.scatter(slot, device.network_mut());
            if let Err(e) = device.step_finish(dt, reports.lane_mut(lane)) {
                failures.push((lane, e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn fleet(n: usize) -> Vec<Device> {
        (0..n)
            .map(|i| {
                let grade = 0.1 + 0.8 * (i as f64) / (n.max(2) - 1) as f64;
                catalog::pixel(grade, format!("pixel-batch-{i:02}")).unwrap()
            })
            .collect()
    }

    fn demand_for(step: usize) -> CpuDemand {
        if step % 7 < 4 {
            CpuDemand::busy()
        } else {
            CpuDemand::Idle
        }
    }

    #[test]
    fn batched_device_stepping_matches_scalar_bitwise() {
        for integrator in [Integrator::Euler, Integrator::Rk4, Integrator::Exponential] {
            for &width in &[1usize, 3, 8] {
                let mut scalar = fleet(width);
                let mut batch = DeviceBatch::new(fleet(width));
                for d in &mut scalar {
                    d.set_integrator(integrator);
                }
                for i in 0..width {
                    batch.lane_mut(i).set_integrator(integrator);
                }
                assert_eq!(batch.fused(), integrator == Integrator::Exponential);
                let active = vec![true; width];
                let mut reports = BatchReport::new(width);
                let mut failures = Vec::new();
                let mut scalar_report = StepReport::empty();
                for step in 0..200 {
                    let dt = if step % 3 == 0 {
                        Seconds(0.1)
                    } else {
                        Seconds(0.5)
                    };
                    let demand = demand_for(step);
                    batch.step_active(
                        dt,
                        demand,
                        FrequencyMode::Unconstrained,
                        &active,
                        &mut reports,
                        &mut failures,
                    );
                    assert!(failures.is_empty(), "{integrator:?}: {failures:?}");
                    for (lane, device) in scalar.iter_mut().enumerate() {
                        device
                            .step_into(dt, demand, FrequencyMode::Unconstrained, &mut scalar_report)
                            .unwrap();
                        assert_eq!(
                            &scalar_report,
                            reports.lane(lane),
                            "step {step} lane {lane} {integrator:?} width {width}"
                        );
                        assert_eq!(
                            device.die_temp().value().to_bits(),
                            batch.lane(lane).die_temp().value().to_bits()
                        );
                    }
                }
                // Sensor state must have advanced identically too.
                for (lane, device) in scalar.iter_mut().enumerate() {
                    assert_eq!(device.read_sensor(), batch.lane_mut(lane).read_sensor());
                }
            }
        }
    }

    #[test]
    fn inactive_lane_is_left_untouched() {
        let mut batch = DeviceBatch::new(fleet(4));
        let mut active = vec![true; 4];
        let mut reports = BatchReport::new(4);
        let mut failures = Vec::new();
        for i in 0..4 {
            batch.lane_mut(i).set_integrator(Integrator::Exponential);
        }
        for step in 0..50 {
            if step == 10 {
                active[2] = false;
            }
            batch.step_active(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
                &active,
                &mut reports,
                &mut failures,
            );
            assert!(failures.is_empty());
        }
        // The frozen lane's clock stopped at eviction; the rest kept going.
        assert!((batch.lane(2).time().value() - 1.0).abs() < 1e-9);
        assert!((batch.lane(0).time().value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_archetypes_fall_back_to_per_lane_thermal() {
        use pv_silicon::binning::BinId;
        let mut lanes = fleet(2);
        lanes.push(catalog::nexus5(BinId(2)).unwrap());
        let mut scalar: Vec<Device> = fleet(2);
        scalar.push(catalog::nexus5(BinId(2)).unwrap());
        let mut batch = DeviceBatch::new(lanes);
        for (i, device) in scalar.iter_mut().enumerate() {
            batch.lane_mut(i).set_integrator(Integrator::Exponential);
            device.set_integrator(Integrator::Exponential);
        }
        assert!(!batch.fused(), "mixed topologies must not fuse");
        let active = vec![true; 3];
        let mut reports = BatchReport::new(3);
        let mut failures = Vec::new();
        let mut scalar_report = StepReport::empty();
        for _ in 0..100 {
            batch.step_active(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Unconstrained,
                &active,
                &mut reports,
                &mut failures,
            );
            assert!(failures.is_empty());
            for (lane, device) in scalar.iter_mut().enumerate() {
                device
                    .step_into(
                        Seconds(0.1),
                        CpuDemand::busy(),
                        FrequencyMode::Unconstrained,
                        &mut scalar_report,
                    )
                    .unwrap();
                assert_eq!(&scalar_report, reports.lane(lane));
            }
        }
    }

    #[test]
    fn failed_lane_reports_and_others_continue() {
        let mut batch = DeviceBatch::new(fleet(3));
        for i in 0..3 {
            batch.lane_mut(i).set_integrator(Integrator::Exponential);
        }
        let active = vec![true; 3];
        let mut reports = BatchReport::new(3);
        let mut failures = Vec::new();
        // An invalid dt fails every active lane the same way scalar
        // stepping would; the reports stay untouched.
        batch.step_active(
            Seconds(-1.0),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
            &active,
            &mut reports,
            &mut failures,
        );
        assert_eq!(failures.len(), 3);
        assert!(failures
            .iter()
            .all(|(_, e)| matches!(e, SocError::InvalidStep(_))));
    }
}
