//! Bit-identity tests for the device-level fast path: the OPP memo and
//! the quantised-temperature power cache must be pure lookups — a cache
//! hit has to reproduce, bit for bit, what an exact recompute at the
//! quantised temperature would produce.
//!
//! The trick: [`pv_soc::device::Device::set_integrator`] clears both
//! caches on every call. Stepping a twin device that re-selects the
//! integrator before *every* step forces a cache miss (and therefore an
//! exact recompute) at each step, while the device under test runs with
//! warm caches. Identical telemetry across the whole trajectory proves
//! hits and recomputes are interchangeable.

use pv_soc::catalog;
use pv_soc::device::{CpuDemand, Device, FrequencyMode, StepReport};
use pv_soc::spec::VoltageScheme;
use pv_thermal::network::Integrator;
use pv_units::{Celsius, MegaHertz, Seconds};

/// A trajectory that exercises the interesting operating points: cold
/// busy ramp (temperature bins sweep upward, throttle steps engage),
/// idle recovery, and fixed-frequency pinning (distinct OPP targets).
fn trajectory() -> Vec<(Seconds, CpuDemand, FrequencyMode)> {
    let mut t = Vec::new();
    for _ in 0..1500 {
        t.push((
            Seconds(0.1),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
        ));
    }
    for _ in 0..300 {
        t.push((Seconds(0.5), CpuDemand::Idle, FrequencyMode::Unconstrained));
    }
    for &f in &[600.0, 1200.0, 900.0] {
        for _ in 0..200 {
            t.push((
                Seconds(0.1),
                CpuDemand::Busy { util: 0.7 },
                FrequencyMode::Fixed(MegaHertz(f)),
            ));
        }
    }
    t
}

fn assert_reports_bit_identical(a: &StepReport, b: &StepReport, step: usize) {
    // PartialEq on f64 cannot distinguish -0.0 from 0.0 and treats NaN as
    // unequal; compare the payloads that matter through their bit patterns.
    assert_eq!(
        a.cluster_freqs, b.cluster_freqs,
        "frequencies diverged at step {step}"
    );
    for (i, (va, vb)) in a
        .cluster_voltages
        .iter()
        .zip(b.cluster_voltages.iter())
        .enumerate()
    {
        assert_eq!(
            va.value().to_bits(),
            vb.value().to_bits(),
            "cluster {i} voltage diverged at step {step}: {va:?} vs {vb:?}"
        );
    }
    assert_eq!(
        a.soc_power.value().to_bits(),
        b.soc_power.value().to_bits(),
        "soc power diverged at step {step}"
    );
    assert_eq!(
        a.die_temp.value().to_bits(),
        b.die_temp.value().to_bits(),
        "die temperature diverged at step {step}"
    );
    assert_eq!(
        a.active_cores, b.active_cores,
        "cores diverged at step {step}"
    );
    assert_eq!(a.throttled, b.throttled, "throttle diverged at step {step}");
}

/// Warm-cache stepping vs forced-miss stepping on the RBCPR Pixel: every
/// report must match bit for bit. This is the satellite's "cache hits are
/// bit-identical to recomputation" guarantee, covering both the OPP memo
/// (frequencies) and the power cache (voltages/power), including RBCPR
/// trim invalidation as the die heats through temperature bins.
#[test]
fn fast_path_cache_hits_bit_identical_to_forced_recompute() {
    let mut warm = catalog::pixel(0.4, "fast-path-twin").unwrap();
    let mut cold = catalog::pixel(0.4, "fast-path-twin").unwrap();
    assert!(matches!(
        warm.spec().voltage_scheme,
        VoltageScheme::Rbcpr(_)
    ));
    warm.set_integrator(Integrator::Exponential);

    let mut ra = StepReport::empty();
    let mut rb = StepReport::empty();
    for (step, &(dt, demand, mode)) in trajectory().iter().enumerate() {
        // Re-selecting the integrator clears the OPP memo and power cache,
        // so every one of `cold`'s steps recomputes from scratch.
        cold.set_integrator(Integrator::Exponential);
        warm.step_into(dt, demand, mode, &mut ra).unwrap();
        cold.step_into(dt, demand, mode, &mut rb).unwrap();
        assert_reports_bit_identical(&ra, &rb, step);
    }
}

/// Same twin construction for a static-table device (Nexus 5 bins): the
/// power cache must also be exact when no runtime trim is in play.
#[test]
fn fast_path_bit_identical_on_static_table_device() {
    use pv_silicon::binning::BinId;
    let mut warm = catalog::nexus5(BinId(1)).unwrap();
    let mut cold = catalog::nexus5(BinId(1)).unwrap();
    assert!(matches!(
        warm.spec().voltage_scheme,
        VoltageScheme::StaticTable
    ));
    warm.set_integrator(Integrator::Exponential);

    let mut ra = StepReport::empty();
    let mut rb = StepReport::empty();
    for (step, &(dt, demand, mode)) in trajectory().iter().enumerate() {
        cold.set_integrator(Integrator::Exponential);
        warm.step_into(dt, demand, mode, &mut ra).unwrap();
        cold.step_into(dt, demand, mode, &mut rb).unwrap();
        assert_reports_bit_identical(&ra, &rb, step);
    }
}

/// The power-cache key's temperature bin must invalidate RBCPR trims as
/// the die moves: on a cold busy ramp the rail voltage at an unchanged
/// frequency has to track the (quantised) die temperature, matching
/// `RbcprSpec::trim` recomputed independently at every step.
#[test]
fn rbcpr_trim_tracks_temperature_bins_through_the_cache() {
    let mut d: Device = catalog::pixel(0.6, "rbcpr-bins").unwrap();
    d.set_integrator(Integrator::Exponential);
    let VoltageScheme::Rbcpr(rb) = d.spec().voltage_scheme else {
        panic!("pixel is expected to use RBCPR");
    };

    let mut start_temp = d.die_temp();
    let mut report = StepReport::empty();
    let mut distinct_voltages = std::collections::BTreeSet::new();
    let mut distinct_bins = std::collections::BTreeSet::new();
    for _ in 0..1200 {
        d.step_into(
            Seconds(0.1),
            CpuDemand::busy(),
            FrequencyMode::Unconstrained,
            &mut report,
        )
        .unwrap();
        // The power model saw the *step-start* die temperature snapped to
        // the 0.1 °C cache grid.
        let bin = (start_temp.value() / 0.1).round();
        let quantised = Celsius(bin * 0.1);
        for (ci, (&freq, &v)) in report
            .cluster_freqs
            .iter()
            .zip(report.cluster_voltages.iter())
            .enumerate()
        {
            let nominal = d.tables()[ci].voltage_at(freq);
            let expected = rb.trim(nominal, d.die(), quantised);
            assert_eq!(
                v.value().to_bits(),
                expected.value().to_bits(),
                "cluster {ci}: cached voltage is not the trim at the quantised \
                 step-start temperature (bin {bin})"
            );
        }
        distinct_bins.insert(bin as i64);
        distinct_voltages.insert(report.cluster_voltages[0].value().to_bits());
        start_temp = report.die_temp;
    }
    // The ramp must actually have crossed bins and produced re-trimmed
    // voltages — otherwise this test proves nothing about invalidation.
    assert!(
        distinct_bins.len() > 10,
        "ramp crossed only {} temperature bin(s)",
        distinct_bins.len()
    );
    assert!(
        distinct_voltages.len() > 5,
        "voltage never re-trimmed across bins ({} distinct value(s))",
        distinct_voltages.len()
    );
}
