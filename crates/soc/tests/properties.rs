//! Property-based tests for device-model invariants.

use proptest::prelude::*;
use pv_silicon::binning::BinId;
use pv_silicon::{DieSample, ProcessNode};
use pv_soc::catalog;
use pv_soc::device::{CpuDemand, FrequencyMode};
use pv_soc::rbcpr::RbcprSpec;
use pv_soc::throttle::{HotplugRule, ThrottlePolicy, ThrottleState, ThrottleStep};
use pv_units::{Celsius, MegaHertz, Seconds, Volts};

fn policy() -> ThrottlePolicy {
    ThrottlePolicy {
        steps: vec![
            ThrottleStep {
                trip: Celsius(70.0),
                clear: Celsius(66.0),
                cap: MegaHertz(1574.0),
            },
            ThrottleStep {
                trip: Celsius(75.0),
                clear: Celsius(71.0),
                cap: MegaHertz(960.0),
            },
            ThrottleStep {
                trip: Celsius(78.0),
                clear: Celsius(74.0),
                cap: MegaHertz(729.0),
            },
        ],
        hotplug: Some(HotplugRule {
            trip: Celsius(80.0),
            clear: Celsius(75.0),
            min_cores: 3,
        }),
        input_voltage: None,
        critical: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throttle_state_never_goes_out_of_bounds(
        temps in proptest::collection::vec(20.0..100.0f64, 1..200)
    ) {
        let p = policy();
        let mut state = ThrottleState::new();
        for t in temps {
            let d = state.update(&p, Celsius(t), Volts(4.0));
            prop_assert!(state.engaged_steps() <= p.steps.len());
            // The reported cap always belongs to the policy.
            if let Some(cap) = d.freq_cap {
                prop_assert!(p.steps.iter().any(|s| s.cap == cap));
            }
            // Decision and state agree about being throttled.
            prop_assert_eq!(d.is_throttled(), state.is_throttled());
        }
    }

    #[test]
    fn throttle_cap_is_monotone_in_temperature(t1 in 20.0..100.0f64, t2 in 20.0..100.0f64) {
        // From a fresh state, a hotter sensor can never yield a *higher* cap.
        let p = policy();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let mut s1 = ThrottleState::new();
        let d1 = s1.update(&p, Celsius(lo), Volts(4.0));
        let mut s2 = ThrottleState::new();
        let d2 = s2.update(&p, Celsius(hi), Volts(4.0));
        let cap1 = d1.freq_cap.map_or(f64::INFINITY, |c| c.value());
        let cap2 = d2.freq_cap.map_or(f64::INFINITY, |c| c.value());
        prop_assert!(cap2 <= cap1);
    }

    #[test]
    fn throttle_update_is_idempotent_at_fixed_reading(t in 20.0..100.0f64) {
        let p = policy();
        let mut state = ThrottleState::new();
        let first = state.update(&p, Celsius(t), Volts(4.0));
        let second = state.update(&p, Celsius(t), Volts(4.0));
        prop_assert_eq!(first, second);
    }

    #[test]
    fn rbcpr_trim_stays_in_envelope(
        grade in 0.01..0.99f64,
        temp in 0.0..100.0f64,
        nominal in 0.7..1.2f64,
    ) {
        let spec = RbcprSpec::new(0.08, 0.0005, Celsius(26.0), 0.85).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_20NM, grade).unwrap();
        let v = spec.trim(Volts(nominal), &die, Celsius(temp));
        prop_assert!(v.value() >= nominal * 0.85 - 1e-12);
        // Upper bound: nominal + max grade margin (0.5 · 0.08) + max temp credit.
        prop_assert!(v.value() <= nominal + 0.04 + 26.0 * 0.0005 + 1e-12);
    }

    #[test]
    fn rbcpr_trim_is_monotone(
        g1 in 0.01..0.99f64,
        g2 in 0.01..0.99f64,
        temp in 0.0..90.0f64,
    ) {
        let spec = RbcprSpec::new(0.08, 0.0005, Celsius(26.0), 0.5).unwrap();
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let slow = DieSample::from_grade(ProcessNode::PLANAR_20NM, lo).unwrap();
        let fast = DieSample::from_grade(ProcessNode::PLANAR_20NM, hi).unwrap();
        let v_slow = spec.trim(Volts(1.0), &slow, Celsius(temp));
        let v_fast = spec.trim(Volts(1.0), &fast, Celsius(temp));
        prop_assert!(v_fast <= v_slow);
        // Hotter silicon is trimmed at least as low.
        let v_hot = spec.trim(Volts(1.0), &slow, Celsius(temp + 5.0));
        prop_assert!(v_hot <= v_slow);
    }

    #[test]
    fn device_step_invariants_hold_under_random_driving(
        bin in 0u8..7,
        steps in proptest::collection::vec((0u8..3, 1u8..4), 5..60),
    ) {
        let mut device = catalog::nexus5(BinId(bin)).unwrap();
        for (demand_sel, dt_decis) in steps {
            let demand = match demand_sel {
                0 => CpuDemand::Idle,
                1 => CpuDemand::busy(),
                _ => CpuDemand::Busy { util: 0.5 },
            };
            let dt = Seconds(f64::from(dt_decis) * 0.1);
            let r = device.step(dt, demand, FrequencyMode::Unconstrained).unwrap();
            // Power is positive and supply includes regulator loss.
            prop_assert!(r.soc_power.value() > 0.0);
            prop_assert!(r.supply_power >= r.soc_power);
            // Temperatures stay physical.
            prop_assert!(r.die_temp.value() > 20.0 && r.die_temp.value() < 120.0);
            // Work only accrues when busy.
            if demand_sel == 0 {
                prop_assert_eq!(r.work_cycles, 0.0);
            } else {
                prop_assert!(r.work_cycles > 0.0);
            }
            // Cluster vectors are consistent.
            prop_assert_eq!(r.cluster_freqs.len(), r.active_cores.len());
            // Frequencies come from the device's ladder.
            for (f, table) in r.cluster_freqs.iter().zip(device.tables()) {
                prop_assert!(table.freqs().any(|lf| (lf.value() - f.value()).abs() < 1e-9));
            }
        }
    }

    #[test]
    fn fixed_mode_never_exceeds_pin(
        bin in 0u8..7,
        pin in 300.0..2265.0f64,
        n in 5usize..50,
    ) {
        let mut device = catalog::nexus5(BinId(bin)).unwrap();
        for _ in 0..n {
            let r = device
                .step(Seconds(0.2), CpuDemand::busy(), FrequencyMode::Fixed(MegaHertz(pin)))
                .unwrap();
            for f in &r.cluster_freqs {
                prop_assert!(f.value() <= pin + 1e-9);
            }
        }
    }

    #[test]
    fn leakier_die_never_uses_less_power_at_equal_state(
        g1 in 0.05..0.95f64,
        g2 in 0.05..0.95f64,
    ) {
        // Fresh devices, one step at identical fixed conditions: the
        // leakier die draws at least as much power (voltage-binned tables
        // may offset, but leakage dominates at this operating point).
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        prop_assume!(hi - lo > 0.1);
        let spec = catalog::nexus5_spec().unwrap();
        let mk = |g: f64| {
            let die = DieSample::from_grade(spec.soc.node, g).unwrap();
            let supply = Box::new(pv_power::Monsoon::new(Volts(3.8)).unwrap());
            pv_soc::device::Device::new(catalog::nexus5_spec().unwrap(), die, supply, "p", 1)
                .unwrap()
        };
        let mut a = mk(lo);
        let mut b = mk(hi);
        // Warm both to the same die temperature by construction (fresh at
        // 26 °C), one short step at fixed 960.
        let ra = a
            .step(Seconds(0.1), CpuDemand::busy(), FrequencyMode::Fixed(MegaHertz(960.0)))
            .unwrap();
        let rb = b
            .step(Seconds(0.1), CpuDemand::busy(), FrequencyMode::Fixed(MegaHertz(960.0)))
            .unwrap();
        prop_assert!(
            rb.soc_power.value() >= ra.soc_power.value() * 0.995,
            "leaky {} vs frugal {}",
            rb.soc_power,
            ra.soc_power
        );
    }
}
