//! Property-style tests for device-model invariants, swept over seeded
//! random samples (deterministic across runs).

use pv_rng::{Rng, SeedableRng, StdRng};
use pv_silicon::binning::BinId;
use pv_silicon::{DieSample, ProcessNode};
use pv_soc::catalog;
use pv_soc::device::{CpuDemand, FrequencyMode};
use pv_soc::rbcpr::RbcprSpec;
use pv_soc::throttle::{HotplugRule, ThrottlePolicy, ThrottleState, ThrottleStep};
use pv_units::{Celsius, MegaHertz, Seconds, Volts};

const CASES: usize = 64;

fn policy() -> ThrottlePolicy {
    ThrottlePolicy {
        steps: vec![
            ThrottleStep {
                trip: Celsius(70.0),
                clear: Celsius(66.0),
                cap: MegaHertz(1574.0),
            },
            ThrottleStep {
                trip: Celsius(75.0),
                clear: Celsius(71.0),
                cap: MegaHertz(960.0),
            },
            ThrottleStep {
                trip: Celsius(78.0),
                clear: Celsius(74.0),
                cap: MegaHertz(729.0),
            },
        ],
        hotplug: Some(HotplugRule {
            trip: Celsius(80.0),
            clear: Celsius(75.0),
            min_cores: 3,
        }),
        input_voltage: None,
        critical: None,
    }
}

#[test]
fn throttle_state_never_goes_out_of_bounds() {
    let mut rng = StdRng::seed_from_u64(701);
    for _ in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let temps: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..100.0)).collect();
        let p = policy();
        let mut state = ThrottleState::new();
        for t in temps {
            let d = state.update(&p, Celsius(t), Volts(4.0));
            assert!(state.engaged_steps() <= p.steps.len());
            // The reported cap always belongs to the policy.
            if let Some(cap) = d.freq_cap {
                assert!(p.steps.iter().any(|s| s.cap == cap));
            }
            // Decision and state agree about being throttled.
            assert_eq!(d.is_throttled(), state.is_throttled());
        }
    }
}

#[test]
fn throttle_cap_is_monotone_in_temperature() {
    let mut rng = StdRng::seed_from_u64(702);
    for _ in 0..CASES {
        let t1 = rng.gen_range(20.0..100.0);
        let t2 = rng.gen_range(20.0..100.0);
        // From a fresh state, a hotter sensor can never yield a *higher* cap.
        let p = policy();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let mut s1 = ThrottleState::new();
        let d1 = s1.update(&p, Celsius(lo), Volts(4.0));
        let mut s2 = ThrottleState::new();
        let d2 = s2.update(&p, Celsius(hi), Volts(4.0));
        let cap1 = d1.freq_cap.map_or(f64::INFINITY, |c| c.value());
        let cap2 = d2.freq_cap.map_or(f64::INFINITY, |c| c.value());
        assert!(cap2 <= cap1);
    }
}

#[test]
fn throttle_update_is_idempotent_at_fixed_reading() {
    let mut rng = StdRng::seed_from_u64(703);
    for _ in 0..CASES {
        let t = rng.gen_range(20.0..100.0);
        let p = policy();
        let mut state = ThrottleState::new();
        let first = state.update(&p, Celsius(t), Volts(4.0));
        let second = state.update(&p, Celsius(t), Volts(4.0));
        assert_eq!(first, second);
    }
}

#[test]
fn rbcpr_trim_stays_in_envelope() {
    let mut rng = StdRng::seed_from_u64(704);
    for _ in 0..CASES {
        let grade = rng.gen_range(0.01..0.99);
        let temp = rng.gen_range(0.0..100.0);
        let nominal = rng.gen_range(0.7..1.2);
        let spec = RbcprSpec::new(0.08, 0.0005, Celsius(26.0), 0.85).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_20NM, grade).unwrap();
        let v = spec.trim(Volts(nominal), &die, Celsius(temp));
        assert!(v.value() >= nominal * 0.85 - 1e-12);
        // Upper bound: nominal + max grade margin (0.5 · 0.08) + max temp credit.
        assert!(v.value() <= nominal + 0.04 + 26.0 * 0.0005 + 1e-12);
    }
}

#[test]
fn rbcpr_trim_is_monotone() {
    let mut rng = StdRng::seed_from_u64(705);
    for _ in 0..CASES {
        let g1 = rng.gen_range(0.01..0.99);
        let g2 = rng.gen_range(0.01..0.99);
        let temp = rng.gen_range(0.0..90.0);
        let spec = RbcprSpec::new(0.08, 0.0005, Celsius(26.0), 0.5).unwrap();
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let slow = DieSample::from_grade(ProcessNode::PLANAR_20NM, lo).unwrap();
        let fast = DieSample::from_grade(ProcessNode::PLANAR_20NM, hi).unwrap();
        let v_slow = spec.trim(Volts(1.0), &slow, Celsius(temp));
        let v_fast = spec.trim(Volts(1.0), &fast, Celsius(temp));
        assert!(v_fast <= v_slow);
        // Hotter silicon is trimmed at least as low.
        let v_hot = spec.trim(Volts(1.0), &slow, Celsius(temp + 5.0));
        assert!(v_hot <= v_slow);
    }
}

#[test]
fn device_step_invariants_hold_under_random_driving() {
    let mut rng = StdRng::seed_from_u64(706);
    for _ in 0..CASES {
        let bin = rng.gen_range(0..7u32) as u8;
        let n = rng.gen_range(5..60usize);
        let steps: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.gen_range(0..3u32) as u8, rng.gen_range(1..4u32) as u8))
            .collect();
        let mut device = catalog::nexus5(BinId(bin)).unwrap();
        for (demand_sel, dt_decis) in steps {
            let demand = match demand_sel {
                0 => CpuDemand::Idle,
                1 => CpuDemand::busy(),
                _ => CpuDemand::Busy { util: 0.5 },
            };
            let dt = Seconds(f64::from(dt_decis) * 0.1);
            let r = device
                .step(dt, demand, FrequencyMode::Unconstrained)
                .unwrap();
            // Power is positive and supply includes regulator loss.
            assert!(r.soc_power.value() > 0.0);
            assert!(r.supply_power >= r.soc_power);
            // Temperatures stay physical.
            assert!(r.die_temp.value() > 20.0 && r.die_temp.value() < 120.0);
            // Work only accrues when busy.
            if demand_sel == 0 {
                assert_eq!(r.work_cycles, 0.0);
            } else {
                assert!(r.work_cycles > 0.0);
            }
            // Cluster vectors are consistent.
            assert_eq!(r.cluster_freqs.len(), r.active_cores.len());
            // Frequencies come from the device's ladder.
            for (f, table) in r.cluster_freqs.iter().zip(device.tables()) {
                assert!(table
                    .freqs()
                    .any(|lf| (lf.value() - f.value()).abs() < 1e-9));
            }
        }
    }
}

#[test]
fn fixed_mode_never_exceeds_pin() {
    let mut rng = StdRng::seed_from_u64(707);
    for _ in 0..CASES {
        let bin = rng.gen_range(0..7u32) as u8;
        let pin = rng.gen_range(300.0..2265.0);
        let n = rng.gen_range(5..50usize);
        let mut device = catalog::nexus5(BinId(bin)).unwrap();
        for _ in 0..n {
            let r = device
                .step(
                    Seconds(0.2),
                    CpuDemand::busy(),
                    FrequencyMode::Fixed(MegaHertz(pin)),
                )
                .unwrap();
            for f in &r.cluster_freqs {
                assert!(f.value() <= pin + 1e-9);
            }
        }
    }
}

#[test]
fn leakier_die_never_uses_less_power_at_equal_state() {
    let mut rng = StdRng::seed_from_u64(708);
    let mut tried = 0;
    while tried < CASES {
        let g1 = rng.gen_range(0.05..0.95);
        let g2 = rng.gen_range(0.05..0.95);
        // Fresh devices, one step at identical fixed conditions: the
        // leakier die draws at least as much power (voltage-binned tables
        // may offset, but leakage dominates at this operating point).
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        if hi - lo <= 0.1 {
            continue;
        }
        tried += 1;
        let spec = catalog::nexus5_spec().unwrap();
        let mk = |g: f64| {
            let die = DieSample::from_grade(spec.soc.node, g).unwrap();
            let supply = Box::new(pv_power::Monsoon::new(Volts(3.8)).unwrap());
            pv_soc::device::Device::new(catalog::nexus5_spec().unwrap(), die, supply, "p", 1)
                .unwrap()
        };
        let mut a = mk(lo);
        let mut b = mk(hi);
        // Warm both to the same die temperature by construction (fresh at
        // 26 °C), one short step at fixed 960.
        let ra = a
            .step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(960.0)),
            )
            .unwrap();
        let rb = b
            .step(
                Seconds(0.1),
                CpuDemand::busy(),
                FrequencyMode::Fixed(MegaHertz(960.0)),
            )
            .unwrap();
        assert!(
            rb.soc_power.value() >= ra.soc_power.value() * 0.995,
            "leaky {} vs frugal {}",
            rb.soc_power,
            ra.soc_power
        );
    }
}
