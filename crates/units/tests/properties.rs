//! Property-based tests for unit arithmetic invariants.

use proptest::prelude::*;
use pv_units::{
    Amperes, Celsius, Joules, MegaHertz, MilliVolts, Seconds, TempDelta, ThermalCapacitance,
    ThermalResistance, Volts, Watts,
};

/// Finite, reasonably-scaled values so round-trips stay within f64 tolerance.
fn small() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6f64
}

fn positive() -> impl Strategy<Value = f64> {
    1.0e-3..1.0e6f64
}

proptest! {
    #[test]
    fn energy_round_trips_through_power(p in positive(), t in positive()) {
        let e = Watts(p) * Seconds(t);
        let p2 = e / Seconds(t);
        let t2 = e / Watts(p);
        prop_assert!((p2.value() - p).abs() <= 1e-9 * p.abs().max(1.0));
        prop_assert!((t2.value() - t).abs() <= 1e-9 * t.abs().max(1.0));
    }

    #[test]
    fn power_round_trips_through_ohms_law(v in positive(), i in positive()) {
        let w = Volts(v) * Amperes(i);
        prop_assert!((w / Volts(v)).value() - i <= 1e-9 * i);
        prop_assert!((w / Amperes(i)).value() - v <= 1e-9 * v);
    }

    #[test]
    fn addition_is_commutative(a in small(), b in small()) {
        prop_assert_eq!(Joules(a) + Joules(b), Joules(b) + Joules(a));
    }

    #[test]
    fn celsius_affine_round_trip(t in small(), d in small()) {
        let base = Celsius(t);
        let shifted = base + TempDelta(d);
        let recovered = shifted - TempDelta(d);
        prop_assert!((recovered.value() - t).abs() <= 1e-9 * t.abs().max(1.0));
        let diff = shifted - base;
        prop_assert!((diff.value() - d).abs() <= 1e-9 * d.abs().max(1.0));
    }

    #[test]
    fn kelvin_round_trip(t in small()) {
        let c = Celsius(t);
        let back = Celsius::from_kelvin(c.to_kelvin());
        prop_assert!((back.value() - t).abs() <= 1e-6);
    }

    #[test]
    fn fourier_and_heating_are_inverse_scalings(dt in positive(), r in positive()) {
        // ΔT/R = W, then W*R recovers ΔT (done in raw f64 since W×R is not exposed).
        let w = TempDelta(dt) / ThermalResistance(r);
        prop_assert!((w.value() * r - dt).abs() <= 1e-9 * dt);
    }

    #[test]
    fn heat_capacity_round_trip(e in positive(), c in positive()) {
        let delta = Joules(e) / ThermalCapacitance(c);
        let back = ThermalCapacitance(c) * delta;
        prop_assert!((back.value() - e).abs() <= 1e-9 * e);
    }

    #[test]
    fn millivolts_never_lose_precision(mv in 0u32..10_000) {
        let v = MilliVolts(mv).to_volts();
        prop_assert!((v.value() * 1000.0 - f64::from(mv)).abs() < 1e-9);
    }

    #[test]
    fn hz_round_trip(mhz in positive()) {
        let f = MegaHertz(mhz);
        let back = MegaHertz::from_hz(f.to_hz());
        prop_assert!((back.value() - mhz).abs() <= 1e-9 * mhz);
    }

    #[test]
    fn cycles_scale_linearly_with_time(mhz in 1.0..4000.0f64, t in 0.001..1000.0f64) {
        let one = MegaHertz(mhz).cycles_over(Seconds(t));
        let two = MegaHertz(mhz).cycles_over(Seconds(2.0 * t));
        prop_assert!((two - 2.0 * one).abs() <= 1e-6 * one.max(1.0));
    }

    #[test]
    fn min_max_are_consistent(a in small(), b in small()) {
        let (x, y) = (Watts(a), Watts(b));
        prop_assert!(x.min(y).value() <= x.max(y).value());
        prop_assert_eq!(x.min(y).value() + x.max(y).value(), a + b);
    }

    #[test]
    fn ratio_of_equal_quantities_is_one(a in positive()) {
        prop_assert!((Seconds(a) / Seconds(a) - 1.0).abs() < 1e-12);
    }
}
