//! Property-style tests for unit arithmetic invariants.
//!
//! Each test sweeps a seeded random sample of the input space (deterministic
//! across runs) and asserts the algebraic property on every case.

use pv_rng::{Rng, SeedableRng, StdRng};
use pv_units::{
    Amperes, Celsius, Joules, MegaHertz, MilliVolts, Seconds, TempDelta, ThermalCapacitance,
    ThermalResistance, Volts, Watts,
};

const CASES: usize = 500;

/// Finite, reasonably-scaled values so round-trips stay within f64 tolerance.
fn small(rng: &mut StdRng) -> f64 {
    rng.gen_range(-1.0e6..1.0e6)
}

fn positive(rng: &mut StdRng) -> f64 {
    rng.gen_range(1.0e-3..1.0e6)
}

#[test]
fn energy_round_trips_through_power() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let (p, t) = (positive(&mut rng), positive(&mut rng));
        let e = Watts(p) * Seconds(t);
        let p2 = e / Seconds(t);
        let t2 = e / Watts(p);
        assert!((p2.value() - p).abs() <= 1e-9 * p.abs().max(1.0));
        assert!((t2.value() - t).abs() <= 1e-9 * t.abs().max(1.0));
    }
}

#[test]
fn power_round_trips_through_ohms_law() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let (v, i) = (positive(&mut rng), positive(&mut rng));
        let w = Volts(v) * Amperes(i);
        assert!((w / Volts(v)).value() - i <= 1e-9 * i);
        assert!((w / Amperes(i)).value() - v <= 1e-9 * v);
    }
}

#[test]
fn addition_is_commutative() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let (a, b) = (small(&mut rng), small(&mut rng));
        assert_eq!(Joules(a) + Joules(b), Joules(b) + Joules(a));
    }
}

#[test]
fn celsius_affine_round_trip() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let (t, d) = (small(&mut rng), small(&mut rng));
        let base = Celsius(t);
        let shifted = base + TempDelta(d);
        let recovered = shifted - TempDelta(d);
        assert!((recovered.value() - t).abs() <= 1e-9 * t.abs().max(1.0));
        let diff = shifted - base;
        assert!((diff.value() - d).abs() <= 1e-9 * d.abs().max(1.0));
    }
}

#[test]
fn kelvin_round_trip() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let t = small(&mut rng);
        let c = Celsius(t);
        let back = Celsius::from_kelvin(c.to_kelvin());
        assert!((back.value() - t).abs() <= 1e-6);
    }
}

#[test]
fn fourier_and_heating_are_inverse_scalings() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let (dt, r) = (positive(&mut rng), positive(&mut rng));
        // ΔT/R = W, then W*R recovers ΔT (raw f64 since W×R is not exposed).
        let w = TempDelta(dt) / ThermalResistance(r);
        assert!((w.value() * r - dt).abs() <= 1e-9 * dt);
    }
}

#[test]
fn heat_capacity_round_trip() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let (e, c) = (positive(&mut rng), positive(&mut rng));
        let delta = Joules(e) / ThermalCapacitance(c);
        let back = ThermalCapacitance(c) * delta;
        assert!((back.value() - e).abs() <= 1e-9 * e);
    }
}

#[test]
fn millivolts_never_lose_precision() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..CASES {
        let mv = rng.gen_range(0..10_000u32);
        let v = MilliVolts(mv).to_volts();
        assert!((v.value() * 1000.0 - f64::from(mv)).abs() < 1e-9);
    }
}

#[test]
fn hz_round_trip() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..CASES {
        let mhz = positive(&mut rng);
        let f = MegaHertz(mhz);
        let back = MegaHertz::from_hz(f.to_hz());
        assert!((back.value() - mhz).abs() <= 1e-9 * mhz);
    }
}

#[test]
fn cycles_scale_linearly_with_time() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..CASES {
        let mhz = rng.gen_range(1.0..4000.0);
        let t = rng.gen_range(0.001..1000.0);
        let one = MegaHertz(mhz).cycles_over(Seconds(t));
        let two = MegaHertz(mhz).cycles_over(Seconds(2.0 * t));
        assert!((two - 2.0 * one).abs() <= 1e-6 * one.max(1.0));
    }
}

#[test]
fn min_max_are_consistent() {
    let mut rng = StdRng::seed_from_u64(111);
    for _ in 0..CASES {
        let (a, b) = (small(&mut rng), small(&mut rng));
        let (x, y) = (Watts(a), Watts(b));
        assert!(x.min(y).value() <= x.max(y).value());
        assert_eq!(x.min(y).value() + x.max(y).value(), a + b);
    }
}

#[test]
fn ratio_of_equal_quantities_is_one() {
    let mut rng = StdRng::seed_from_u64(112);
    for _ in 0..CASES {
        let a = positive(&mut rng);
        assert!((Seconds(a) / Seconds(a) - 1.0).abs() < 1e-12);
    }
}
