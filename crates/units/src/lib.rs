//! Typed physical quantities for the process-variation simulation stack.
//!
//! Every quantity that crosses a module boundary in this workspace is a
//! newtype over `f64` ([C-NEWTYPE]): temperatures are [`Celsius`], powers are
//! [`Watts`], energies are [`Joules`], and so on. The compiler then rules out
//! entire classes of unit bugs (adding a voltage to a temperature, passing a
//! frequency where a duration is expected) that plagued ad-hoc `f64` code.
//!
//! Cross-unit arithmetic is provided only where physically meaningful:
//!
//! * [`Watts`] × [`Seconds`] = [`Joules`] (and the inverse divisions)
//! * [`Volts`] × [`Amperes`] = [`Watts`] (and the inverse divisions)
//! * [`TempDelta`] ÷ [`ThermalResistance`] = [`Watts`] (Fourier's law)
//! * [`Joules`] ÷ [`ThermalCapacitance`] = [`TempDelta`] (lumped heating)
//!
//! # Examples
//!
//! ```
//! use pv_units::{Watts, Seconds, Volts, Celsius};
//!
//! let energy = Watts(2.5) * Seconds(60.0);
//! assert_eq!(energy.value(), 150.0);
//!
//! let current = Watts(3.3) / Volts(4.4);
//! assert!((current.value() - 0.75).abs() < 1e-12);
//!
//! let t = Celsius(26.0) + pv_units::TempDelta(0.5);
//! assert_eq!(t, Celsius(26.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use pv_json::{FromJson, Json, ToJson};

/// Implements the boilerplate shared by every scalar quantity newtype:
/// construction, accessors, same-unit arithmetic, scalar scaling, ordering
/// helpers, iterator summation, and `Display` with the unit suffix.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl ToJson for $name {
            /// Units serialize as transparent numbers.
            fn to_json(&self) -> Json {
                Json::Number(self.0)
            }
        }

        impl FromJson for $name {
            fn from_json(value: &Json) -> Option<Self> {
                value.as_f64().map(Self)
            }
        }

        impl $name {
            /// A zero-valued quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw `f64` value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of this quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            ///
            /// NaN values propagate as in [`f64::min`].
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN (as [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $suffix),
                    None => write!(f, "{} {}", self.0, $suffix),
                }
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

scalar_unit!(
    /// A temperature difference in kelvin (equivalently, °C difference).
    ///
    /// Absolute temperatures are [`Celsius`]; subtracting two of those yields
    /// a `TempDelta`. Keeping the two apart prevents the classic bug of
    /// treating an absolute temperature as a difference.
    TempDelta,
    "K"
);
scalar_unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
scalar_unit!(
    /// Energy in joules.
    Joules,
    "J"
);
scalar_unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
scalar_unit!(
    /// Electric current in amperes.
    Amperes,
    "A"
);
scalar_unit!(
    /// A span of simulated (or wall-clock) time in seconds.
    Seconds,
    "s"
);
scalar_unit!(
    /// CPU clock frequency in megahertz.
    ///
    /// Smartphone OPP tables are conventionally listed in MHz (see the
    /// paper's Table I: 300–2265 MHz for the Nexus 5), so MHz is this
    /// workspace's canonical frequency unit.
    MegaHertz,
    "MHz"
);
scalar_unit!(
    /// Thermal resistance in kelvin per watt (K/W).
    ThermalResistance,
    "K/W"
);
scalar_unit!(
    /// Thermal capacitance in joules per kelvin (J/K).
    ThermalCapacitance,
    "J/K"
);

/// An absolute temperature in degrees Celsius.
///
/// `Celsius` is an *affine* quantity: adding two absolute temperatures is
/// meaningless, so only `Celsius ± TempDelta` and `Celsius − Celsius` are
/// provided.
///
/// # Examples
///
/// ```
/// use pv_units::{Celsius, TempDelta};
/// let trip = Celsius(80.0);
/// let now = Celsius(76.5);
/// assert_eq!(trip - now, TempDelta(3.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl ToJson for Celsius {
    /// Units serialize as transparent numbers.
    fn to_json(&self) -> Json {
        Json::Number(self.0)
    }
}

impl FromJson for Celsius {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_f64().map(Self)
    }
}

impl Celsius {
    /// Absolute zero, −273.15 °C.
    pub const ABSOLUTE_ZERO: Celsius = Celsius(-273.15);

    /// Creates a new absolute temperature.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in degrees Celsius.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the temperature in kelvin.
    #[inline]
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Creates a temperature from a value in kelvin.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Self(kelvin - 273.15)
    }

    /// Returns the smaller of two temperatures.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two temperatures.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps the temperature to the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN (as [`f64::clamp`]).
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Returns `true` if the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl AddAssign<TempDelta> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

impl SubAssign<TempDelta> for Celsius {
    #[inline]
    fn sub_assign(&mut self, rhs: TempDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for Celsius {
    type Output = TempDelta;
    #[inline]
    fn sub(self, rhs: Celsius) -> TempDelta {
        TempDelta(self.0 - rhs.0)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match f.precision() {
            Some(p) => write!(f, "{:.*} °C", p, self.0),
            None => write!(f, "{} °C", self.0),
        }
    }
}

impl From<f64> for Celsius {
    #[inline]
    fn from(value: f64) -> Self {
        Self(value)
    }
}

impl From<Celsius> for f64 {
    #[inline]
    fn from(t: Celsius) -> f64 {
        t.0
    }
}

/// Electric potential in millivolts.
///
/// Kernel voltage-frequency tables (the paper's Table I) list voltages in
/// millivolts, so the binning code works in `MilliVolts` and converts to
/// [`Volts`] at the power-model boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MilliVolts(pub u32);

impl ToJson for MilliVolts {
    /// Units serialize as transparent numbers.
    fn to_json(&self) -> Json {
        Json::Number(f64::from(self.0))
    }
}

impl FromJson for MilliVolts {
    fn from_json(value: &Json) -> Option<Self> {
        let n = value.as_f64()?;
        if n.is_finite() && n >= 0.0 && n <= f64::from(u32::MAX) && n.fract() == 0.0 {
            Some(Self(n as u32))
        } else {
            None
        }
    }
}

impl MilliVolts {
    /// Creates a new millivolt value.
    #[inline]
    pub const fn new(value: u32) -> Self {
        Self(value)
    }

    /// Returns the raw value in millivolts.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Converts to [`Volts`].
    #[inline]
    pub fn to_volts(self) -> Volts {
        Volts(f64::from(self.0) / 1000.0)
    }
}

impl fmt::Display for MilliVolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

impl From<MilliVolts> for Volts {
    #[inline]
    fn from(mv: MilliVolts) -> Volts {
        mv.to_volts()
    }
}

// ---------------------------------------------------------------------------
// Cross-unit arithmetic
// ---------------------------------------------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Amperes> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amperes;
    #[inline]
    fn div(self, rhs: Volts) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl Div<Amperes> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amperes) -> Volts {
        Volts(self.0 / rhs.0)
    }
}

impl Div<ThermalResistance> for TempDelta {
    /// Fourier's law for a lumped element: heat flow = ΔT / R.
    type Output = Watts;
    #[inline]
    fn div(self, rhs: ThermalResistance) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<ThermalCapacitance> for Joules {
    /// Lumped heating: temperature rise = E / C.
    type Output = TempDelta;
    #[inline]
    fn div(self, rhs: ThermalCapacitance) -> TempDelta {
        TempDelta(self.0 / rhs.0)
    }
}

impl Mul<TempDelta> for ThermalCapacitance {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: TempDelta) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl MegaHertz {
    /// Returns the frequency in hertz.
    #[inline]
    pub fn to_hz(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Creates a frequency from a value in hertz.
    #[inline]
    pub fn from_hz(hz: f64) -> Self {
        Self(hz / 1.0e6)
    }

    /// Number of clock cycles elapsed over `dt` at this frequency.
    #[inline]
    pub fn cycles_over(self, dt: Seconds) -> f64 {
        self.to_hz() * dt.0
    }
}

impl Seconds {
    /// Creates a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self(minutes * 60.0)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(millis: f64) -> Self {
        Self(millis / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts(2.0) * Seconds(3.0), Joules(6.0));
        assert_eq!(Seconds(3.0) * Watts(2.0), Joules(6.0));
    }

    #[test]
    fn energy_divisions_invert() {
        let e = Joules(10.0);
        assert_eq!(e / Seconds(4.0), Watts(2.5));
        assert_eq!(e / Watts(2.5), Seconds(4.0));
    }

    #[test]
    fn ohms_law_family() {
        assert_eq!(Volts(5.0) * Amperes(2.0), Watts(10.0));
        assert_eq!(Amperes(2.0) * Volts(5.0), Watts(10.0));
        assert_eq!(Watts(10.0) / Volts(5.0), Amperes(2.0));
        assert_eq!(Watts(10.0) / Amperes(2.0), Volts(5.0));
    }

    #[test]
    fn fouriers_law() {
        // 10 K across 2 K/W conducts 5 W.
        assert_eq!(TempDelta(10.0) / ThermalResistance(2.0), Watts(5.0));
    }

    #[test]
    fn lumped_heating() {
        // 100 J into 50 J/K raises temperature by 2 K.
        assert_eq!(Joules(100.0) / ThermalCapacitance(50.0), TempDelta(2.0));
        assert_eq!(ThermalCapacitance(50.0) * TempDelta(2.0), Joules(100.0));
    }

    #[test]
    fn celsius_is_affine() {
        let a = Celsius(26.0);
        let b = Celsius(24.5);
        assert_eq!(a - b, TempDelta(1.5));
        assert_eq!(b + TempDelta(1.5), a);
        assert_eq!(a - TempDelta(1.5), b);
    }

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius(26.0);
        assert!((t.to_kelvin() - 299.15).abs() < 1e-12);
        let back = Celsius::from_kelvin(t.to_kelvin());
        assert!((back.value() - 26.0).abs() < 1e-12);
        assert!((Celsius::ABSOLUTE_ZERO.to_kelvin()).abs() < 1e-12);
    }

    #[test]
    fn millivolts_to_volts() {
        assert_eq!(MilliVolts(1100).to_volts(), Volts(1.1));
        let v: Volts = MilliVolts(750).into();
        assert_eq!(v, Volts(0.75));
    }

    #[test]
    fn megahertz_cycles() {
        // 1 MHz over 2 s = 2e6 cycles.
        assert_eq!(MegaHertz(1.0).cycles_over(Seconds(2.0)), 2.0e6);
        assert_eq!(MegaHertz::from_hz(2.265e9), MegaHertz(2265.0));
        assert_eq!(MegaHertz(300.0).to_hz(), 3.0e8);
    }

    #[test]
    fn seconds_constructors() {
        assert_eq!(Seconds::from_minutes(3.0), Seconds(180.0));
        assert_eq!(Seconds::from_millis(250.0), Seconds(0.25));
    }

    #[test]
    fn scalar_ops_and_helpers() {
        let w = Watts(4.0);
        assert_eq!(w * 0.5, Watts(2.0));
        assert_eq!(0.5 * w, Watts(2.0));
        assert_eq!(w / 2.0, Watts(2.0));
        assert_eq!(w / Watts(2.0), 2.0);
        assert_eq!(-w, Watts(-4.0));
        assert_eq!((-w).abs(), w);
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
        assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(3.0)), Watts(3.0));
        assert!(Watts(1.0).is_finite());
        assert!(!Watts(f64::NAN).is_finite());
    }

    #[test]
    fn sum_over_iterators() {
        let joules = [Joules(1.0), Joules(2.0), Joules(3.5)];
        let total: Joules = joules.iter().sum();
        assert_eq!(total, Joules(6.5));
        let total2: Joules = joules.into_iter().sum();
        assert_eq!(total2, Joules(6.5));
    }

    #[test]
    fn accumulating_assign_ops() {
        let mut e = Joules::ZERO;
        e += Joules(1.5);
        e += Joules(2.5);
        assert_eq!(e, Joules(4.0));
        e -= Joules(1.0);
        assert_eq!(e, Joules(3.0));

        let mut t = Celsius(26.0);
        t += TempDelta(2.0);
        assert_eq!(t, Celsius(28.0));
        t -= TempDelta(4.0);
        assert_eq!(t, Celsius(24.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.2}", Watts(1.2345)), "1.23 W");
        assert_eq!(format!("{}", Joules(2.0)), "2 J");
        assert_eq!(format!("{:.1}", Celsius(26.04)), "26.0 °C");
        assert_eq!(format!("{}", MilliVolts(950)), "950 mV");
        assert_eq!(format!("{:.0}", MegaHertz(2265.0)), "2265 MHz");
    }

    #[test]
    fn conversions_via_from() {
        let w: Watts = 3.0.into();
        assert_eq!(w, Watts(3.0));
        let raw: f64 = w.into();
        assert_eq!(raw, 3.0);
        let t: Celsius = 21.5.into();
        assert_eq!(f64::from(t), 21.5);
    }
}
