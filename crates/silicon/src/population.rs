//! Seeded sampling of device populations.
//!
//! The paper studied 3–5 retail devices per SoC; its future work (§VI)
//! envisions crowdsourced populations of thousands. [`Population`] supports
//! both scales: draw `n` dies from a [`ProcessNode`] deterministically from
//! a seed, inspect the bin distribution, and pick representative dies.

use crate::binning::{assign_bin, BinId};
use crate::{DieSample, ProcessNode, SiliconError};
use pv_rng::rngs::StdRng;
use pv_rng::SeedableRng;

/// A population of dies manufactured on one process.
///
/// # Examples
///
/// ```
/// use pv_silicon::population::Population;
/// use pv_silicon::ProcessNode;
///
/// let pop = Population::sample(ProcessNode::PLANAR_28NM, 1000, 42);
/// assert_eq!(pop.len(), 1000);
/// let hist = pop.bin_histogram(7).unwrap();
/// assert_eq!(hist.iter().sum::<usize>(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    node: ProcessNode,
    dies: Vec<DieSample>,
}

impl Population {
    /// Draws `n` dies from `node`, deterministically for a fixed `seed`.
    pub fn sample(node: ProcessNode, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dies = (0..n).map(|_| DieSample::sample(node, &mut rng)).collect();
        Self { node, dies }
    }

    /// Builds a population from explicit dies (e.g. the handpicked device
    /// personas of a paper experiment).
    pub fn from_dies(node: ProcessNode, dies: Vec<DieSample>) -> Self {
        Self { node, dies }
    }

    /// The manufacturing process.
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// The sampled dies.
    pub fn dies(&self) -> &[DieSample] {
        &self.dies
    }

    /// Number of dies in the population.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Counts dies per bin under `n_bins`-way quantile binning.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] if `n_bins == 0`.
    pub fn bin_histogram(&self, n_bins: u8) -> Result<Vec<usize>, SiliconError> {
        let mut counts = vec![0usize; usize::from(n_bins.max(1))];
        if n_bins == 0 {
            return Err(SiliconError::InvalidParameter("n_bins must be >= 1"));
        }
        for die in &self.dies {
            counts[usize::from(assign_bin(die, n_bins)?.index())] += 1;
        }
        Ok(counts)
    }

    /// All dies assigned to `bin` under `n_bins`-way binning.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] if `n_bins == 0` or the
    /// bin index is out of range.
    pub fn dies_in_bin(&self, bin: BinId, n_bins: u8) -> Result<Vec<DieSample>, SiliconError> {
        if bin.index() >= n_bins {
            return Err(SiliconError::InvalidParameter("bin out of range"));
        }
        let mut result = Vec::new();
        for die in &self.dies {
            if assign_bin(die, n_bins)? == bin {
                result.push(*die);
            }
        }
        Ok(result)
    }

    /// The die whose grade is closest to `grade`.
    ///
    /// Returns `None` on an empty population.
    pub fn closest_to_grade(&self, grade: f64) -> Option<&DieSample> {
        self.dies.iter().min_by(|a, b| {
            (a.grade() - grade)
                .abs()
                .partial_cmp(&(b.grade() - grade).abs())
                .expect("grades are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = Population::sample(ProcessNode::PLANAR_28NM, 100, 7);
        let b = Population::sample(ProcessNode::PLANAR_28NM, 100, 7);
        assert_eq!(a, b);
        let c = Population::sample(ProcessNode::PLANAR_28NM, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn bin_histogram_is_roughly_uniform() {
        // Grades are uniform quantiles, so equal-quantile bins should be
        // roughly balanced for large n.
        let pop = Population::sample(ProcessNode::PLANAR_28NM, 7000, 3);
        let hist = pop.bin_histogram(7).unwrap();
        for &count in &hist {
            assert!(
                (800..1200).contains(&count),
                "bin count {count} far from uniform"
            );
        }
        assert!(pop.bin_histogram(0).is_err());
    }

    #[test]
    fn dies_in_bin_partition_the_population() {
        let pop = Population::sample(ProcessNode::FINFET_14NM, 500, 11);
        let mut total = 0;
        for b in 0..5u8 {
            total += pop.dies_in_bin(BinId(b), 5).unwrap().len();
        }
        assert_eq!(total, 500);
        assert!(pop.dies_in_bin(BinId(5), 5).is_err());
    }

    #[test]
    fn closest_to_grade_finds_neighbour() {
        let pop = Population::sample(ProcessNode::PLANAR_20NM, 1000, 21);
        let near = pop.closest_to_grade(0.5).unwrap();
        assert!((near.grade() - 0.5).abs() < 0.01);
        let empty = Population::from_dies(ProcessNode::PLANAR_20NM, Vec::new());
        assert!(empty.closest_to_grade(0.5).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn from_dies_preserves_order() {
        let d1 = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.2).unwrap();
        let d2 = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.8).unwrap();
        let pop = Population::from_dies(ProcessNode::PLANAR_28NM, vec![d1, d2]);
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.dies()[0], d1);
        assert_eq!(pop.dies()[1], d2);
        assert_eq!(pop.node(), ProcessNode::PLANAR_28NM);
    }
}
