//! Process-variation models for smartphone SoCs.
//!
//! This crate is the synthetic stand-in for the physical silicon the paper
//! measured. It provides:
//!
//! * [`ProcessNode`] — a manufacturing process (28 nm planar … 14 nm FinFET)
//!   with its die-to-die variability parameters.
//! * [`DieSample`] — one die drawn from a process: a *speed grade* (how fast
//!   its transistors are relative to the population) and the correlated
//!   *leakage multiplier* (fast transistors leak more — the physical fact
//!   the whole paper hinges on, §II).
//! * [`power`] — leakage and dynamic power laws with the
//!   leakage–temperature feedback loop that causes thermal runaway on bad
//!   dies.
//! * [`binning`] — speed binning and voltage binning. The paper's Table I
//!   (Nexus 5 voltage/frequency ladder across 7 bins) is embedded as
//!   reference data, and the voltage-binning algorithm regenerates tables of
//!   the same shape for arbitrary dies.
//! * [`population`] — seeded sampling of whole device populations.
//!
//! # Examples
//!
//! ```
//! use pv_silicon::{DieSample, ProcessNode};
//!
//! // A fast (leaky) die and a slow (frugal) die from the same 28nm line.
//! let fast = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.95).unwrap();
//! let slow = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.05).unwrap();
//! assert!(fast.leakage_multiplier() > slow.leakage_multiplier());
//! assert!(fast.speed_factor() > slow.speed_factor());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod population;
pub mod power;

use core::fmt;
use pv_rng::Rng;
use pv_stats::dist::normal_quantile;

/// Error type for invalid silicon-model inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum SiliconError {
    /// A grade/probability was outside the open interval (0, 1).
    GradeOutOfRange(f64),
    /// A voltage/frequency table failed validation.
    InvalidTable(&'static str),
    /// A model parameter was out of its physical domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for SiliconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiliconError::GradeOutOfRange(g) => {
                write!(f, "die grade {g} outside open interval (0, 1)")
            }
            SiliconError::InvalidTable(what) => write!(f, "invalid voltage table: {what}"),
            SiliconError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SiliconError {}

/// A semiconductor manufacturing process and its die-to-die variability.
///
/// `sigma_speed` scales how much transistor speed varies across dies;
/// `leak_coupling` controls how strongly leakage grows with speed (the
/// log-normal exponent); `sigma_leak_residual` adds speed-independent
/// leakage scatter. Newer processes in this catalog have tighter speed
/// spread but FinFET-era leakage coupling is still significant — matching
/// the paper's finding that variation shrank from ~20 % (28 nm SD-800) to
/// ~5–10 % (14 nm SD-820/821) but never vanished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessNode {
    name: &'static str,
    feature_nm: f64,
    sigma_speed: f64,
    leak_coupling: f64,
    sigma_leak_residual: f64,
}

impl ProcessNode {
    /// 28 nm planar (Snapdragon 800/805 era, 2013). Widest variation.
    pub const PLANAR_28NM: ProcessNode = ProcessNode {
        name: "28nm planar",
        feature_nm: 28.0,
        sigma_speed: 0.055,
        leak_coupling: 0.42,
        sigma_leak_residual: 0.06,
    };

    /// 20 nm planar (Snapdragon 810, 2015). Notoriously leaky.
    pub const PLANAR_20NM: ProcessNode = ProcessNode {
        name: "20nm planar",
        feature_nm: 20.0,
        sigma_speed: 0.045,
        leak_coupling: 0.28,
        sigma_leak_residual: 0.05,
    };

    /// 14 nm FinFET (Snapdragon 820/821, 2016). Tighter control, lower
    /// leakage spread, but variation persists.
    pub const FINFET_14NM: ProcessNode = ProcessNode {
        name: "14nm FinFET",
        feature_nm: 14.0,
        sigma_speed: 0.030,
        leak_coupling: 0.26,
        sigma_leak_residual: 0.04,
    };

    /// 10 nm FinFET (Snapdragon 835 era, 2017) — one generation past the
    /// paper's study, used by the forecast experiment to extrapolate the
    /// Fig 13 efficiency trend.
    pub const FINFET_10NM: ProcessNode = ProcessNode {
        name: "10nm FinFET",
        feature_nm: 10.0,
        sigma_speed: 0.025,
        leak_coupling: 0.22,
        sigma_leak_residual: 0.035,
    };

    /// Creates a custom process node.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] if any sigma/coupling is
    /// negative or non-finite, or the feature size is not positive.
    pub fn new(
        name: &'static str,
        feature_nm: f64,
        sigma_speed: f64,
        leak_coupling: f64,
        sigma_leak_residual: f64,
    ) -> Result<Self, SiliconError> {
        if feature_nm <= 0.0 || feature_nm.is_nan() {
            return Err(SiliconError::InvalidParameter("feature_nm must be > 0"));
        }
        for (v, what) in [
            (sigma_speed, "sigma_speed"),
            (leak_coupling, "leak_coupling"),
            (sigma_leak_residual, "sigma_leak_residual"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(SiliconError::InvalidParameter(what));
            }
        }
        Ok(Self {
            name,
            feature_nm,
            sigma_speed,
            leak_coupling,
            sigma_leak_residual,
        })
    }

    /// Human-readable process name (e.g. `"28nm planar"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Feature size in nanometres.
    pub fn feature_nm(&self) -> f64 {
        self.feature_nm
    }

    /// Die-to-die speed variability (1σ, fractional).
    pub fn sigma_speed(&self) -> f64 {
        self.sigma_speed
    }

    /// Log-normal coupling between speed and leakage.
    pub fn leak_coupling(&self) -> f64 {
        self.leak_coupling
    }

    /// Speed-independent leakage scatter (1σ of the log residual).
    pub fn sigma_leak_residual(&self) -> f64 {
        self.sigma_leak_residual
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// One die drawn from a [`ProcessNode`].
///
/// A die is characterized by:
///
/// * **grade** — its population quantile of transistor speed in (0, 1):
///   0 ⇒ slowest silicon of the line, 1 ⇒ fastest. The paper's Nexus 5
///   bin-0 chips are low-grade, bin-6 chips high-grade (§II, Table I).
/// * **speed_factor** — multiplicative max-frequency capability relative to
///   nominal (1.0). Voltage binning hides this from the user by giving every
///   die the same frequency ladder.
/// * **leakage_multiplier** — multiplicative static-power factor relative to
///   the nominal die. Correlated with grade: fast transistors (short
///   channels, low V<sub>th</sub>) leak exponentially more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSample {
    node: ProcessNode,
    grade: f64,
    speed_factor: f64,
    leakage_multiplier: f64,
}

impl DieSample {
    /// Creates the deterministic die at population quantile `grade`, with no
    /// speed-independent leakage residual. Useful for constructing the exact
    /// device personas of the paper's experiments.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::GradeOutOfRange`] unless `0 < grade < 1`.
    pub fn from_grade(node: ProcessNode, grade: f64) -> Result<Self, SiliconError> {
        Self::from_grade_with_residual(node, grade, 0.0)
    }

    /// Creates the die at quantile `grade` with an explicit leakage residual
    /// z-score (`residual_z` standard normal units of speed-independent
    /// leakage scatter).
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::GradeOutOfRange`] unless `0 < grade < 1`, and
    /// [`SiliconError::InvalidParameter`] if `residual_z` is non-finite.
    pub fn from_grade_with_residual(
        node: ProcessNode,
        grade: f64,
        residual_z: f64,
    ) -> Result<Self, SiliconError> {
        if !(grade > 0.0 && grade < 1.0) {
            return Err(SiliconError::GradeOutOfRange(grade));
        }
        if !residual_z.is_finite() {
            return Err(SiliconError::InvalidParameter("residual_z non-finite"));
        }
        let z = normal_quantile(grade).expect("grade validated in (0,1)");
        let speed_factor = 1.0 + node.sigma_speed * z;
        let leakage_multiplier =
            (node.leak_coupling * z + node.sigma_leak_residual * residual_z).exp();
        Ok(Self {
            node,
            grade,
            speed_factor,
            leakage_multiplier,
        })
    }

    /// Draws a random die from the process using `rng`.
    ///
    /// The grade is uniform in (0, 1) — by definition of a quantile — and the
    /// residual is standard normal.
    pub fn sample<R: Rng + ?Sized>(node: ProcessNode, rng: &mut R) -> Self {
        // Keep the grade strictly inside (0,1); the quantile function is
        // undefined at the endpoints.
        let grade = rng.gen_range(1e-6..1.0 - 1e-6);
        let residual: f64 = {
            // Box-Muller from two uniforms, avoiding a rand_distr dependency.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        Self::from_grade_with_residual(node, grade, residual)
            .expect("grade sampled strictly inside (0,1)")
    }

    /// The process this die was manufactured on.
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Population speed quantile in (0, 1); higher is faster silicon.
    pub fn grade(&self) -> f64 {
        self.grade
    }

    /// Max-frequency capability relative to nominal (1.0 = typical die).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Static-power multiplier relative to the nominal die.
    pub fn leakage_multiplier(&self) -> f64 {
        self.leakage_multiplier
    }
}

impl fmt::Display for DieSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} die @ grade {:.3} (speed ×{:.3}, leakage ×{:.3})",
            self.node, self.grade, self.speed_factor, self.leakage_multiplier
        )
    }
}

pv_json::impl_to_json!(ProcessNode {
    name,
    feature_nm,
    sigma_speed,
    leak_coupling,
    sigma_leak_residual
});
pv_json::impl_to_json!(DieSample {
    node,
    grade,
    speed_factor,
    leakage_multiplier
});

#[cfg(test)]
mod tests {
    use super::*;
    use pv_rng::rngs::StdRng;
    use pv_rng::SeedableRng;

    #[test]
    fn median_die_is_nominal() {
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.5).unwrap();
        assert!((die.speed_factor() - 1.0).abs() < 1e-9);
        assert!((die.leakage_multiplier() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fast_dies_leak_more() {
        let node = ProcessNode::PLANAR_28NM;
        let grades = [0.1, 0.3, 0.5, 0.7, 0.9];
        let dies: Vec<_> = grades
            .iter()
            .map(|&g| DieSample::from_grade(node, g).unwrap())
            .collect();
        for pair in dies.windows(2) {
            assert!(pair[1].speed_factor() > pair[0].speed_factor());
            assert!(pair[1].leakage_multiplier() > pair[0].leakage_multiplier());
        }
    }

    #[test]
    fn leakage_spread_is_calibrated_for_28nm() {
        // The SD-800 study saw ~19-20% energy differences between extreme
        // bins; that requires a substantial leakage spread between a bin-0
        // (slow) and bin-6 (fast) die.
        let slow = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.07).unwrap();
        let fast = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.93).unwrap();
        let ratio = fast.leakage_multiplier() / slow.leakage_multiplier();
        assert!(
            ratio > 2.0,
            "28nm extreme-bin leakage ratio too small: {ratio}"
        );
        assert!(
            ratio < 6.0,
            "28nm extreme-bin leakage ratio implausible: {ratio}"
        );
    }

    #[test]
    fn finfet_is_tighter_than_planar() {
        let g = 0.9;
        let planar = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let finfet = DieSample::from_grade(ProcessNode::FINFET_14NM, g).unwrap();
        assert!(finfet.speed_factor() < planar.speed_factor());
        assert!(finfet.leakage_multiplier() < planar.leakage_multiplier());
    }

    #[test]
    fn grade_bounds_are_enforced() {
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(DieSample::from_grade(ProcessNode::PLANAR_28NM, bad).is_err());
        }
    }

    #[test]
    fn residual_shifts_leakage_not_speed() {
        let base = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.6).unwrap();
        let leaky =
            DieSample::from_grade_with_residual(ProcessNode::PLANAR_28NM, 0.6, 2.0).unwrap();
        assert_eq!(base.speed_factor(), leaky.speed_factor());
        assert!(leaky.leakage_multiplier() > base.leakage_multiplier());
        assert!(
            DieSample::from_grade_with_residual(ProcessNode::PLANAR_28NM, 0.6, f64::NAN).is_err()
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let da = DieSample::sample(ProcessNode::PLANAR_20NM, &mut a);
        let db = DieSample::sample(ProcessNode::PLANAR_20NM, &mut b);
        assert_eq!(da, db);
    }

    #[test]
    fn sampled_population_statistics_are_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let dies: Vec<_> = (0..2000)
            .map(|_| DieSample::sample(ProcessNode::PLANAR_28NM, &mut rng))
            .collect();
        let mean_speed: f64 =
            dies.iter().map(DieSample::speed_factor).sum::<f64>() / dies.len() as f64;
        assert!((mean_speed - 1.0).abs() < 0.01, "mean speed {mean_speed}");
        // Median leakage should be near 1 (log-normal), mean above 1.
        let mut leaks: Vec<f64> = dies.iter().map(DieSample::leakage_multiplier).collect();
        leaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = leaks[leaks.len() / 2];
        assert!((median - 1.0).abs() < 0.07, "median leakage {median}");
    }

    #[test]
    fn custom_node_validation() {
        assert!(ProcessNode::new("x", 10.0, 0.01, 0.2, 0.01).is_ok());
        assert!(ProcessNode::new("x", 0.0, 0.01, 0.2, 0.01).is_err());
        assert!(ProcessNode::new("x", 10.0, -0.01, 0.2, 0.01).is_err());
        assert!(ProcessNode::new("x", 10.0, 0.01, f64::NAN, 0.01).is_err());
    }

    #[test]
    fn display_impls() {
        let die = DieSample::from_grade(ProcessNode::FINFET_14NM, 0.25).unwrap();
        let s = format!("{die}");
        assert!(s.contains("14nm FinFET"));
        assert!(!format!("{}", SiliconError::GradeOutOfRange(2.0)).is_empty());
    }
}
