//! CPU binning: speed binning and voltage binning.
//!
//! The paper (§II) distinguishes the two industry techniques:
//!
//! * **Speed binning** sorts chips by the highest frequency they pass timing
//!   at, and sells them at different speeds/prices — the desktop model.
//! * **Voltage binning** keeps the *frequency ladder identical* across all
//!   chips and trims each bin's supply voltage instead: slow silicon gets a
//!   *higher* voltage so it can keep up; fast (leaky) silicon gets a lower
//!   voltage to rein in its leakage. This is what smartphone SoCs do, and is
//!   why two phones of the same model look identical but heat differently.
//!
//! The Nexus 5 kernel's voltage/frequency table (the paper's Table I) is
//! embedded verbatim as [`nexus5::REFERENCE_BINS`], and
//! [`voltage_bin_table`] regenerates tables of the same shape for arbitrary
//! dies by interpolating between the slowest (bin-0) and fastest (bin-6)
//! ladders.

use crate::{DieSample, SiliconError};
use core::fmt;
use pv_units::{MegaHertz, MilliVolts, Volts};

/// Identifier of a voltage/speed bin. Bin 0 holds the slowest silicon
/// (highest voltage); higher bins hold faster, leakier silicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BinId(pub u8);

impl BinId {
    /// The raw bin index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin-{}", self.0)
    }
}

/// One operating point: a frequency and the supply voltage trimmed for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Operating frequency.
    pub freq: MegaHertz,
    /// Trimmed supply voltage at that frequency.
    pub voltage: MilliVolts,
}

/// A validated voltage/frequency table: strictly increasing frequencies with
/// non-decreasing voltages.
///
/// # Examples
///
/// ```
/// use pv_silicon::binning::{nexus5, BinId};
/// let t = nexus5::reference_table(BinId(0)).unwrap();
/// assert_eq!(t.max_freq().value(), 2265.0);
/// assert_eq!(t.voltage_for(pv_units::MegaHertz(2265.0)).unwrap().value(), 1100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// Builds a table after validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidTable`] if the table is empty,
    /// frequencies are not strictly increasing/finite/positive, or voltages
    /// decrease as frequency rises.
    pub fn new(points: Vec<VfPoint>) -> Result<Self, SiliconError> {
        if points.is_empty() {
            return Err(SiliconError::InvalidTable("empty table"));
        }
        for p in &points {
            if !(p.freq.value() > 0.0 && p.freq.is_finite()) {
                return Err(SiliconError::InvalidTable("non-positive frequency"));
            }
            if p.voltage.value() == 0 {
                return Err(SiliconError::InvalidTable("zero voltage"));
            }
        }
        for w in points.windows(2) {
            if w[1].freq.value() <= w[0].freq.value() {
                return Err(SiliconError::InvalidTable(
                    "frequencies must be strictly increasing",
                ));
            }
            if w[1].voltage < w[0].voltage {
                return Err(SiliconError::InvalidTable(
                    "voltage must not decrease with frequency",
                ));
            }
        }
        Ok(Self { points })
    }

    /// The operating points, ascending by frequency.
    pub fn points(&self) -> &[VfPoint] {
        &self.points
    }

    /// All frequencies in the ladder, ascending.
    pub fn freqs(&self) -> impl Iterator<Item = MegaHertz> + '_ {
        self.points.iter().map(|p| p.freq)
    }

    /// The lowest operating frequency.
    pub fn min_freq(&self) -> MegaHertz {
        self.points[0].freq
    }

    /// The highest operating frequency.
    pub fn max_freq(&self) -> MegaHertz {
        self.points[self.points.len() - 1].freq
    }

    /// Exact-match lookup of the trimmed voltage for `freq`.
    pub fn voltage_for(&self, freq: MegaHertz) -> Option<MilliVolts> {
        self.points
            .iter()
            .find(|p| (p.freq.value() - freq.value()).abs() < 1e-9)
            .map(|p| p.voltage)
    }

    /// Voltage for an arbitrary frequency: exact points return their trim;
    /// frequencies between points linearly interpolate; frequencies outside
    /// the ladder clamp to the end points.
    pub fn voltage_at(&self, freq: MegaHertz) -> Volts {
        let f = freq.value();
        if f <= self.points[0].freq.value() {
            return self.points[0].voltage.to_volts();
        }
        let last = &self.points[self.points.len() - 1];
        if f >= last.freq.value() {
            return last.voltage.to_volts();
        }
        for w in self.points.windows(2) {
            let (f0, f1) = (w[0].freq.value(), w[1].freq.value());
            if f >= f0 && f <= f1 {
                let (v0, v1) = (
                    w[0].voltage.to_volts().value(),
                    w[1].voltage.to_volts().value(),
                );
                let t = (f - f0) / (f1 - f0);
                return Volts(v0 + t * (v1 - v0));
            }
        }
        unreachable!("frequency bracketed by construction")
    }

    /// The highest ladder frequency that does not exceed `cap`; `None` if
    /// even the lowest point exceeds the cap.
    pub fn highest_freq_at_or_below(&self, cap: MegaHertz) -> Option<MegaHertz> {
        self.points
            .iter()
            .rev()
            .find(|p| p.freq.value() <= cap.value() + 1e-9)
            .map(|p| p.freq)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl fmt::Display for VfTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.0}@{}", p.freq.value(), p.voltage)?;
        }
        Ok(())
    }
}

/// Assigns a die to one of `n_bins` equal-quantile speed bins.
///
/// Bin 0 receives the slowest dies (grade near 0) and bin `n_bins − 1` the
/// fastest — the paper's convention where "bin-0 has the slowest transistors
/// while bin-6 transistors leak the most".
///
/// # Errors
///
/// Returns [`SiliconError::InvalidParameter`] if `n_bins == 0`.
pub fn assign_bin(die: &DieSample, n_bins: u8) -> Result<BinId, SiliconError> {
    if n_bins == 0 {
        return Err(SiliconError::InvalidParameter("n_bins must be >= 1"));
    }
    let idx = (die.grade() * f64::from(n_bins)).floor() as u8;
    Ok(BinId(idx.min(n_bins - 1)))
}

/// Generates a voltage-binned table for a die by interpolating between the
/// ladder for the slowest silicon (`slow`, bin-0 style: high voltage) and
/// the fastest (`fast`, bin-max style: low voltage).
///
/// A die at grade 0 gets exactly `slow`; at grade 1 exactly `fast`;
/// intermediate grades interpolate per-frequency and round to the nearest
/// 5 mV step (matching kernel table granularity).
///
/// # Errors
///
/// Returns [`SiliconError::InvalidTable`] if the two ladders do not share an
/// identical frequency list, or if `slow` has a lower voltage than `fast`
/// anywhere (voltage binning gives slow silicon *more* volts, never fewer).
pub fn voltage_bin_table(
    slow: &VfTable,
    fast: &VfTable,
    die: &DieSample,
) -> Result<VfTable, SiliconError> {
    if slow.len() != fast.len() {
        return Err(SiliconError::InvalidTable("ladder length mismatch"));
    }
    let mut points = Vec::with_capacity(slow.len());
    for (s, f) in slow.points().iter().zip(fast.points()) {
        if (s.freq.value() - f.freq.value()).abs() > 1e-9 {
            return Err(SiliconError::InvalidTable("ladder frequency mismatch"));
        }
        if s.voltage < f.voltage {
            return Err(SiliconError::InvalidTable(
                "slow ladder must not be below fast ladder",
            ));
        }
        let hi = f64::from(s.voltage.value());
        let lo = f64::from(f.voltage.value());
        let v = hi - die.grade() * (hi - lo);
        let stepped = ((v / 5.0).round() * 5.0) as u32;
        points.push(VfPoint {
            freq: s.freq,
            voltage: MilliVolts(stepped),
        });
    }
    VfTable::new(points)
}

/// Speed binning: the highest ladder frequency this die passes timing at.
///
/// A die's maximum stable frequency is `nominal_fmax × speed_factor`; the
/// chip is labelled with the highest ladder step at or below it. Dies too
/// slow for even the lowest step are rejected (scrapped).
///
/// # Errors
///
/// Returns [`SiliconError::InvalidParameter`] if the die cannot reach the
/// lowest ladder frequency.
pub fn speed_bin(
    ladder: &VfTable,
    nominal_fmax: MegaHertz,
    die: &DieSample,
) -> Result<MegaHertz, SiliconError> {
    let capability = MegaHertz(nominal_fmax.value() * die.speed_factor());
    ladder
        .highest_freq_at_or_below(capability)
        .ok_or(SiliconError::InvalidParameter(
            "die below minimum ladder frequency",
        ))
}

/// The Nexus 5 (Snapdragon 800) reference data from the paper's Table I.
pub mod nexus5 {
    use super::*;

    /// The SD-800 frequency ladder used in Table I, in MHz.
    pub const FREQS_MHZ: [f64; 5] = [300.0, 729.0, 960.0, 1574.0, 2265.0];

    /// Number of voltage bins on the Nexus 5.
    pub const N_BINS: u8 = 7;

    /// Table I verbatim: per-bin voltage (mV) for each ladder frequency.
    /// Row = bin (0 slowest … 6 fastest/leakiest), column = frequency.
    pub const REFERENCE_BINS: [[u32; 5]; 7] = [
        [800, 835, 865, 965, 1100], // bin-0
        [800, 820, 850, 945, 1075], // bin-1
        [775, 805, 835, 925, 1050], // bin-2
        [775, 790, 820, 910, 1025], // bin-3
        [775, 780, 810, 895, 1000], // bin-4
        [750, 770, 800, 880, 975],  // bin-5
        [750, 760, 790, 870, 950],  // bin-6
    ];

    /// Builds the verbatim Table I ladder for `bin`.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] for bins ≥ 7.
    pub fn reference_table(bin: BinId) -> Result<VfTable, SiliconError> {
        let row = REFERENCE_BINS
            .get(usize::from(bin.index()))
            .ok_or(SiliconError::InvalidParameter("Nexus 5 bin out of range"))?;
        let points = FREQS_MHZ
            .iter()
            .zip(row)
            .map(|(&f, &mv)| VfPoint {
                freq: MegaHertz(f),
                voltage: MilliVolts(mv),
            })
            .collect();
        VfTable::new(points)
    }

    /// All seven reference ladders, bin-0 first.
    ///
    /// # Panics
    ///
    /// Never panics; the embedded data is valid by construction.
    pub fn all_reference_tables() -> Vec<VfTable> {
        (0..N_BINS)
            .map(|b| reference_table(BinId(b)).expect("embedded table is valid"))
            .collect()
    }

    /// Identifies which reference bin an observed voltage/frequency table
    /// belongs to — what Nexus 5 enthusiasts did by reading the kernel's
    /// tables at runtime (§II). Returns the bin whose ladder is closest in
    /// total absolute millivolts, or `None` if the table's frequency list
    /// does not match the SD-800 ladder.
    ///
    /// # Examples
    ///
    /// ```
    /// use pv_silicon::binning::{nexus5, BinId};
    /// let observed = nexus5::reference_table(BinId(4))?;
    /// assert_eq!(nexus5::identify_bin(&observed), Some(BinId(4)));
    /// # Ok::<(), pv_silicon::SiliconError>(())
    /// ```
    pub fn identify_bin(observed: &VfTable) -> Option<BinId> {
        if observed.len() != FREQS_MHZ.len() {
            return None;
        }
        for (p, &f) in observed.points().iter().zip(FREQS_MHZ.iter()) {
            if (p.freq.value() - f).abs() > 1e-9 {
                return None;
            }
        }
        let mut best: Option<(u64, u8)> = None;
        for b in 0..N_BINS {
            let reference = reference_table(BinId(b)).expect("embedded table is valid");
            let distance: u64 = observed
                .points()
                .iter()
                .zip(reference.points())
                .map(|(o, r)| u64::from(o.voltage.value().abs_diff(r.voltage.value())))
                .sum();
            if best.is_none_or(|(d, _)| distance < d) {
                best = Some((distance, b));
            }
        }
        best.map(|(_, b)| BinId(b))
    }

    /// Representative die grade for the centre of a Nexus 5 bin.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] for bins ≥ 7.
    pub fn bin_center_grade(bin: BinId) -> Result<f64, SiliconError> {
        if bin.index() >= N_BINS {
            return Err(SiliconError::InvalidParameter("Nexus 5 bin out of range"));
        }
        Ok((f64::from(bin.index()) + 0.5) / f64::from(N_BINS))
    }
}

pv_json::impl_to_json!(VfPoint { freq, voltage });
pv_json::impl_to_json!(VfTable { points });

impl pv_json::ToJson for BinId {
    /// Bin ids serialize as transparent numbers.
    fn to_json(&self) -> pv_json::Json {
        pv_json::Json::Number(f64::from(self.0))
    }
}

impl pv_json::FromJson for BinId {
    fn from_json(value: &pv_json::Json) -> Option<Self> {
        let n = value.as_f64()?;
        if n.is_finite() && (0.0..=f64::from(u8::MAX)).contains(&n) && n.fract() == 0.0 {
            Some(Self(n as u8))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessNode;

    fn mk_table(rows: &[(f64, u32)]) -> Result<VfTable, SiliconError> {
        VfTable::new(
            rows.iter()
                .map(|&(f, mv)| VfPoint {
                    freq: MegaHertz(f),
                    voltage: MilliVolts(mv),
                })
                .collect(),
        )
    }

    #[test]
    fn table_validation_rejects_bad_shapes() {
        assert!(mk_table(&[]).is_err());
        assert!(mk_table(&[(100.0, 800), (100.0, 850)]).is_err()); // duplicate freq
        assert!(mk_table(&[(200.0, 800), (100.0, 850)]).is_err()); // decreasing freq
        assert!(mk_table(&[(100.0, 900), (200.0, 850)]).is_err()); // voltage drops
        assert!(mk_table(&[(0.0, 800)]).is_err()); // zero freq
        assert!(mk_table(&[(100.0, 0)]).is_err()); // zero voltage
        assert!(mk_table(&[(100.0, 800), (200.0, 800)]).is_ok()); // flat voltage ok
    }

    #[test]
    fn reference_table_matches_paper_exactly() {
        let bin0 = nexus5::reference_table(BinId(0)).unwrap();
        assert_eq!(bin0.voltage_for(MegaHertz(300.0)), Some(MilliVolts(800)));
        assert_eq!(bin0.voltage_for(MegaHertz(2265.0)), Some(MilliVolts(1100)));
        let bin6 = nexus5::reference_table(BinId(6)).unwrap();
        assert_eq!(bin6.voltage_for(MegaHertz(2265.0)), Some(MilliVolts(950)));
        assert_eq!(bin6.voltage_for(MegaHertz(960.0)), Some(MilliVolts(790)));
        assert!(nexus5::reference_table(BinId(7)).is_err());
    }

    #[test]
    fn reference_bins_are_monotone_across_bins() {
        // At every frequency, voltage decreases (weakly) as bin index rises:
        // slow silicon gets more volts.
        let tables = nexus5::all_reference_tables();
        for fi in 0..nexus5::FREQS_MHZ.len() {
            let f = MegaHertz(nexus5::FREQS_MHZ[fi]);
            for w in tables.windows(2) {
                assert!(w[0].voltage_for(f).unwrap() >= w[1].voltage_for(f).unwrap());
            }
        }
    }

    #[test]
    fn voltage_interpolation_and_clamping() {
        let t = nexus5::reference_table(BinId(0)).unwrap();
        // Exact point.
        assert!((t.voltage_at(MegaHertz(960.0)).value() - 0.865).abs() < 1e-9);
        // Midpoint of 300→729 at (800+835)/2 = 817.5 mV.
        let mid = t.voltage_at(MegaHertz((300.0 + 729.0) / 2.0));
        assert!((mid.value() - 0.8175).abs() < 1e-9);
        // Clamping outside range.
        assert!((t.voltage_at(MegaHertz(100.0)).value() - 0.800).abs() < 1e-9);
        assert!((t.voltage_at(MegaHertz(9999.0)).value() - 1.100).abs() < 1e-9);
    }

    #[test]
    fn highest_freq_at_or_below() {
        let t = nexus5::reference_table(BinId(3)).unwrap();
        assert_eq!(
            t.highest_freq_at_or_below(MegaHertz(1000.0)),
            Some(MegaHertz(960.0))
        );
        assert_eq!(
            t.highest_freq_at_or_below(MegaHertz(2265.0)),
            Some(MegaHertz(2265.0))
        );
        assert_eq!(t.highest_freq_at_or_below(MegaHertz(200.0)), None);
    }

    #[test]
    fn bin_assignment_covers_range() {
        let node = ProcessNode::PLANAR_28NM;
        let slow = DieSample::from_grade(node, 0.01).unwrap();
        let fast = DieSample::from_grade(node, 0.99).unwrap();
        let mid = DieSample::from_grade(node, 0.5).unwrap();
        assert_eq!(assign_bin(&slow, 7).unwrap(), BinId(0));
        assert_eq!(assign_bin(&fast, 7).unwrap(), BinId(6));
        assert_eq!(assign_bin(&mid, 7).unwrap(), BinId(3));
        assert!(assign_bin(&mid, 0).is_err());
    }

    #[test]
    fn bin_assignment_is_monotone_in_grade() {
        let node = ProcessNode::PLANAR_28NM;
        let mut last = 0u8;
        for i in 1..100 {
            let die = DieSample::from_grade(node, f64::from(i) / 100.0).unwrap();
            let bin = assign_bin(&die, 7).unwrap();
            assert!(bin.index() >= last);
            last = bin.index();
        }
        assert_eq!(last, 6);
    }

    #[test]
    fn voltage_bin_table_interpolates_between_extremes() {
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let node = ProcessNode::PLANAR_28NM;

        // Near-slow die gets near bin-0 voltages.
        let die = DieSample::from_grade(node, 0.01).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        assert_eq!(t.voltage_for(MegaHertz(2265.0)), Some(MilliVolts(1100)));

        // Near-fast die gets near bin-6 voltages.
        let die = DieSample::from_grade(node, 0.99).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        assert_eq!(t.voltage_for(MegaHertz(2265.0)), Some(MilliVolts(950)));

        // Median die lands midway, on a 5 mV step.
        let die = DieSample::from_grade(node, 0.5).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        let v = t.voltage_for(MegaHertz(2265.0)).unwrap().value();
        assert_eq!(v, 1025);
        assert_eq!(v % 5, 0);
    }

    #[test]
    fn voltage_bin_table_regenerates_paper_shape() {
        // Generated tables must preserve the two Table I monotonicities:
        // voltage rises with frequency within a die, and falls with grade
        // across dies at fixed frequency.
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let node = ProcessNode::PLANAR_28NM;
        let mut prev: Option<VfTable> = None;
        for i in 1..10 {
            let die = DieSample::from_grade(node, f64::from(i) / 10.0).unwrap();
            let t = voltage_bin_table(&slow, &fast, &die).unwrap();
            if let Some(p) = &prev {
                for f in nexus5::FREQS_MHZ {
                    assert!(
                        t.voltage_for(MegaHertz(f)).unwrap()
                            <= p.voltage_for(MegaHertz(f)).unwrap()
                    );
                }
            }
            prev = Some(t);
        }
    }

    #[test]
    fn voltage_bin_table_rejects_mismatched_ladders() {
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let short = mk_table(&[(300.0, 800)]).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.5).unwrap();
        assert!(voltage_bin_table(&slow, &short, &die).is_err());

        let shifted = mk_table(&[
            (301.0, 750),
            (729.0, 760),
            (960.0, 790),
            (1574.0, 870),
            (2265.0, 950),
        ])
        .unwrap();
        assert!(voltage_bin_table(&slow, &shifted, &die).is_err());

        // Fast above slow is nonsense.
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        assert!(voltage_bin_table(&fast, &slow, &die).is_err());
    }

    #[test]
    fn speed_binning_labels_by_capability() {
        let ladder = nexus5::reference_table(BinId(0)).unwrap();
        let node = ProcessNode::PLANAR_28NM;
        // A nominal die reaches the top step.
        let nominal = DieSample::from_grade(node, 0.5).unwrap();
        assert_eq!(
            speed_bin(&ladder, MegaHertz(2265.0), &nominal).unwrap(),
            MegaHertz(2265.0)
        );
        // A very slow die drops a step.
        let slow = DieSample::from_grade(node, 0.000_1).unwrap();
        let binned = speed_bin(&ladder, MegaHertz(2265.0), &slow).unwrap();
        assert!(binned.value() < 2265.0);
        // A hopeless die (nominal fmax below the ladder) is scrapped.
        assert!(speed_bin(&ladder, MegaHertz(200.0), &slow).is_err());
    }

    #[test]
    fn identify_bin_recovers_references_and_generated_tables() {
        // Every reference table identifies as itself.
        for b in 0..nexus5::N_BINS {
            let t = nexus5::reference_table(BinId(b)).unwrap();
            assert_eq!(nexus5::identify_bin(&t), Some(BinId(b)));
        }
        // A generated table at a bin-centre grade identifies as that bin.
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        for b in [0u8, 3, 6] {
            let grade = nexus5::bin_center_grade(BinId(b)).unwrap();
            let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, grade).unwrap();
            let t = voltage_bin_table(&slow, &fast, &die).unwrap();
            assert_eq!(nexus5::identify_bin(&t), Some(BinId(b)), "bin-{b}");
        }
        // A foreign ladder is rejected.
        let foreign = mk_table(&[(100.0, 800), (200.0, 850)]).unwrap();
        assert_eq!(nexus5::identify_bin(&foreign), None);
    }

    #[test]
    fn bin_center_grades_are_ordered() {
        let mut last = 0.0;
        for b in 0..nexus5::N_BINS {
            let g = nexus5::bin_center_grade(BinId(b)).unwrap();
            assert!(g > last && g < 1.0);
            last = g;
        }
        assert!(nexus5::bin_center_grade(BinId(9)).is_err());
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", BinId(4)), "bin-4");
        let t = nexus5::reference_table(BinId(0)).unwrap();
        let s = format!("{t}");
        assert!(s.contains("2265@1100 mV"));
    }
}
