//! Leakage and dynamic power laws.
//!
//! The paper's §II mechanism in equations:
//!
//! * **Dynamic power** `P_dyn = C_eff · V² · f · u` per cluster, where `u`
//!   is the summed utilisation of the active cores (0 … n_cores).
//! * **Leakage power** `P_leak = n_powered · P₀ · σ_die · (V/V₀)^γ ·
//!   exp(β·(T − T₀))`, where `σ_die` is the die's
//!   [`leakage_multiplier`](crate::DieSample::leakage_multiplier), `γ`
//!   captures DIBL-driven voltage sensitivity and `β` the exponential
//!   temperature dependence of sub-threshold leakage ("leakage current of
//!   transistors is proportional to temperature" — the feedback loop the
//!   paper describes: leak → heat → leak more).
//!
//! Powered-down (hotplugged) cores stop leaking, which is why the Nexus 5
//! shutting a core at 80 °C (Fig 1) actually cools the die.

use crate::{DieSample, SiliconError};
use pv_units::{Celsius, MegaHertz, Volts, Watts};

/// Power-law parameters for one CPU cluster.
///
/// Construct with [`PowerParams::new`]; all parameters are validated. The
/// per-SoC catalogs in `pv-soc` provide calibrated instances.
///
/// # Examples
///
/// ```
/// use pv_silicon::power::PowerParams;
/// use pv_silicon::{DieSample, ProcessNode};
/// use pv_units::{Celsius, MegaHertz, Volts, Watts};
///
/// let params = PowerParams::new(
///     0.45e-9,            // effective switched capacitance per core (F)
///     Watts(0.12),        // per-core leakage at reference point
///     Volts(0.9),
///     Celsius(26.0),
///     2.0,                // leakage voltage exponent
///     0.025,              // leakage temperature coefficient (1/K)
/// )?;
/// let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.5)?;
/// let dynamic = params.dynamic_power(Volts(1.1), MegaHertz(2265.0), 4.0);
/// let leak26 = params.leakage_power(&die, Volts(1.1), Celsius(26.0), 4.0);
/// let leak80 = params.leakage_power(&die, Volts(1.1), Celsius(80.0), 4.0);
/// assert!(dynamic > Watts(1.0));
/// assert!(leak80 > leak26);
/// # Ok::<(), pv_silicon::SiliconError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    ceff_per_core: f64,
    leak_per_core: Watts,
    v_ref: Volts,
    t_ref: Celsius,
    leak_voltage_exp: f64,
    leak_temp_coeff: f64,
}

impl PowerParams {
    /// Creates validated power parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] if any magnitude is
    /// non-positive or non-finite, or either exponent/coefficient is
    /// negative.
    pub fn new(
        ceff_per_core: f64,
        leak_per_core: Watts,
        v_ref: Volts,
        t_ref: Celsius,
        leak_voltage_exp: f64,
        leak_temp_coeff: f64,
    ) -> Result<Self, SiliconError> {
        if !(ceff_per_core > 0.0 && ceff_per_core.is_finite()) {
            return Err(SiliconError::InvalidParameter("ceff_per_core"));
        }
        if !(leak_per_core.value() > 0.0 && leak_per_core.is_finite()) {
            return Err(SiliconError::InvalidParameter("leak_per_core"));
        }
        if !(v_ref.value() > 0.0 && v_ref.is_finite()) {
            return Err(SiliconError::InvalidParameter("v_ref"));
        }
        if !t_ref.is_finite() {
            return Err(SiliconError::InvalidParameter("t_ref"));
        }
        if !(leak_voltage_exp >= 0.0 && leak_voltage_exp.is_finite()) {
            return Err(SiliconError::InvalidParameter("leak_voltage_exp"));
        }
        if !(leak_temp_coeff >= 0.0 && leak_temp_coeff.is_finite()) {
            return Err(SiliconError::InvalidParameter("leak_temp_coeff"));
        }
        Ok(Self {
            ceff_per_core,
            leak_per_core,
            v_ref,
            t_ref,
            leak_voltage_exp,
            leak_temp_coeff,
        })
    }

    /// Effective switched capacitance per core, in farads.
    pub fn ceff_per_core(&self) -> f64 {
        self.ceff_per_core
    }

    /// Per-core leakage of a nominal die at the reference point.
    pub fn leak_per_core(&self) -> Watts {
        self.leak_per_core
    }

    /// Reference voltage for the leakage law.
    pub fn v_ref(&self) -> Volts {
        self.v_ref
    }

    /// Reference temperature for the leakage law.
    pub fn t_ref(&self) -> Celsius {
        self.t_ref
    }

    /// Voltage exponent γ of the leakage law.
    pub fn leak_voltage_exp(&self) -> f64 {
        self.leak_voltage_exp
    }

    /// Temperature coefficient β (1/K) of the leakage law.
    pub fn leak_temp_coeff(&self) -> f64 {
        self.leak_temp_coeff
    }

    /// Dynamic (switching) power of the cluster.
    ///
    /// `active_core_util` is the sum of per-core utilisations — 4.0 means
    /// four cores fully busy; 0.5 means one core half busy. Values are
    /// clamped at zero from below.
    pub fn dynamic_power(&self, v: Volts, freq: MegaHertz, active_core_util: f64) -> Watts {
        let util = active_core_util.max(0.0);
        Watts(self.ceff_per_core * v.value() * v.value() * freq.to_hz() * util)
    }

    /// Static (leakage) power of the cluster.
    ///
    /// `powered_cores` is how many cores are powered (hotplugged-off cores
    /// do not leak). Temperature is clamped to a physical envelope
    /// (−40 … 150 °C) before the exponential to keep the model stable under
    /// integrator overshoot.
    pub fn leakage_power(
        &self,
        die: &DieSample,
        v: Volts,
        temp: Celsius,
        powered_cores: f64,
    ) -> Watts {
        let cores = powered_cores.max(0.0);
        let t = temp.clamp(Celsius(-40.0), Celsius(150.0));
        let v_term = (v.value() / self.v_ref.value()).powf(self.leak_voltage_exp);
        let t_term = (self.leak_temp_coeff * (t - self.t_ref).value()).exp();
        self.leak_per_core * (cores * die.leakage_multiplier() * v_term * t_term)
    }

    /// Total cluster power: dynamic + leakage.
    pub fn total_power(
        &self,
        die: &DieSample,
        v: Volts,
        freq: MegaHertz,
        temp: Celsius,
        active_core_util: f64,
        powered_cores: f64,
    ) -> Watts {
        self.dynamic_power(v, freq, active_core_util)
            + self.leakage_power(die, v, temp, powered_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessNode;

    fn params() -> PowerParams {
        PowerParams::new(0.45e-9, Watts(0.12), Volts(0.9), Celsius(26.0), 2.0, 0.025).unwrap()
    }

    fn nominal_die() -> DieSample {
        DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.5).unwrap()
    }

    #[test]
    fn dynamic_power_scales_quadratically_with_voltage() {
        let p = params();
        let base = p.dynamic_power(Volts(1.0), MegaHertz(1000.0), 4.0);
        let doubled_v = p.dynamic_power(Volts(2.0), MegaHertz(1000.0), 4.0);
        assert!((doubled_v / base - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency_and_util() {
        let p = params();
        let base = p.dynamic_power(Volts(1.0), MegaHertz(1000.0), 1.0);
        assert!((p.dynamic_power(Volts(1.0), MegaHertz(2000.0), 1.0) / base - 2.0).abs() < 1e-12);
        assert!((p.dynamic_power(Volts(1.0), MegaHertz(1000.0), 3.0) / base - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_realistic_magnitude() {
        // Quad Krait at 2265 MHz, 1.1 V: expect a handful of watts.
        let p = params();
        let w = p.dynamic_power(Volts(1.1), MegaHertz(2265.0), 4.0);
        assert!(w > Watts(2.0) && w < Watts(8.0), "dynamic = {w}");
    }

    #[test]
    fn leakage_grows_exponentially_with_temperature() {
        let p = params();
        let die = nominal_die();
        let cold = p.leakage_power(&die, Volts(1.0), Celsius(26.0), 4.0);
        let hot = p.leakage_power(&die, Volts(1.0), Celsius(66.0), 4.0);
        // 40 K at beta = 0.025 → e^1 ≈ 2.718×.
        assert!((hot / cold - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_die_multiplier() {
        let p = params();
        let slow = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.1).unwrap();
        let fast = DieSample::from_grade(ProcessNode::PLANAR_28NM, 0.9).unwrap();
        let w_slow = p.leakage_power(&slow, Volts(1.0), Celsius(40.0), 4.0);
        let w_fast = p.leakage_power(&fast, Volts(1.0), Celsius(40.0), 4.0);
        let expected = fast.leakage_multiplier() / slow.leakage_multiplier();
        assert!((w_fast / w_slow - expected).abs() < 1e-9);
    }

    #[test]
    fn hotplugged_cores_stop_leaking() {
        let p = params();
        let die = nominal_die();
        let four = p.leakage_power(&die, Volts(1.0), Celsius(50.0), 4.0);
        let three = p.leakage_power(&die, Volts(1.0), Celsius(50.0), 3.0);
        assert!((four / three - 4.0 / 3.0).abs() < 1e-12);
        let none = p.leakage_power(&die, Volts(1.0), Celsius(50.0), 0.0);
        assert_eq!(none, Watts::ZERO);
    }

    #[test]
    fn leakage_voltage_exponent() {
        let p = params();
        let die = nominal_die();
        let lo = p.leakage_power(&die, Volts(0.9), Celsius(26.0), 1.0);
        let hi = p.leakage_power(&die, Volts(1.8), Celsius(26.0), 1.0);
        // gamma = 2 → doubling V quadruples leakage.
        assert!((hi / lo - 4.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_clamp_prevents_blowup() {
        let p = params();
        let die = nominal_die();
        let insane = p.leakage_power(&die, Volts(1.0), Celsius(10_000.0), 4.0);
        let at_cap = p.leakage_power(&die, Volts(1.0), Celsius(150.0), 4.0);
        assert_eq!(insane, at_cap);
        assert!(insane.is_finite());
    }

    #[test]
    fn negative_inputs_clamped() {
        let p = params();
        let die = nominal_die();
        assert_eq!(
            p.dynamic_power(Volts(1.0), MegaHertz(1000.0), -3.0),
            Watts::ZERO
        );
        assert_eq!(
            p.leakage_power(&die, Volts(1.0), Celsius(26.0), -1.0),
            Watts::ZERO
        );
    }

    #[test]
    fn total_is_sum_of_parts() {
        let p = params();
        let die = nominal_die();
        let v = Volts(1.05);
        let f = MegaHertz(1574.0);
        let t = Celsius(55.0);
        let total = p.total_power(&die, v, f, t, 4.0, 4.0);
        let sum = p.dynamic_power(v, f, 4.0) + p.leakage_power(&die, v, t, 4.0);
        assert!((total / sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constructor_validates() {
        assert!(PowerParams::new(0.0, Watts(0.1), Volts(1.0), Celsius(26.0), 2.0, 0.02).is_err());
        assert!(PowerParams::new(1e-9, Watts(0.0), Volts(1.0), Celsius(26.0), 2.0, 0.02).is_err());
        assert!(PowerParams::new(1e-9, Watts(0.1), Volts(0.0), Celsius(26.0), 2.0, 0.02).is_err());
        assert!(
            PowerParams::new(1e-9, Watts(0.1), Volts(1.0), Celsius(f64::NAN), 2.0, 0.02).is_err()
        );
        assert!(PowerParams::new(1e-9, Watts(0.1), Volts(1.0), Celsius(26.0), -1.0, 0.02).is_err());
        assert!(PowerParams::new(1e-9, Watts(0.1), Volts(1.0), Celsius(26.0), 2.0, -0.1).is_err());
    }

    #[test]
    fn accessors_round_trip() {
        let p = params();
        assert_eq!(p.ceff_per_core(), 0.45e-9);
        assert_eq!(p.leak_per_core(), Watts(0.12));
        assert_eq!(p.v_ref(), Volts(0.9));
        assert_eq!(p.t_ref(), Celsius(26.0));
    }
}
