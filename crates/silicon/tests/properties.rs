//! Property-style tests for silicon-model invariants, swept over seeded
//! random samples (deterministic across runs).

use pv_rng::{Rng, SeedableRng, StdRng};
use pv_silicon::binning::{assign_bin, nexus5, voltage_bin_table, BinId};
use pv_silicon::power::PowerParams;
use pv_silicon::{DieSample, ProcessNode};
use pv_units::{Celsius, MegaHertz, Volts, Watts};

const CASES: usize = 200;

fn grade(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.001..0.999)
}

fn any_node(rng: &mut StdRng) -> ProcessNode {
    [
        ProcessNode::PLANAR_28NM,
        ProcessNode::PLANAR_20NM,
        ProcessNode::FINFET_14NM,
    ][rng.gen_range(0..3usize)]
}

fn params() -> PowerParams {
    PowerParams::new(0.45e-9, Watts(0.12), Volts(0.9), Celsius(26.0), 2.0, 0.025).unwrap()
}

#[test]
fn speed_and_leakage_are_monotone_in_grade() {
    let mut rng = StdRng::seed_from_u64(301);
    for _ in 0..CASES {
        let node = any_node(&mut rng);
        let g1 = grade(&mut rng);
        let g2 = grade(&mut rng);
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let slow = DieSample::from_grade(node, lo).unwrap();
        let fast = DieSample::from_grade(node, hi).unwrap();
        assert!(fast.speed_factor() >= slow.speed_factor());
        assert!(fast.leakage_multiplier() >= slow.leakage_multiplier());
    }
}

#[test]
fn speed_factor_stays_physical() {
    let mut rng = StdRng::seed_from_u64(302);
    for _ in 0..CASES {
        let node = any_node(&mut rng);
        let die = DieSample::from_grade(node, grade(&mut rng)).unwrap();
        // Within ±6 sigma of a small fractional spread, speed stays positive
        // and within a plausible envelope.
        assert!(die.speed_factor() > 0.5 && die.speed_factor() < 1.5);
        assert!(die.leakage_multiplier() > 0.0);
        assert!(die.leakage_multiplier().is_finite());
    }
}

#[test]
fn bin_assignment_matches_grade_quantile() {
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..CASES {
        let g = grade(&mut rng);
        let n_bins = rng.gen_range(1..12u32) as u8;
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let bin = assign_bin(&die, n_bins).unwrap();
        let expected = ((g * f64::from(n_bins)).floor() as u8).min(n_bins - 1);
        assert_eq!(bin, BinId(expected));
    }
}

#[test]
fn generated_vf_tables_stay_between_extremes() {
    let mut rng = StdRng::seed_from_u64(304);
    for _ in 0..CASES {
        let g = grade(&mut rng);
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        for f in nexus5::FREQS_MHZ {
            let v = t.voltage_for(MegaHertz(f)).unwrap();
            assert!(v <= slow.voltage_for(MegaHertz(f)).unwrap());
            assert!(v >= fast.voltage_for(MegaHertz(f)).unwrap());
            assert_eq!(v.value() % 5, 0);
        }
        // Generated table keeps voltage non-decreasing with frequency.
        for w in t.points().windows(2) {
            assert!(w[1].voltage >= w[0].voltage);
        }
    }
}

#[test]
fn leakage_power_monotone_in_each_argument() {
    let mut rng = StdRng::seed_from_u64(305);
    for _ in 0..CASES {
        let g = grade(&mut rng);
        let v = rng.gen_range(0.7..1.2);
        let t = rng.gen_range(0.0..100.0);
        let p = params();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let base = p.leakage_power(&die, Volts(v), Celsius(t), 4.0);
        let hotter = p.leakage_power(&die, Volts(v), Celsius(t + 5.0), 4.0);
        let higher_v = p.leakage_power(&die, Volts(v + 0.05), Celsius(t), 4.0);
        assert!(hotter.value() > base.value());
        assert!(higher_v.value() > base.value());
        assert!(base.value() > 0.0);
    }
}

#[test]
fn dynamic_power_monotone() {
    let mut rng = StdRng::seed_from_u64(306);
    for _ in 0..CASES {
        let v = rng.gen_range(0.7..1.2);
        let f = rng.gen_range(300.0..2300.0);
        let u = rng.gen_range(0.1..4.0);
        let p = params();
        let base = p.dynamic_power(Volts(v), MegaHertz(f), u);
        assert!(p.dynamic_power(Volts(v + 0.01), MegaHertz(f), u) > base);
        assert!(p.dynamic_power(Volts(v), MegaHertz(f + 10.0), u) > base);
        assert!(p.dynamic_power(Volts(v), MegaHertz(f), u + 0.1) > base);
    }
}

#[test]
fn interpolated_voltage_is_within_table_range() {
    let mut rng = StdRng::seed_from_u64(307);
    for _ in 0..CASES {
        let g = grade(&mut rng);
        let f = rng.gen_range(100.0..3000.0);
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        let v = t.voltage_at(MegaHertz(f));
        let vmin = t.points()[0].voltage.to_volts();
        let vmax = t.points()[t.len() - 1].voltage.to_volts();
        assert!(v >= vmin && v <= vmax);
    }
}
