//! Property-based tests for silicon-model invariants.

use proptest::prelude::*;
use pv_silicon::binning::{assign_bin, nexus5, voltage_bin_table, BinId};
use pv_silicon::power::PowerParams;
use pv_silicon::{DieSample, ProcessNode};
use pv_units::{Celsius, MegaHertz, Volts, Watts};

fn grade() -> impl Strategy<Value = f64> {
    0.001..0.999f64
}

fn any_node() -> impl Strategy<Value = ProcessNode> {
    prop_oneof![
        Just(ProcessNode::PLANAR_28NM),
        Just(ProcessNode::PLANAR_20NM),
        Just(ProcessNode::FINFET_14NM),
    ]
}

fn params() -> PowerParams {
    PowerParams::new(0.45e-9, Watts(0.12), Volts(0.9), Celsius(26.0), 2.0, 0.025).unwrap()
}

proptest! {
    #[test]
    fn speed_and_leakage_are_monotone_in_grade(node in any_node(), g1 in grade(), g2 in grade()) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let slow = DieSample::from_grade(node, lo).unwrap();
        let fast = DieSample::from_grade(node, hi).unwrap();
        prop_assert!(fast.speed_factor() >= slow.speed_factor());
        prop_assert!(fast.leakage_multiplier() >= slow.leakage_multiplier());
    }

    #[test]
    fn speed_factor_stays_physical(node in any_node(), g in grade()) {
        let die = DieSample::from_grade(node, g).unwrap();
        // Within ±6 sigma of a small fractional spread, speed stays positive
        // and within a plausible envelope.
        prop_assert!(die.speed_factor() > 0.5 && die.speed_factor() < 1.5);
        prop_assert!(die.leakage_multiplier() > 0.0);
        prop_assert!(die.leakage_multiplier().is_finite());
    }

    #[test]
    fn bin_assignment_matches_grade_quantile(g in grade(), n_bins in 1u8..12) {
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let bin = assign_bin(&die, n_bins).unwrap();
        let expected = ((g * f64::from(n_bins)).floor() as u8).min(n_bins - 1);
        prop_assert_eq!(bin, BinId(expected));
    }

    #[test]
    fn generated_vf_tables_stay_between_extremes(g in grade()) {
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        for f in nexus5::FREQS_MHZ {
            let v = t.voltage_for(MegaHertz(f)).unwrap();
            prop_assert!(v <= slow.voltage_for(MegaHertz(f)).unwrap());
            prop_assert!(v >= fast.voltage_for(MegaHertz(f)).unwrap());
            prop_assert_eq!(v.value() % 5, 0);
        }
        // Generated table keeps voltage non-decreasing with frequency.
        for w in t.points().windows(2) {
            prop_assert!(w[1].voltage >= w[0].voltage);
        }
    }

    #[test]
    fn leakage_power_monotone_in_each_argument(
        g in grade(),
        v in 0.7..1.2f64,
        t in 0.0..100.0f64,
    ) {
        let p = params();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let base = p.leakage_power(&die, Volts(v), Celsius(t), 4.0);
        let hotter = p.leakage_power(&die, Volts(v), Celsius(t + 5.0), 4.0);
        let higher_v = p.leakage_power(&die, Volts(v + 0.05), Celsius(t), 4.0);
        prop_assert!(hotter.value() > base.value());
        prop_assert!(higher_v.value() > base.value());
        prop_assert!(base.value() > 0.0);
    }

    #[test]
    fn dynamic_power_monotone(v in 0.7..1.2f64, f in 300.0..2300.0f64, u in 0.1..4.0f64) {
        let p = params();
        let base = p.dynamic_power(Volts(v), MegaHertz(f), u);
        prop_assert!(p.dynamic_power(Volts(v + 0.01), MegaHertz(f), u) > base);
        prop_assert!(p.dynamic_power(Volts(v), MegaHertz(f + 10.0), u) > base);
        prop_assert!(p.dynamic_power(Volts(v), MegaHertz(f), u + 0.1) > base);
    }

    #[test]
    fn interpolated_voltage_is_within_table_range(g in grade(), f in 100.0..3000.0f64) {
        let slow = nexus5::reference_table(BinId(0)).unwrap();
        let fast = nexus5::reference_table(BinId(6)).unwrap();
        let die = DieSample::from_grade(ProcessNode::PLANAR_28NM, g).unwrap();
        let t = voltage_bin_table(&slow, &fast, &die).unwrap();
        let v = t.voltage_at(MegaHertz(f));
        let vmin = t.points()[0].voltage.to_volts();
        let vmax = t.points()[t.len() - 1].voltage.to_volts();
        prop_assert!(v >= vmin && v <= vmax);
    }
}
