//! Li-ion battery model.
//!
//! A single-cell smartphone battery: open-circuit voltage (OCV) falls with
//! state of charge along a typical Li-ion curve, and the terminal voltage
//! sags below OCV under load through the internal resistance:
//!
//! ```text
//! V_t = OCV(soc) − I·R_int,   P = V_t · I
//! ⇒ I = (OCV − sqrt(OCV² − 4·R·P)) / (2R)
//! ```
//!
//! The paper's LG G5 battery is labelled 3.85 V nominal / 4.4 V maximum;
//! its OS throttles the CPU when the *input* voltage is low — which is why
//! a Monsoon programmed to the nominal 3.85 V made the phone ~20 % slower
//! than running from its own (mostly-full, ≈4.3 V) battery (Fig 10).

use crate::{PowerError, PowerSupply};
use core::cell::Cell;
use core::fmt;
use pv_units::{Joules, Seconds, Volts, Watts};

/// Piecewise-linear OCV curve: (state-of-charge, volts) knots, ascending soc.
const DEFAULT_OCV_KNOTS: [(f64, f64); 7] = [
    (0.00, 3.40),
    (0.10, 3.60),
    (0.25, 3.70),
    (0.50, 3.80),
    (0.75, 3.95),
    (0.90, 4.15),
    (1.00, 4.35),
];

/// A single-cell Li-ion battery.
///
/// # Examples
///
/// ```
/// use pv_power::{Battery, PowerSupply};
/// use pv_units::{Volts, Watts};
///
/// // LG G5 class cell: 2800 mAh ≈ 38.8 kJ, 90% charged.
/// let batt = Battery::new(pv_units::Joules(38_800.0), 0.08, 0.9)?;
/// let idle_v = batt.terminal_voltage(Watts(0.0));
/// let load_v = batt.terminal_voltage(Watts(5.0));
/// assert!(load_v < idle_v); // sag under load
/// assert!(idle_v > Volts(4.0)); // well above the 3.85 V throttle region
/// # Ok::<(), pv_power::PowerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Battery {
    capacity: Joules,
    internal_resistance: f64, // ohms
    soc: f64,
    energy_delivered: Joules,
    /// Memoised OCV interpolation, keyed on the state-of-charge bits. A
    /// device step consults the OCV several times (terminal voltage, max
    /// power, discharge accounting) at one unchanged state of charge; the
    /// cached value IS the previous interpolation result, so hits are
    /// bit-identical to recomputing.
    ocv_cache: Cell<(u64, f64)>,
    /// Memoised terminal-voltage solve, keyed on (soc bits, load bits) —
    /// the step loop asks twice per step (once for the rail reading, once
    /// inside [`Battery::draw`]) with identical inputs.
    vt_cache: Cell<(u64, u64, f64)>,
}

/// Equality is over the semantic state only; the derived value caches are
/// transparent (hits are bit-identical to recomputing).
impl PartialEq for Battery {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.internal_resistance == other.internal_resistance
            && self.soc == other.soc
            && self.energy_delivered == other.energy_delivered
    }
}

impl Battery {
    /// Creates a battery with `capacity` (full-charge energy), internal
    /// resistance in ohms, and initial state of charge in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive capacity,
    /// negative resistance, or a state of charge outside `[0, 1]`.
    pub fn new(capacity: Joules, internal_resistance: f64, soc: f64) -> Result<Self, PowerError> {
        if !(capacity.value() > 0.0 && capacity.is_finite()) {
            return Err(PowerError::InvalidParameter("capacity must be > 0"));
        }
        if !(internal_resistance >= 0.0 && internal_resistance.is_finite()) {
            return Err(PowerError::InvalidParameter("resistance must be >= 0"));
        }
        if !(0.0..=1.0).contains(&soc) {
            return Err(PowerError::InvalidParameter("soc must be in [0,1]"));
        }
        Ok(Self {
            capacity,
            internal_resistance,
            soc,
            energy_delivered: Joules::ZERO,
            ocv_cache: Cell::new((f64::NAN.to_bits(), 0.0)),
            vt_cache: Cell::new((f64::NAN.to_bits(), 0, 0.0)),
        })
    }

    /// Open-circuit voltage at the current state of charge.
    pub fn ocv(&self) -> Volts {
        let bits = self.soc.to_bits();
        let (cached_soc, cached) = self.ocv_cache.get();
        if cached_soc == bits {
            return Volts(cached);
        }
        let v = self.ocv_uncached();
        self.ocv_cache.set((bits, v));
        Volts(v)
    }

    /// The piecewise-linear OCV interpolation itself.
    fn ocv_uncached(&self) -> f64 {
        let soc = self.soc;
        let knots = &DEFAULT_OCV_KNOTS;
        if soc <= knots[0].0 {
            return knots[0].1;
        }
        for w in knots.windows(2) {
            let (s0, v0) = w[0];
            let (s1, v1) = w[1];
            if soc <= s1 {
                let t = (soc - s0) / (s1 - s0);
                return v0 + t * (v1 - v0);
            }
        }
        knots[knots.len() - 1].1
    }

    /// Current state of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Remaining energy.
    pub fn remaining(&self) -> Joules {
        self.capacity * self.soc
    }

    /// Maximum power deliverable right now (at which the terminal voltage
    /// collapses to OCV/2). Infinite for a zero-resistance cell.
    pub fn max_power(&self) -> Watts {
        if self.internal_resistance == 0.0 {
            Watts(f64::INFINITY)
        } else {
            let ocv = self.ocv().value();
            Watts(ocv * ocv / (4.0 * self.internal_resistance))
        }
    }
}

impl PowerSupply for Battery {
    fn clone_box(&self) -> Box<dyn PowerSupply> {
        Box::new(self.clone())
    }

    fn terminal_voltage(&self, load: Watts) -> Volts {
        let key = (self.soc.to_bits(), load.value().to_bits());
        let (s, l, cached) = self.vt_cache.get();
        if (s, l) == key {
            return Volts(cached);
        }
        let ocv = self.ocv().value();
        let p = load.value().max(0.0);
        let v = if self.internal_resistance == 0.0 || p == 0.0 {
            ocv
        } else {
            let disc = ocv * ocv - 4.0 * self.internal_resistance * p;
            if disc <= 0.0 {
                // Beyond deliverable power: voltage collapses.
                ocv / 2.0
            } else {
                let current = (ocv - disc.sqrt()) / (2.0 * self.internal_resistance);
                ocv - current * self.internal_resistance
            }
        };
        self.vt_cache.set((key.0, key.1, v));
        Volts(v)
    }

    fn draw(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError> {
        if !(power.value() >= 0.0 && power.is_finite()) {
            return Err(PowerError::InvalidParameter("power must be >= 0"));
        }
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(PowerError::InvalidParameter("dt must be > 0"));
        }
        if self.soc <= 0.0 {
            return Err(PowerError::BatteryEmpty);
        }
        let max = self.max_power();
        if power.value() > max.value() {
            return Err(PowerError::Overload {
                requested: power,
                available: max,
            });
        }
        // Energy leaves the cell at the OCV rate (the I²R loss also comes
        // out of the cell), i.e. E_cell = OCV·I·dt.
        let ocv = self.ocv().value();
        let vt = self.terminal_voltage(power).value();
        let current = if vt > 0.0 { power.value() / vt } else { 0.0 };
        let cell_energy = Joules(ocv * current * dt.value());
        self.soc = (self.soc - cell_energy.value() / self.capacity.value()).max(0.0);
        self.energy_delivered += power * dt;
        Ok(())
    }

    fn energy_delivered(&self) -> Joules {
        self.energy_delivered
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "battery {:.0}% (ocv {:.2}, {:.0} of {:.0})",
            self.soc * 100.0,
            self.ocv(),
            self.remaining(),
            self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cell() -> Battery {
        Battery::new(Joules(38_800.0), 0.08, 1.0).unwrap()
    }

    #[test]
    fn ocv_tracks_soc() {
        let full = Battery::new(Joules(1000.0), 0.1, 1.0).unwrap();
        let half = Battery::new(Joules(1000.0), 0.1, 0.5).unwrap();
        let empty = Battery::new(Joules(1000.0), 0.1, 0.0).unwrap();
        assert_eq!(full.ocv(), Volts(4.35));
        assert_eq!(half.ocv(), Volts(3.80));
        assert_eq!(empty.ocv(), Volts(3.40));
        // Interpolation between knots.
        let b = Battery::new(Joules(1000.0), 0.1, 0.375).unwrap();
        assert!((b.ocv().value() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn terminal_voltage_sags_with_load() {
        let b = full_cell();
        let v0 = b.terminal_voltage(Watts(0.0));
        let v5 = b.terminal_voltage(Watts(5.0));
        let v10 = b.terminal_voltage(Watts(10.0));
        assert!(v0 > v5 && v5 > v10);
        // Sanity: 5 W from 4.35 V / 0.08 Ω sags by roughly I·R ≈ 0.095 V.
        assert!((v0.value() - v5.value() - 0.095).abs() < 0.01);
    }

    #[test]
    fn zero_resistance_cell_never_sags() {
        let b = Battery::new(Joules(1000.0), 0.0, 0.8).unwrap();
        assert_eq!(b.terminal_voltage(Watts(50.0)), b.ocv());
        assert_eq!(b.max_power(), Watts(f64::INFINITY));
    }

    #[test]
    fn drawing_discharges() {
        let mut b = full_cell();
        let before = b.soc();
        b.draw(Watts(4.0), Seconds(600.0)).unwrap();
        assert!(b.soc() < before);
        assert!((b.energy_delivered().value() - 2400.0).abs() < 1e-9);
        // Cell drains slightly more than delivered energy (I²R loss).
        let drained = (before - b.soc()) * 38_800.0;
        assert!(drained > 2400.0, "drained {drained}");
        assert!(drained < 2600.0, "implausible loss {drained}");
    }

    #[test]
    fn empty_battery_refuses() {
        let mut b = Battery::new(Joules(100.0), 0.05, 0.001).unwrap();
        // Drain it dry.
        while b.soc() > 0.0 {
            if b.draw(Watts(1.0), Seconds(1.0)).is_err() {
                break;
            }
        }
        assert_eq!(
            b.draw(Watts(1.0), Seconds(1.0)),
            Err(PowerError::BatteryEmpty)
        );
    }

    #[test]
    fn overload_is_reported() {
        let mut b = Battery::new(Joules(1000.0), 1.0, 1.0).unwrap();
        // max power = 4.35²/4 ≈ 4.73 W at 1 Ω.
        let max = b.max_power();
        assert!((max.value() - 4.35 * 4.35 / 4.0).abs() < 1e-9);
        match b.draw(Watts(10.0), Seconds(1.0)) {
            Err(PowerError::Overload { requested, .. }) => assert_eq!(requested, Watts(10.0)),
            other => panic!("expected overload, got {other:?}"),
        }
        // Voltage collapses to OCV/2 beyond max power.
        assert!((b.terminal_voltage(Watts(100.0)).value() - 4.35 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(Battery::new(Joules(0.0), 0.1, 0.5).is_err());
        assert!(Battery::new(Joules(100.0), -0.1, 0.5).is_err());
        assert!(Battery::new(Joules(100.0), 0.1, 1.5).is_err());
        assert!(Battery::new(Joules(100.0), 0.1, -0.1).is_err());
        let mut b = full_cell();
        assert!(b.draw(Watts(-1.0), Seconds(1.0)).is_err());
        assert!(b.draw(Watts(1.0), Seconds(0.0)).is_err());
    }

    #[test]
    fn mostly_full_g5_battery_stays_above_throttle_region() {
        // The Fig 10 mechanism: a healthy, mostly-charged battery presents
        // well above 3.85 V even under a full CPU load, so the OS does not
        // throttle; a Monsoon programmed to exactly 3.85 V does.
        let b = Battery::new(Joules(38_800.0), 0.08, 0.9).unwrap();
        let v = b.terminal_voltage(Watts(6.0));
        assert!(v > Volts(3.95), "loaded battery voltage {v}");
    }

    #[test]
    fn display_is_informative() {
        let b = full_cell();
        let s = format!("{b}");
        assert!(s.contains("100%"));
    }
}
