//! Energy metering over experiment windows.
//!
//! The paper reports energy per workload phase: the meter is armed when the
//! workload starts and read when it ends. [`EnergyMeter`] accumulates
//! power × time samples and exposes the aggregate statistics experiments
//! need (total energy, average power, peak power, duration).

use crate::PowerError;
use core::fmt;
use pv_units::{Joules, Seconds, Watts};

/// Integrates power samples into energy over a measurement window.
///
/// # Examples
///
/// ```
/// use pv_power::EnergyMeter;
/// use pv_units::{Seconds, Watts};
///
/// let mut meter = EnergyMeter::new();
/// meter.record(Watts(2.0), Seconds(10.0))?;
/// meter.record(Watts(4.0), Seconds(10.0))?;
/// assert_eq!(meter.energy().value(), 60.0);
/// assert_eq!(meter.average_power().unwrap().value(), 3.0);
/// # Ok::<(), pv_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    energy: Joules,
    elapsed: Seconds,
    peak: Watts,
    samples: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the load drew `power` for `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative/non-finite
    /// power or non-positive `dt`.
    pub fn record(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError> {
        if !(power.value() >= 0.0 && power.is_finite()) {
            return Err(PowerError::InvalidParameter("power must be >= 0"));
        }
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(PowerError::InvalidParameter("dt must be > 0"));
        }
        self.energy += power * dt;
        self.elapsed += dt;
        self.peak = self.peak.max(power);
        self.samples += 1;
        Ok(())
    }

    /// Total energy accumulated.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total time accumulated.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Mean power over the window; `None` before any sample.
    pub fn average_power(&self) -> Option<Watts> {
        if self.elapsed.value() > 0.0 {
            Some(self.energy / self.elapsed)
        } else {
            None
        }
    }

    /// Highest instantaneous power recorded.
    pub fn peak_power(&self) -> Watts {
        self.peak
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Zeroes the meter for the next measurement window.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} over {:.1} (avg {:.3}, peak {:.3})",
            self.energy,
            self.elapsed,
            self.average_power().unwrap_or(Watts::ZERO),
            self.peak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_piecewise_constant_power() {
        let mut m = EnergyMeter::new();
        m.record(Watts(1.0), Seconds(5.0)).unwrap();
        m.record(Watts(3.0), Seconds(5.0)).unwrap();
        assert_eq!(m.energy(), Joules(20.0));
        assert_eq!(m.elapsed(), Seconds(10.0));
        assert_eq!(m.average_power(), Some(Watts(2.0)));
        assert_eq!(m.peak_power(), Watts(3.0));
        assert_eq!(m.samples(), 2);
    }

    #[test]
    fn fresh_meter_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.average_power(), None);
        assert_eq!(m.peak_power(), Watts::ZERO);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut m = EnergyMeter::new();
        m.record(Watts(5.0), Seconds(1.0)).unwrap();
        m.reset();
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn zero_power_accumulates_time_only() {
        let mut m = EnergyMeter::new();
        m.record(Watts(0.0), Seconds(5.0)).unwrap();
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.elapsed(), Seconds(5.0));
        assert_eq!(m.average_power(), Some(Watts::ZERO));
    }

    #[test]
    fn validates_inputs() {
        let mut m = EnergyMeter::new();
        assert!(m.record(Watts(-1.0), Seconds(1.0)).is_err());
        assert!(m.record(Watts(1.0), Seconds(0.0)).is_err());
        assert!(m.record(Watts(f64::INFINITY), Seconds(1.0)).is_err());
        assert!(m.record(Watts(1.0), Seconds(f64::NAN)).is_err());
        // Failed records leave the meter untouched.
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn display_shows_energy() {
        let mut m = EnergyMeter::new();
        m.record(Watts(2.0), Seconds(3.0)).unwrap();
        assert!(format!("{m}").contains("6.00 J"));
    }
}
