//! Energy metering over experiment windows.
//!
//! The paper reports energy per workload phase: the meter is armed when the
//! workload starts and read when it ends. [`EnergyMeter`] accumulates
//! power × time samples and exposes the aggregate statistics experiments
//! need (total energy, average power, peak power, duration).

use crate::PowerError;
use core::fmt;
use pv_faults::{FaultHandle, FaultKind};
use pv_units::{Joules, Seconds, Watts};

/// Integrates power samples into energy over a measurement window.
///
/// # Examples
///
/// ```
/// use pv_power::EnergyMeter;
/// use pv_units::{Seconds, Watts};
///
/// let mut meter = EnergyMeter::new();
/// meter.record(Watts(2.0), Seconds(10.0))?;
/// meter.record(Watts(4.0), Seconds(10.0))?;
/// assert_eq!(meter.energy().value(), 60.0);
/// assert_eq!(meter.average_power().unwrap().value(), 3.0);
/// # Ok::<(), pv_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    energy: Joules,
    elapsed: Seconds,
    peak: Watts,
    samples: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the load drew `power` for `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative/non-finite
    /// power or non-positive `dt`.
    pub fn record(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError> {
        if !(power.value() >= 0.0 && power.is_finite()) {
            return Err(PowerError::InvalidParameter("power must be >= 0"));
        }
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(PowerError::InvalidParameter("dt must be > 0"));
        }
        self.energy += power * dt;
        self.elapsed += dt;
        self.peak = self.peak.max(power);
        self.samples += 1;
        Ok(())
    }

    /// Total energy accumulated.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total time accumulated.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Mean power over the window; `None` before any sample.
    pub fn average_power(&self) -> Option<Watts> {
        if self.elapsed.value() > 0.0 {
            Some(self.energy / self.elapsed)
        } else {
            None
        }
    }

    /// Highest instantaneous power recorded.
    pub fn peak_power(&self) -> Watts {
        self.peak
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Zeroes the meter for the next measurement window.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// An [`EnergyMeter`] recorded through a fault-injection gate.
///
/// With a disarmed [`FaultHandle`] (the default) every record is a plain
/// pass-through and the accumulated statistics are bit-identical to the
/// inner meter's. With an armed handle, three meter fault kinds apply at
/// record time:
///
/// * [`FaultKind::MeterDisconnect`] — records fail with
///   [`PowerError::MeterDisconnected`] while the fault window is active.
/// * [`FaultKind::MeterMissedSample`] — the sample is silently dropped
///   (energy and time are simply not accumulated, as when a real meter's
///   USB buffer overruns).
/// * [`FaultKind::MeterGainDrift`] — recorded power is scaled by
///   `1 + magnitude` (multiplicative calibration error).
#[derive(Debug, Clone, Default)]
pub struct FaultyMeter {
    inner: EnergyMeter,
    faults: FaultHandle,
}

impl FaultyMeter {
    /// Creates a zeroed meter gated on `faults`.
    pub fn new(faults: FaultHandle) -> Self {
        Self {
            inner: EnergyMeter::new(),
            faults,
        }
    }

    /// Records that the load drew `power` for `dt`, subject to active
    /// meter faults.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::MeterDisconnected`] while a disconnect window
    /// is active, and propagates [`EnergyMeter::record`] validation errors.
    pub fn record(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError> {
        if let Some(e) = self.faults.active(FaultKind::MeterDisconnect) {
            self.faults
                .report_once(&e, "meter disconnected; sample lost");
            return Err(PowerError::MeterDisconnected);
        }
        if let Some(e) = self.faults.active(FaultKind::MeterMissedSample) {
            self.faults
                .report_once(&e, "meter missed samples (buffer overrun)");
            return Ok(());
        }
        let mut power = power;
        if let Some(e) = self.faults.active(FaultKind::MeterGainDrift) {
            power = Watts(power.value() * (1.0 + e.magnitude));
            self.faults.report_once(
                &e,
                format!("meter gain drifted by {:+.1}%", e.magnitude * 100.0),
            );
        }
        self.inner.record(power, dt)
    }

    /// Total energy accumulated.
    pub fn energy(&self) -> Joules {
        self.inner.energy()
    }

    /// Total time accumulated.
    pub fn elapsed(&self) -> Seconds {
        self.inner.elapsed()
    }

    /// Mean power over the window; `None` before any sample.
    pub fn average_power(&self) -> Option<Watts> {
        self.inner.average_power()
    }

    /// Highest instantaneous power recorded.
    pub fn peak_power(&self) -> Watts {
        self.inner.peak_power()
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.inner.samples()
    }

    /// Zeroes the meter for the next measurement window. The fault handle
    /// (and its clock) is untouched.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Shared view of the meter's fault handle.
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }

    /// The wrapped meter's aggregate state.
    pub fn inner(&self) -> &EnergyMeter {
        &self.inner
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} over {:.1} (avg {:.3}, peak {:.3})",
            self.energy,
            self.elapsed,
            self.average_power().unwrap_or(Watts::ZERO),
            self.peak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_piecewise_constant_power() {
        let mut m = EnergyMeter::new();
        m.record(Watts(1.0), Seconds(5.0)).unwrap();
        m.record(Watts(3.0), Seconds(5.0)).unwrap();
        assert_eq!(m.energy(), Joules(20.0));
        assert_eq!(m.elapsed(), Seconds(10.0));
        assert_eq!(m.average_power(), Some(Watts(2.0)));
        assert_eq!(m.peak_power(), Watts(3.0));
        assert_eq!(m.samples(), 2);
    }

    #[test]
    fn fresh_meter_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.average_power(), None);
        assert_eq!(m.peak_power(), Watts::ZERO);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut m = EnergyMeter::new();
        m.record(Watts(5.0), Seconds(1.0)).unwrap();
        m.reset();
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn zero_power_accumulates_time_only() {
        let mut m = EnergyMeter::new();
        m.record(Watts(0.0), Seconds(5.0)).unwrap();
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.elapsed(), Seconds(5.0));
        assert_eq!(m.average_power(), Some(Watts::ZERO));
    }

    #[test]
    fn validates_inputs() {
        let mut m = EnergyMeter::new();
        assert!(m.record(Watts(-1.0), Seconds(1.0)).is_err());
        assert!(m.record(Watts(1.0), Seconds(0.0)).is_err());
        assert!(m.record(Watts(f64::INFINITY), Seconds(1.0)).is_err());
        assert!(m.record(Watts(1.0), Seconds(f64::NAN)).is_err());
        // Failed records leave the meter untouched.
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn disarmed_faulty_meter_matches_plain() {
        let mut plain = EnergyMeter::new();
        let mut gated = FaultyMeter::new(FaultHandle::disarmed());
        for i in 1..=20 {
            let p = Watts(f64::from(i) * 0.37);
            plain.record(p, Seconds(0.1)).unwrap();
            gated.record(p, Seconds(0.1)).unwrap();
        }
        assert_eq!(*gated.inner(), plain);
    }

    #[test]
    fn meter_faults_apply_in_window() {
        use pv_faults::{FaultEvent, FaultPlan};
        let plan = FaultPlan::empty()
            .with_event(FaultEvent {
                at: 1.0,
                duration: 1.0,
                kind: FaultKind::MeterMissedSample,
                magnitude: 0.0,
            })
            .with_event(FaultEvent {
                at: 3.0,
                duration: 1.0,
                kind: FaultKind::MeterGainDrift,
                magnitude: 0.5,
            })
            .with_event(FaultEvent {
                at: 5.0,
                duration: 1.0,
                kind: FaultKind::MeterDisconnect,
                magnitude: 0.0,
            });
        let handle = FaultHandle::armed(plan);
        let mut m = FaultyMeter::new(handle.clone());
        // t = 0: clean sample.
        m.record(Watts(2.0), Seconds(1.0)).unwrap();
        // t = 1: missed sample — accepted but not accumulated.
        handle.advance(1.0);
        m.record(Watts(2.0), Seconds(1.0)).unwrap();
        assert_eq!(m.samples(), 1);
        assert_eq!(m.energy(), Joules(2.0));
        // t = 3: gain drift scales recorded power by 1.5.
        handle.advance(2.0);
        m.record(Watts(2.0), Seconds(1.0)).unwrap();
        assert_eq!(m.energy(), Joules(2.0 + 3.0));
        // t = 5: disconnected.
        handle.advance(2.0);
        assert_eq!(
            m.record(Watts(2.0), Seconds(1.0)),
            Err(PowerError::MeterDisconnected)
        );
        // t = 7: window passed; clean again.
        handle.advance(2.0);
        m.record(Watts(2.0), Seconds(1.0)).unwrap();
        assert_eq!(m.energy(), Joules(7.0));
        assert_eq!(handle.report_count(), 3);
    }

    #[test]
    fn display_shows_energy() {
        let mut m = EnergyMeter::new();
        m.record(Watts(2.0), Seconds(3.0)).unwrap();
        assert!(format!("{m}").contains("6.00 J"));
    }
}
