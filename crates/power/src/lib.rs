//! Power delivery and energy measurement.
//!
//! The paper powers every device from a Monsoon Power Monitor instead of its
//! battery, "configured to provide the nominal voltage for each device as
//! specified by the manufacturer" (§III) — until the LG G5 revealed that the
//! OS throttles on *input voltage*, requiring the Monsoon to be raised to
//! the battery's 4.4 V maximum (Fig 10). Reproducing that experiment needs
//! both supplies:
//!
//! * [`Monsoon`] — an ideal programmable source with per-sample current
//!   logging and energy integration, like the real instrument.
//! * [`Battery`] — a Li-ion cell: open-circuit voltage falling with state of
//!   charge, internal resistance causing sag under load.
//!
//! Both implement [`PowerSupply`], the interface the device simulator draws
//! from, and [`EnergyMeter`] accumulates what the paper reports: joules over
//! the workload window.
//!
//! # Examples
//!
//! ```
//! use pv_power::{Monsoon, PowerSupply};
//! use pv_units::{Seconds, Volts, Watts};
//!
//! let mut monsoon = Monsoon::new(Volts(4.4))?;
//! let v = monsoon.terminal_voltage(Watts(3.3));
//! assert_eq!(v, Volts(4.4)); // ideal source: no sag
//! monsoon.draw(Watts(3.3), Seconds(10.0))?;
//! assert!((monsoon.energy_delivered().value() - 33.0).abs() < 1e-9);
//! # Ok::<(), pv_power::PowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod meter;

pub use battery::Battery;
pub use meter::{EnergyMeter, FaultyMeter};

use core::fmt;
use pv_units::{Amperes, Joules, Seconds, Volts, Watts};

/// Error type for power-delivery models.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A parameter was outside its physical domain.
    InvalidParameter(&'static str),
    /// The requested load exceeds what the supply can deliver.
    Overload {
        /// Power that was requested.
        requested: Watts,
        /// Maximum the supply can deliver in its current state.
        available: Watts,
    },
    /// The battery is exhausted.
    BatteryEmpty,
    /// The energy meter dropped off the measurement bus (injected fault).
    /// Transient: reconnects when the fault window passes.
    MeterDisconnected,
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            PowerError::Overload {
                requested,
                available,
            } => write!(f, "load of {requested:.3} exceeds available {available:.3}"),
            PowerError::BatteryEmpty => write!(f, "battery is empty"),
            PowerError::MeterDisconnected => {
                write!(f, "energy meter disconnected from the measurement bus")
            }
        }
    }
}

impl std::error::Error for PowerError {}

/// A source that powers the device under test.
///
/// The device simulator calls [`terminal_voltage`](Self::terminal_voltage)
/// each step (the OS samples this for input-voltage throttling) and
/// [`draw`](Self::draw) to account the energy consumed over the step.
///
/// Supplies are owned by devices that migrate across worker threads in
/// parallel fleet sweeps, so implementations must be `Send`.
pub trait PowerSupply: fmt::Debug + Send {
    /// Voltage at the device's power input under the given load.
    ///
    /// For an ideal source this is the programmed voltage; for a battery it
    /// sags with load through the internal resistance.
    fn terminal_voltage(&self, load: Watts) -> Volts;

    /// Draws `power` for `dt`, updating supply state (energy counters,
    /// battery charge).
    ///
    /// # Errors
    ///
    /// Implementations return [`PowerError`] for invalid arguments, for
    /// loads beyond their capability, or when exhausted.
    fn draw(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError>;

    /// Total energy delivered since construction (or last reset).
    fn energy_delivered(&self) -> Joules;

    /// Clones the supply behind the trait object, preserving its full state
    /// (programmed voltage, charge, energy counters).
    ///
    /// Supervised sweeps retry a failed session on a *pristine* copy of the
    /// device, which requires cloning a `Box<dyn PowerSupply>`.
    fn clone_box(&self) -> Box<dyn PowerSupply>;
}

impl Clone for Box<dyn PowerSupply> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The Monsoon Power Monitor: an ideal programmable bench supply with
/// current measurement.
///
/// The real instrument samples current at 5 kHz; this model integrates
/// exactly, which is the limit of infinitely fast sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Monsoon {
    voltage: Volts,
    energy: Joules,
    peak_current: Amperes,
    samples: u64,
}

impl Monsoon {
    /// Creates a Monsoon programmed to `voltage`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive or
    /// non-finite voltage.
    pub fn new(voltage: Volts) -> Result<Self, PowerError> {
        if !(voltage.value() > 0.0 && voltage.is_finite()) {
            return Err(PowerError::InvalidParameter("voltage must be > 0"));
        }
        Ok(Self {
            voltage,
            energy: Joules::ZERO,
            peak_current: Amperes::ZERO,
            samples: 0,
        })
    }

    /// Reprograms the output voltage (the Fig 10 experiment raises the LG G5
    /// supply from 3.85 V to 4.4 V).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive or
    /// non-finite voltage.
    pub fn set_voltage(&mut self, voltage: Volts) -> Result<(), PowerError> {
        if !(voltage.value() > 0.0 && voltage.is_finite()) {
            return Err(PowerError::InvalidParameter("voltage must be > 0"));
        }
        self.voltage = voltage;
        Ok(())
    }

    /// The programmed output voltage.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Highest instantaneous current observed.
    pub fn peak_current(&self) -> Amperes {
        self.peak_current
    }

    /// Number of draw samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Clears the energy counter and sample statistics (between experiment
    /// iterations).
    pub fn reset_counters(&mut self) {
        self.energy = Joules::ZERO;
        self.peak_current = Amperes::ZERO;
        self.samples = 0;
    }
}

impl PowerSupply for Monsoon {
    fn terminal_voltage(&self, _load: Watts) -> Volts {
        self.voltage
    }

    fn clone_box(&self) -> Box<dyn PowerSupply> {
        Box::new(self.clone())
    }

    fn draw(&mut self, power: Watts, dt: Seconds) -> Result<(), PowerError> {
        if !(power.value() >= 0.0 && power.is_finite()) {
            return Err(PowerError::InvalidParameter("power must be >= 0"));
        }
        if !(dt.value() > 0.0 && dt.is_finite()) {
            return Err(PowerError::InvalidParameter("dt must be > 0"));
        }
        self.energy += power * dt;
        let current = power / self.voltage;
        self.peak_current = self.peak_current.max(current);
        self.samples += 1;
        Ok(())
    }

    fn energy_delivered(&self) -> Joules {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monsoon_is_ideal() {
        let m = Monsoon::new(Volts(3.85)).unwrap();
        assert_eq!(m.terminal_voltage(Watts(0.0)), Volts(3.85));
        assert_eq!(m.terminal_voltage(Watts(100.0)), Volts(3.85));
    }

    #[test]
    fn monsoon_integrates_energy() {
        let mut m = Monsoon::new(Volts(4.0)).unwrap();
        m.draw(Watts(2.0), Seconds(30.0)).unwrap();
        m.draw(Watts(4.0), Seconds(15.0)).unwrap();
        assert!((m.energy_delivered().value() - 120.0).abs() < 1e-12);
        assert_eq!(m.samples(), 2);
        // Peak current = 4 W / 4 V = 1 A.
        assert!((m.peak_current().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monsoon_reset_counters() {
        let mut m = Monsoon::new(Volts(4.0)).unwrap();
        m.draw(Watts(2.0), Seconds(1.0)).unwrap();
        m.reset_counters();
        assert_eq!(m.energy_delivered(), Joules::ZERO);
        assert_eq!(m.samples(), 0);
        assert_eq!(m.peak_current(), Amperes::ZERO);
    }

    #[test]
    fn monsoon_reprogramming() {
        let mut m = Monsoon::new(Volts(3.85)).unwrap();
        m.set_voltage(Volts(4.4)).unwrap();
        assert_eq!(m.voltage(), Volts(4.4));
        assert!(m.set_voltage(Volts(0.0)).is_err());
        assert!(m.set_voltage(Volts(f64::NAN)).is_err());
    }

    #[test]
    fn monsoon_validates() {
        assert!(Monsoon::new(Volts(0.0)).is_err());
        assert!(Monsoon::new(Volts(-1.0)).is_err());
        let mut m = Monsoon::new(Volts(4.0)).unwrap();
        assert!(m.draw(Watts(-1.0), Seconds(1.0)).is_err());
        assert!(m.draw(Watts(1.0), Seconds(0.0)).is_err());
        assert!(m.draw(Watts(f64::NAN), Seconds(1.0)).is_err());
    }

    #[test]
    fn error_display() {
        assert!(!format!("{}", PowerError::BatteryEmpty).is_empty());
        assert!(!format!(
            "{}",
            PowerError::Overload {
                requested: Watts(10.0),
                available: Watts(5.0)
            }
        )
        .is_empty());
    }
}
