//! Property-style tests for power-delivery invariants, swept over seeded
//! random samples (deterministic across runs).

use pv_power::{Battery, EnergyMeter, Monsoon, PowerSupply};
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_units::{Joules, Seconds, Volts, Watts};

const CASES: usize = 200;

#[test]
fn monsoon_energy_equals_sum_of_draws() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..CASES {
        let voltage = rng.gen_range(3.0..5.0);
        let n = rng.gen_range(1..50usize);
        let draws: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.01..10.0)))
            .collect();
        let mut m = Monsoon::new(Volts(voltage)).unwrap();
        let mut expected = 0.0;
        for &(p, dt) in &draws {
            m.draw(Watts(p), Seconds(dt)).unwrap();
            expected += p * dt;
        }
        assert!((m.energy_delivered().value() - expected).abs() < 1e-9 * expected.max(1.0));
        assert_eq!(m.samples(), draws.len() as u64);
        // Terminal voltage never sags.
        assert_eq!(m.terminal_voltage(Watts(100.0)), Volts(voltage));
    }
}

#[test]
fn battery_voltage_is_monotone_in_soc() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..CASES {
        let soc1 = rng.gen_range(0.0..1.0);
        let soc2 = rng.gen_range(0.0..1.0);
        let load = rng.gen_range(0.0..3.0);
        let (lo, hi) = if soc1 <= soc2 {
            (soc1, soc2)
        } else {
            (soc2, soc1)
        };
        let a = Battery::new(Joules(40_000.0), 0.08, lo).unwrap();
        let b = Battery::new(Joules(40_000.0), 0.08, hi).unwrap();
        assert!(b.ocv() >= a.ocv());
        assert!(
            b.terminal_voltage(Watts(load)).value()
                >= a.terminal_voltage(Watts(load)).value() - 1e-12
        );
    }
}

#[test]
fn battery_sag_is_monotone_in_load() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..CASES {
        let soc = rng.gen_range(0.1..1.0);
        let l1 = rng.gen_range(0.0..5.0);
        let l2 = rng.gen_range(0.0..5.0);
        let b = Battery::new(Joules(40_000.0), 0.08, soc).unwrap();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        assert!(
            b.terminal_voltage(Watts(hi)).value() <= b.terminal_voltage(Watts(lo)).value() + 1e-12
        );
        // Never above OCV, never below OCV/2.
        assert!(b.terminal_voltage(Watts(hi)) <= b.ocv());
        assert!(b.terminal_voltage(Watts(hi)).value() >= b.ocv().value() / 2.0 - 1e-12);
    }
}

#[test]
fn battery_cell_drain_at_least_energy_delivered() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..CASES {
        let soc = rng.gen_range(0.5..1.0);
        let power = rng.gen_range(0.1..4.0);
        let dt = rng.gen_range(0.1..30.0);
        let capacity = 40_000.0;
        let mut b = Battery::new(Joules(capacity), 0.08, soc).unwrap();
        let before = b.remaining().value();
        b.draw(Watts(power), Seconds(dt)).unwrap();
        let drained = before - b.remaining().value();
        let delivered = power * dt;
        // I²R loss means the cell loses at least the delivered energy.
        assert!(drained >= delivered - 1e-9);
        // And not absurdly more (losses bounded by the sag fraction).
        assert!(drained <= delivered * 1.5);
        assert!((b.energy_delivered().value() - delivered).abs() < 1e-9);
    }
}

#[test]
fn meter_matches_manual_integration() {
    let mut rng = StdRng::seed_from_u64(205);
    for _ in 0..CASES {
        let n = rng.gen_range(1..60usize);
        let records: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..20.0), rng.gen_range(0.01..10.0)))
            .collect();
        let mut meter = EnergyMeter::new();
        let mut energy = 0.0;
        let mut time = 0.0;
        let mut peak = 0.0f64;
        for &(p, dt) in &records {
            meter.record(Watts(p), Seconds(dt)).unwrap();
            energy += p * dt;
            time += dt;
            peak = peak.max(p);
        }
        assert!((meter.energy().value() - energy).abs() < 1e-9 * energy.max(1.0));
        assert!((meter.elapsed().value() - time).abs() < 1e-9 * time.max(1.0));
        assert!((meter.peak_power().value() - peak).abs() < 1e-12);
        let avg = meter.average_power().unwrap().value();
        assert!((avg - energy / time).abs() < 1e-9 * (energy / time).max(1.0));
    }
}
