//! Property-based tests for power-delivery invariants.

use proptest::prelude::*;
use pv_power::{Battery, EnergyMeter, Monsoon, PowerSupply};
use pv_units::{Joules, Seconds, Volts, Watts};

proptest! {
    #[test]
    fn monsoon_energy_equals_sum_of_draws(
        voltage in 3.0..5.0f64,
        draws in proptest::collection::vec((0.0..10.0f64, 0.01..10.0f64), 1..50),
    ) {
        let mut m = Monsoon::new(Volts(voltage)).unwrap();
        let mut expected = 0.0;
        for &(p, dt) in &draws {
            m.draw(Watts(p), Seconds(dt)).unwrap();
            expected += p * dt;
        }
        prop_assert!((m.energy_delivered().value() - expected).abs() < 1e-9 * expected.max(1.0));
        prop_assert_eq!(m.samples(), draws.len() as u64);
        // Terminal voltage never sags.
        prop_assert_eq!(m.terminal_voltage(Watts(100.0)), Volts(voltage));
    }

    #[test]
    fn battery_voltage_is_monotone_in_soc(
        soc1 in 0.0..1.0f64,
        soc2 in 0.0..1.0f64,
        load in 0.0..3.0f64,
    ) {
        let (lo, hi) = if soc1 <= soc2 { (soc1, soc2) } else { (soc2, soc1) };
        let a = Battery::new(Joules(40_000.0), 0.08, lo).unwrap();
        let b = Battery::new(Joules(40_000.0), 0.08, hi).unwrap();
        prop_assert!(b.ocv() >= a.ocv());
        prop_assert!(b.terminal_voltage(Watts(load)).value() >= a.terminal_voltage(Watts(load)).value() - 1e-12);
    }

    #[test]
    fn battery_sag_is_monotone_in_load(
        soc in 0.1..1.0f64,
        l1 in 0.0..5.0f64,
        l2 in 0.0..5.0f64,
    ) {
        let b = Battery::new(Joules(40_000.0), 0.08, soc).unwrap();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(b.terminal_voltage(Watts(hi)).value() <= b.terminal_voltage(Watts(lo)).value() + 1e-12);
        // Never above OCV, never below OCV/2.
        prop_assert!(b.terminal_voltage(Watts(hi)) <= b.ocv());
        prop_assert!(b.terminal_voltage(Watts(hi)).value() >= b.ocv().value() / 2.0 - 1e-12);
    }

    #[test]
    fn battery_cell_drain_at_least_energy_delivered(
        soc in 0.5..1.0f64,
        power in 0.1..4.0f64,
        dt in 0.1..30.0f64,
    ) {
        let capacity = 40_000.0;
        let mut b = Battery::new(Joules(capacity), 0.08, soc).unwrap();
        let before = b.remaining().value();
        b.draw(Watts(power), Seconds(dt)).unwrap();
        let drained = before - b.remaining().value();
        let delivered = power * dt;
        // I²R loss means the cell loses at least the delivered energy.
        prop_assert!(drained >= delivered - 1e-9);
        // And not absurdly more (losses bounded by the sag fraction).
        prop_assert!(drained <= delivered * 1.5);
        prop_assert!((b.energy_delivered().value() - delivered).abs() < 1e-9);
    }

    #[test]
    fn meter_matches_manual_integration(
        records in proptest::collection::vec((0.0..20.0f64, 0.01..10.0f64), 1..60),
    ) {
        let mut meter = EnergyMeter::new();
        let mut energy = 0.0;
        let mut time = 0.0;
        let mut peak = 0.0f64;
        for &(p, dt) in &records {
            meter.record(Watts(p), Seconds(dt)).unwrap();
            energy += p * dt;
            time += dt;
            peak = peak.max(p);
        }
        prop_assert!((meter.energy().value() - energy).abs() < 1e-9 * energy.max(1.0));
        prop_assert!((meter.elapsed().value() - time).abs() < 1e-9 * time.max(1.0));
        prop_assert!((meter.peak_power().value() - peak).abs() < 1e-12);
        let avg = meter.average_power().unwrap().value();
        prop_assert!((avg - energy / time).abs() < 1e-9 * (energy / time).max(1.0));
    }
}
