//! Resilience integration tests: fault-ridden sessions and fleet sweeps.
//!
//! The acceptance bar for the fault-injection layer: a crowd of 100+
//! simulated devices with a ~10 % per-iteration transient-fault rate runs
//! to completion with a verdict for every device, sessions that only hit
//! brief transient faults still validate, and identical fault seeds replay
//! identically.

use accubench::crowd::{populate_resilient, CrowdDatabase, SweepConfig};
use accubench::harness::{Ambient, Harness, QualityGates, RetryPolicy};
use accubench::protocol::Protocol;
use accubench::session::Verdict;
use pv_faults::{FaultEvent, FaultHandle, FaultKind, FaultPlan, ALL_KINDS};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_soc::faulty::FaultyDevice;
use pv_units::{Celsius, Seconds};

/// Short protocol so the 100-device sweep stays fast.
fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

/// One clean quick() iteration lasts roughly this long in simulated time
/// (20 s warmup + a short cooldown + 30 s workload).
const APPROX_ITERATION_S: f64 = 150.0;

#[test]
fn hundred_device_faulty_sweep_completes_with_verdicts() {
    // Mean fault interval ≈ 10× the iteration length ⇒ ~10 % of iterations
    // hit a fault.
    let cfg = SweepConfig::clean(quick(), 3).with_faults(
        0xC0FFEE,
        Seconds(APPROX_ITERATION_S * 10.0),
        ALL_KINDS.to_vec(),
    );
    let mut db = CrowdDatabase::new(5.0).unwrap();
    let report = populate_resilient(&mut db, "Pixel", fleet(100), &cfg).unwrap();

    assert_eq!(report.outcomes.len(), 100);
    // Every device is accounted for: a verdict, or a recorded fatal error.
    for o in &report.outcomes {
        assert!(
            o.verdict.is_some() || o.error.is_some(),
            "{} has neither verdict nor error",
            o.device
        );
    }
    // At this fault rate the retry/quarantine machinery keeps the vast
    // majority of the fleet measurable.
    assert!(
        report.completed() >= 90,
        "only {} of 100 sessions completed",
        report.completed()
    );
    assert!(
        db.scores().len() >= 50,
        "only {} submissions accepted",
        db.scores().len()
    );
    // Faults genuinely fired somewhere in the fleet.
    let total_faults: usize = report.outcomes.iter().map(|o| o.fault_reports).sum();
    assert!(total_faults > 0, "sweep injected no faults at all");
}

#[test]
fn clean_sweep_accepts_everyone_as_valid() {
    let cfg = SweepConfig::clean(quick(), 3);
    let mut db = CrowdDatabase::new(5.0).unwrap();
    let report = populate_resilient(&mut db, "Pixel", fleet(10), &cfg).unwrap();
    assert_eq!(report.completed(), 10);
    assert_eq!(report.failed(), 0);
    for o in &report.outcomes {
        assert_eq!(o.verdict, Some(Verdict::Valid), "{}", o.device);
        assert_eq!(o.fault_reports, 0);
    }
    assert_eq!(db.scores().len(), 10);
}

/// A session that hits only a handful of brief transient faults — fewer
/// than the retry budget per slot — still completes every iteration and
/// earns a Valid verdict.
#[test]
fn few_transient_faults_still_validate() {
    // Three short dropouts spread across the session: each hits at most
    // one cooldown poll, which just waits for the next poll.
    let mut plan = FaultPlan::empty();
    for &at in &[25.0, 180.0, 400.0] {
        plan = plan.with_event(FaultEvent {
            at,
            duration: 4.0,
            kind: FaultKind::ProbeDropout,
            magnitude: 0.0,
        });
    }
    let handle = FaultHandle::armed(plan);
    let mut device = FaultyDevice::new(
        catalog::nexus5(pv_silicon::binning::BinId(1)).unwrap(),
        handle.clone(),
    );
    let mut harness = Harness::new(quick(), Ambient::Fixed(Celsius(26.0)))
        .unwrap()
        .with_faults(handle.clone());
    let session = harness.run_session(&mut device, 3).unwrap();
    assert_eq!(session.iterations.len(), 3);
    assert!(session.quarantined.is_empty());
    assert_eq!(session.verdict, Verdict::Valid);
}

/// Custom retry policies are honoured: with a single attempt allowed, a
/// permanent fault quarantines every slot after exactly one try.
#[test]
fn retry_policy_attempt_budget_is_respected() {
    let plan = FaultPlan::empty().with_event(FaultEvent {
        at: 0.0,
        duration: 1e9,
        kind: FaultKind::HotplugFlap,
        magnitude: 0.0,
    });
    let handle = FaultHandle::armed(plan);
    let mut device = FaultyDevice::new(
        catalog::nexus5(pv_silicon::binning::BinId(0)).unwrap(),
        handle.clone(),
    );
    let mut harness = Harness::new(quick(), Ambient::Fixed(Celsius(26.0)))
        .unwrap()
        .with_faults(handle.clone())
        .with_retry_policy(RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        });
    let session = harness.run_session(&mut device, 3).unwrap();
    assert!(session.iterations.is_empty());
    assert_eq!(session.quarantined.len(), 3);
    for q in &session.quarantined {
        assert_eq!(q.attempts, 1);
    }
    assert_eq!(session.verdict, Verdict::Invalid);
}

/// Permissive quality gates are honoured: when only one iteration survives
/// a permanent late fault, `min_valid_iterations: 1` downgrades the
/// verdict to Degraded instead of Invalid.
#[test]
fn quality_gates_are_configurable() {
    // Measure one clean iteration so the permanent fault starts after it.
    let clock = FaultHandle::armed(FaultPlan::empty());
    let mut probe_dev = FaultyDevice::new(
        catalog::nexus5(pv_silicon::binning::BinId(0)).unwrap(),
        clock.clone(),
    );
    let mut probe_h = Harness::new(quick(), Ambient::Fixed(Celsius(26.0)))
        .unwrap()
        .with_faults(clock.clone());
    probe_h.run_iteration(&mut probe_dev).unwrap();
    let first_iteration_ends = clock.now();

    let plan = FaultPlan::empty().with_event(FaultEvent {
        at: first_iteration_ends + 1.0,
        duration: 1e9,
        kind: FaultKind::HotplugFlap,
        magnitude: 0.0,
    });
    let handle = FaultHandle::armed(plan);
    let mut device = FaultyDevice::new(
        catalog::nexus5(pv_silicon::binning::BinId(0)).unwrap(),
        handle.clone(),
    );
    let mut harness = Harness::new(quick(), Ambient::Fixed(Celsius(26.0)))
        .unwrap()
        .with_faults(handle.clone())
        .with_quality_gates(QualityGates {
            min_valid_iterations: 1,
            ..QualityGates::default()
        });
    let session = harness.run_session(&mut device, 3).unwrap();
    assert_eq!(session.iterations.len(), 1);
    assert_eq!(session.quarantined.len(), 2);
    // One surviving iteration clears the permissive gate, but the
    // quarantines still taint the verdict.
    assert_eq!(session.verdict, Verdict::Degraded);
}

/// The same fault plan driven through the same session twice produces an
/// identical report sequence — fault injection is fully deterministic.
#[test]
fn fault_report_sequence_replays_identically() {
    let run = || {
        let plan = FaultPlan::generate(0xFEED, 600.0, 90.0, &ALL_KINDS);
        let handle = FaultHandle::armed(plan);
        let mut device = FaultyDevice::new(
            catalog::nexus5(pv_silicon::binning::BinId(2)).unwrap(),
            handle.clone(),
        );
        let mut harness = Harness::new(quick(), Ambient::paper_chamber().unwrap())
            .unwrap()
            .with_faults(handle.clone());
        let session = harness.run_session(&mut device, 2).unwrap();
        (session, handle.reports())
    };
    let (s1, r1) = run();
    let (s2, r2) = run();
    assert_eq!(s1, s2);
    assert_eq!(r1, r2);
}
