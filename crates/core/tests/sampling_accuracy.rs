//! Error-vs-oracle gate for the subsampling estimators: a sampled sweep's
//! mean/RSD/percentile estimates must land inside their own bootstrap
//! confidence intervals' reach of the full-fleet oracle, and within the
//! documented error band (DESIGN.md §16). Two oracles are checked:
//!
//! 1. a synthetic 100 000-unit population (pure estimator path, cheap), and
//! 2. a really-simulated fleet (the end-to-end flow `repro sweep --sample`
//!    uses: select indices → simulate only those devices → group retained
//!    scores by stratum → estimate), against the exhaustively simulated
//!    full-fleet oracle.
//!
//! Every seed is fixed, so these are deterministic gates, not statistical
//! coin flips.

use accubench::aggregate::ScoreAggregate;
use accubench::crowd::{populate_streamed, SweepConfig};
use accubench::journal::CancelToken;
use accubench::protocol::Protocol;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_silicon::binning::nexus5::N_BINS;
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_stats::sampling::{self, Estimates, Strategy, StratumSample};
use pv_stats::{quantile, Summary};

/// Documented error band (relative) for mean/p50/p90 at n = 2000 from a
/// 100k population — see DESIGN.md §16.
const REL_BAND: f64 = 0.02;
/// Documented absolute band for the RSD estimate, in percentage points.
const RSD_BAND_PP: f64 = 3.0;

const STRATA: usize = N_BINS as usize;

fn grades(pop: usize) -> Vec<f64> {
    (0..pop)
        .map(|i| 0.05 + 0.9 * (i as f64) / (pop.max(2) - 1) as f64)
        .collect()
}

/// Groups measured responses by selection group, in group order.
fn measured_groups(
    selection: &sampling::Selection,
    score_of: impl Fn(usize) -> f64,
) -> Vec<StratumSample> {
    selection
        .groups
        .iter()
        .map(|g| StratumSample {
            weight: g.weight,
            values: g.indices.iter().map(|&i| score_of(i)).collect(),
        })
        .collect()
}

struct Oracle {
    mean: f64,
    rsd: f64,
    p50: f64,
    p90: f64,
}

/// The full-fleet oracle: the same weighted estimator applied to the
/// entire population as one census group, so sampled-vs-oracle error is
/// pure sampling error, not a quantile-definition mismatch. The synthetic
/// test cross-checks this definition against [`Summary`]/[`quantile`].
fn oracle_of(scores: &[f64]) -> Oracle {
    let census = [StratumSample {
        weight: 1.0,
        values: scores.to_vec(),
    }];
    let est = sampling::estimate(&census, 0.95, 1, 0).unwrap();
    Oracle {
        mean: est.mean.point,
        rsd: est.rsd_percent.point,
        p50: est.p50.point,
        p90: est.p90.point,
    }
}

fn assert_covers(tag: &str, est: &Estimates, oracle: &Oracle) {
    // Each estimate's bootstrap CI must reach the oracle value…
    assert!(
        est.mean.contains(oracle.mean),
        "{tag}: mean CI [{:.4}, {:.4}] misses oracle {:.4}",
        est.mean.lo,
        est.mean.hi,
        oracle.mean
    );
    assert!(
        est.rsd_percent.contains(oracle.rsd),
        "{tag}: RSD CI [{:.4}, {:.4}] misses oracle {:.4}",
        est.rsd_percent.lo,
        est.rsd_percent.hi,
        oracle.rsd
    );
    // Quantile CIs are checked with the documented band as padding: on
    // plateaued (discretized) score distributions the percentile bootstrap
    // of a quantile collapses onto the plateau values, so a strict-coverage
    // assertion would gate on quantization noise, not sampling error.
    let pad = |q: f64| REL_BAND * q.abs();
    assert!(
        est.p50.lo - pad(oracle.p50) <= oracle.p50 && oracle.p50 <= est.p50.hi + pad(oracle.p50),
        "{tag}: p50 CI [{:.4}, {:.4}] (± band) misses oracle {:.4}",
        est.p50.lo,
        est.p50.hi,
        oracle.p50
    );
    assert!(
        est.p90.lo - pad(oracle.p90) <= oracle.p90 && oracle.p90 <= est.p90.hi + pad(oracle.p90),
        "{tag}: p90 CI [{:.4}, {:.4}] (± band) misses oracle {:.4}",
        est.p90.lo,
        est.p90.hi,
        oracle.p90
    );
    // …and the point estimate must sit inside the documented band.
    let rel = |point: f64, truth: f64| (point - truth).abs() / truth.abs();
    assert!(
        rel(est.mean.point, oracle.mean) <= REL_BAND,
        "{tag}: mean error {:.4} beyond band",
        rel(est.mean.point, oracle.mean)
    );
    assert!(
        (est.rsd_percent.point - oracle.rsd).abs() <= RSD_BAND_PP,
        "{tag}: RSD error {:.2}pp beyond band",
        (est.rsd_percent.point - oracle.rsd).abs()
    );
    assert!(
        rel(est.p50.point, oracle.p50) <= REL_BAND,
        "{tag}: p50 error {:.4} beyond band",
        rel(est.p50.point, oracle.p50)
    );
    assert!(
        rel(est.p90.point, oracle.p90) <= REL_BAND,
        "{tag}: p90 error {:.4} beyond band",
        rel(est.p90.point, oracle.p90)
    );
}

/// The 100k-population check the CI gates on: a grade-correlated synthetic
/// response with heteroscedastic noise (the shape a silicon-lottery score
/// distribution has), n = 2000 per strategy.
#[test]
fn sampled_estimates_cover_100k_synthetic_oracle() {
    const POP: usize = 100_000;
    const N: usize = 2000;
    let aux = grades(POP);
    let mut rng = StdRng::seed_from_u64(0x0CEA_2019);
    let scores: Vec<f64> = aux
        .iter()
        .map(|&g| {
            // Benchmark-score-like response: strongly grade-correlated with
            // mild noise, plus a weak quadratic term so strata differ in
            // both mean and spread.
            let noise: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() * 2.5;
            180.0 + 130.0 * g + 25.0 * g * g + (1.0 + g) * noise
        })
        .collect();
    let oracle = oracle_of(&scores);

    // The census-estimator oracle agrees with the classical definitions at
    // population scale: interpolated vs empirical quantiles and plug-in vs
    // n−1 spread differ only at O(1/n).
    let s = Summary::from_slice(&scores).unwrap();
    assert!((oracle.mean - s.mean()).abs() / s.mean() < 1e-9);
    assert!((oracle.rsd - s.rsd_percent()).abs() < 0.01);
    assert!((oracle.p50 - quantile(&scores, 0.50).unwrap()).abs() / oracle.p50 < 1e-3);
    assert!((oracle.p90 - quantile(&scores, 0.90).unwrap()).abs() / oracle.p90 < 1e-3);

    let mut widths = Vec::new();
    for strategy in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
        let selection = sampling::select(strategy, &aux, N, STRATA, 0x5EED_0001).unwrap();
        assert_eq!(selection.indices.len(), N);
        let groups = measured_groups(&selection, |i| scores[i]);
        let est = sampling::estimate(&groups, 0.95, 600, 0xB00_7001).unwrap();
        assert_eq!(est.n, N);
        assert_covers(strategy.as_str(), &est, &oracle);
        widths.push((strategy, est.mean.width()));
    }
    // Design effect on this grade-correlated response: stratification
    // shrinks the mean CI relative to simple random sampling. (RSS lowers
    // point-estimate variance too, but its single-group bootstrap doesn't
    // claim a tighter interval, so no width assertion for it.)
    let srs_w = widths[0].1;
    assert!(
        widths[2].1 < srs_w,
        "stratified CI ({:.4}) not tighter than SRS ({:.4})",
        widths[2].1,
        srs_w
    );
}

fn devices_for(indices: &[usize], aux: &[f64]) -> Vec<Device> {
    indices
        .iter()
        .map(|&i| catalog::pixel(aux[i], format!("pixel-crowd-{i:06}")).unwrap())
        .collect()
}

fn run_retained(devices: Vec<Device>, cfg: &SweepConfig) -> Vec<(usize, f64)> {
    let mut agg = ScoreAggregate::new(5.0).unwrap();
    let run = populate_streamed(
        &mut agg,
        "Pixel",
        devices,
        cfg,
        None,
        &CancelToken::new(),
        4,
        8,
        true,
    )
    .unwrap();
    assert!(run.complete);
    assert!(run.holes.is_empty(), "oracle/sample fleet must be clean");
    run.retained
}

/// End-to-end: really simulate a 1024-device fleet for the oracle, then —
/// per strategy — simulate *only* the 256 selected devices (exactly what
/// `repro sweep --sample` does) and require the estimates to cover the
/// simulated oracle. Scores here come out of the full harness with the
/// paper's full protocol (the short test protocol never throttles, so
/// every grade scores identically and the check would be vacuous), not a
/// synthetic response model.
#[test]
fn sampled_simulated_sweep_covers_full_fleet_oracle() {
    const POP: usize = 1024;
    const N: usize = 256;
    let aux = grades(POP);
    let cfg = SweepConfig::clean(Protocol::unconstrained(), 1);

    // Full-fleet simulated oracle.
    let all: Vec<usize> = (0..POP).collect();
    let retained = run_retained(devices_for(&all, &aux), &cfg);
    assert_eq!(retained.len(), POP);
    let full_scores: Vec<f64> = retained.iter().map(|&(_, s)| s).collect();
    let oracle = oracle_of(&full_scores);

    for strategy in [Strategy::Srs, Strategy::Rss, Strategy::Stratified] {
        let selection = sampling::select(strategy, &aux, N, STRATA, 0x5EED_0002).unwrap();
        // Simulate only the sampled devices; sweep order is the ascending
        // selection order, so retained index i is population index
        // `selection.indices[i]`.
        let sampled = run_retained(devices_for(&selection.indices, &aux), &cfg);
        assert_eq!(sampled.len(), N);
        let score_of = |pop_index: usize| {
            let slot = selection.indices.binary_search(&pop_index).unwrap();
            sampled[slot].1
        };
        // The sampled scores are identical to the same devices' scores in
        // the full-fleet run: simulation is per-device deterministic.
        for (slot, &pop_index) in selection.indices.iter().enumerate() {
            assert_eq!(sampled[slot].1, full_scores[pop_index], "device {pop_index}");
        }
        let groups = measured_groups(&selection, score_of);
        let est = sampling::estimate(&groups, 0.95, 400, 0xB00_7002).unwrap();
        assert_covers(strategy.as_str(), &est, &oracle);
    }
}
