//! Property fuzzing of journal recovery: whatever a dying disk leaves
//! behind — random bit flips, spliced duplicate runs, mid-record
//! truncation, pure garbage — recovery must never panic, must never yield
//! a record that fails its own checksum, and the streamed (chunked) scan
//! must agree byte-for-byte with the in-memory slice scan.

use accubench::crowd::SweepOutcome;
use accubench::journal::{decode_line, encode_line, scan_bytes, Journal, Record};
use accubench::storage::{MemStorage, Storage};
use accubench::supervise::DeviceStatus;
use pv_rng::{Rng, SeedableRng, StdRng};
use std::path::Path;
use std::sync::Arc;

/// A journal with varied record shapes and sizes, including notes long
/// enough to exercise line reassembly.
fn corpus() -> (Vec<Record>, Vec<u8>) {
    let mut records = vec![Record::Header {
        model: "Pixel".to_owned(),
        digest: "deadbeefdeadbeef".to_owned(),
        devices: 6,
    }];
    for index in 0..6 {
        if index % 2 == 0 {
            records.push(Record::Supervision {
                index,
                attempt: 1,
                status: DeviceStatus::Panicked,
                detail: format!("attempt {index} panicked: index out of bounds"),
            });
        }
        records.push(Record::Note {
            index,
            text: format!("device {index}: {}", "x".repeat(40 * (index + 1))),
        });
        records.push(Record::Outcome {
            index,
            outcome: SweepOutcome {
                device: format!("pixel-crowd-{index:03}"),
                verdict: None,
                accepted: index % 2 == 0,
                quarantined: index,
                fault_reports: 2 * index,
                error: (index == 3).then(|| "battery empty".to_owned()),
                status: DeviceStatus::Completed,
                attempts: 1 + index as u32,
            },
            score: Some(100.0 + index as f64),
            rsd: Some(0.5),
        });
    }
    records.push(Record::Complete { devices: 6 });
    let bytes = records
        .iter()
        .flat_map(|r| encode_line(r).into_bytes())
        .collect();
    (records, bytes)
}

/// The invariants every recovery must uphold, whatever the input bytes.
fn check_recovery(bytes: &[u8], tag: &str) -> (Vec<Record>, u64) {
    let (records, valid_len) = scan_bytes(bytes);
    assert!(valid_len as usize <= bytes.len(), "{tag}");

    // Every yielded record survives its own encode/decode round trip —
    // i.e. nothing that fails the line checksum is ever returned.
    for r in &records {
        let line = encode_line(r);
        assert_eq!(decode_line(line.trim_end()).as_ref(), Ok(r), "{tag}");
    }

    // The valid prefix is closed under re-scanning: scanning just the
    // bytes declared valid yields the same records and the same length.
    let (again, len_again) = scan_bytes(&bytes[..valid_len as usize]);
    assert_eq!(again, records, "{tag}: valid prefix is not a fixpoint");
    assert_eq!(
        len_again, valid_len,
        "{tag}: valid prefix is not a fixpoint"
    );

    // The chunked streaming scan (journal open over an in-memory disk)
    // recovers exactly the same records, and truncates the file to the
    // same valid length.
    let mem = MemStorage::new();
    let storage = Storage::new(Arc::new(mem.clone()));
    let path = Path::new("/fuzz/run.journal");
    {
        let mut f = storage.create(path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_data().unwrap();
    }
    let journal = Journal::open_with(storage, path).unwrap();
    assert_eq!(
        journal.recovered(),
        &records[..],
        "{tag}: stream/slice scan disagree"
    );
    assert_eq!(
        journal.dropped_bytes(),
        bytes.len() as u64 - valid_len,
        "{tag}"
    );
    drop(journal);
    assert_eq!(
        mem.file_bytes(path).unwrap().len() as u64,
        valid_len,
        "{tag}: open did not truncate to the valid prefix"
    );

    (records, valid_len)
}

#[test]
fn pristine_corpus_recovers_completely() {
    let (records, bytes) = corpus();
    let (recovered, valid_len) = check_recovery(&bytes, "pristine");
    assert_eq!(recovered, records);
    assert_eq!(valid_len as usize, bytes.len());
}

#[test]
fn random_bit_flips_never_yield_corrupt_records() {
    let (_, bytes) = corpus();
    let mut rng = StdRng::seed_from_u64(0xF1195EED);
    for round in 0..150 {
        let mut mutated = bytes.clone();
        let flips = rng.gen_range(1..12usize);
        for _ in 0..flips {
            let i = rng.gen_range(0..mutated.len());
            let bit = rng.gen_range(0..8u32);
            mutated[i] ^= 1 << bit;
        }
        let (records, _) = check_recovery(&mutated, &format!("flips round {round}"));
        // A flip in record k invalidates it and everything after; records
        // before the first flipped byte must survive untouched.
        assert!(records.len() <= 20, "flips round {round}");
    }
}

#[test]
fn mid_record_truncation_recovers_the_record_prefix() {
    let (records, bytes) = corpus();
    let mut rng = StdRng::seed_from_u64(0x7124_CA7E);
    for round in 0..150 {
        let cut = rng.gen_range(0..bytes.len());
        let (recovered, valid_len) = check_recovery(
            &bytes[..cut],
            &format!("truncation round {round} (cut {cut})"),
        );
        // Whatever survives is a prefix of the original record sequence,
        // and the valid bytes never reach past the cut.
        assert_eq!(recovered[..], records[..recovered.len()], "round {round}");
        assert!(valid_len as usize <= cut, "round {round}");
    }
}

#[test]
fn spliced_records_never_yield_corrupt_records() {
    let (_, bytes) = corpus();
    let mut rng = StdRng::seed_from_u64(0x5711_CE5D);
    for round in 0..150 {
        // Copy a random window over a random destination — duplicated
        // runs, overwritten runs, self-overlaps.
        let mut mutated = bytes.clone();
        let start = rng.gen_range(0..bytes.len());
        let len = rng.gen_range(1..(bytes.len() - start).max(2));
        let window = bytes[start..start + len].to_vec();
        let dest = rng.gen_range(0..mutated.len());
        let end = (dest + window.len()).min(mutated.len());
        mutated[dest..end].copy_from_slice(&window[..end - dest]);
        check_recovery(&mutated, &format!("splice round {round}"));
    }
}

#[test]
fn random_garbage_recovers_nothing_and_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x6A12_BA6E);
    for round in 0..100 {
        let len = rng.gen_range(0..4096usize);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let (records, _) = check_recovery(&soup, &format!("garbage round {round}"));
        // A checksummed 16-hex-digit frame materialising from uniform
        // noise is (practically) impossible.
        assert!(records.is_empty(), "garbage round {round}: {records:?}");
    }
}
