//! Crash-consistency torture: enumerate EVERY I/O boundary of a journaled
//! sweep, kill the "machine" at each one, reboot, resume — and require the
//! resumed journal and report to be byte-identical to an uninterrupted
//! run's.
//!
//! The filesystem is [`MemStorage`], whose durability model distinguishes
//! page-cache contents from fsynced bytes. A reference sweep counts the
//! mutating storage operations; the torture loop then re-runs the sweep
//! with a crash armed before operation `k`, for every `k`, under three
//! reboot variants: `Clean` (only fsynced bytes survive), `Partial` (half
//! the unsynced suffix landed — a torn multi-sector write) and `Torn`
//! (half landed and its tail was corrupted in flight).

use accubench::crowd::{populate_parallel, CrowdDatabase, JournaledSweep, SweepConfig};
use accubench::journal::{fsck_with, CancelToken, Journal};
use accubench::protocol::Protocol;
use accubench::storage::{CrashVariant, MemStorage, Storage, StorageEscalation};
use accubench::BenchError;
use pv_faults::ALL_KINDS;
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::path::Path;
use std::sync::Arc;

const DEVICES: usize = 4;
const JOURNAL: &str = "/torture/run.journal";

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet() -> Vec<Device> {
    (0..DEVICES)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (DEVICES.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

/// Instrument faults make outcomes differ across devices (a resume that
/// desynchronised per-device seeding would be caught); `Abort` storage
/// escalation makes the crashed run fail fast instead of finishing the
/// fleet unjournaled.
fn cfg() -> SweepConfig {
    SweepConfig::clean(quick(), 2)
        .with_faults(0xC0FFEE, Seconds(1500.0), ALL_KINDS.to_vec())
        .with_storage_escalation(StorageEscalation::Abort)
}

fn db() -> CrowdDatabase {
    CrowdDatabase::new(5.0).unwrap()
}

/// One journaled sweep over `storage`, two worker threads.
fn run(storage: &Storage, db: &mut CrowdDatabase) -> Result<JournaledSweep, BenchError> {
    let mut journal = Journal::open_with(storage.clone(), JOURNAL)?;
    populate_parallel(
        db,
        "Pixel",
        fleet(),
        &cfg(),
        Some(&mut journal),
        &CancelToken::new(),
        2,
    )
}

#[test]
fn crash_at_every_io_boundary_resumes_byte_identically() {
    // Reference: uninterrupted journaled run on a pristine mem-disk.
    let ref_mem = MemStorage::new();
    let ref_storage = Storage::new(Arc::new(ref_mem.clone()));
    let mut ref_db = db();
    let reference = run(&ref_storage, &mut ref_db).unwrap();
    assert!(reference.complete);
    assert!(reference.storage_degraded.is_none());
    let ref_bytes = ref_mem.file_bytes(Path::new(JOURNAL)).unwrap();
    let ref_scores = ref_db.scores().to_vec();
    let total_ops = ref_mem.ops();
    assert!(
        total_ops > 8,
        "expected one create, a header, {DEVICES} outcome batches and a \
         completion marker; got {total_ops} ops"
    );

    // Crash before every operation, under every reboot variant.
    for k in 0..=total_ops {
        for variant in [
            CrashVariant::Clean,
            CrashVariant::Partial,
            CrashVariant::Torn { seed: 0x5EED ^ k },
        ] {
            let mem = MemStorage::new();
            let storage = Storage::new(Arc::new(mem.clone()));
            mem.arm_crash(k);
            // The crashed run may fail (journal I/O surfaced under Abort)
            // or complete (crash armed past its last operation) — both are
            // legitimate ends of a dying machine.
            let _ = run(&storage, &mut db());
            mem.power_cycle(variant);

            let mut resumed_db = db();
            let resumed = run(&storage, &mut resumed_db)
                .unwrap_or_else(|e| panic!("crash at op {k} ({variant:?}): resume failed: {e}"));
            let tag = format!("crash at op {k} ({variant:?})");
            assert!(resumed.complete, "{tag}");
            assert!(resumed.storage_degraded.is_none(), "{tag}");
            assert_eq!(resumed.report, reference.report, "{tag}");
            assert_eq!(resumed_db.scores(), &ref_scores[..], "{tag}");
            assert_eq!(
                mem.file_bytes(Path::new(JOURNAL)).unwrap(),
                ref_bytes,
                "{tag}: resumed journal bytes diverge"
            );
            let report = fsck_with(&storage, JOURNAL).unwrap();
            assert!(
                report.is_clean(),
                "{tag}: fsck dirty after resume: {report}"
            );
        }
    }
}
