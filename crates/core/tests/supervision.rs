//! Chaos tests for the supervision layer (DESIGN.md §12): injected session
//! panics and stalls must be isolated, typed, journaled, and — like every
//! other sweep outcome — **bit-identical** across thread counts and across
//! kill/resume cycles.
//!
//! These tests run with `RUST_BACKTRACE` unset (the CI chaos job exports
//! `RUST_BACKTRACE=0`): backtrace capture is the one documented source of
//! thread-count-dependent journal bytes (see `PanicSummary::backtrace`).

use accubench::crowd::{populate_parallel, CrowdDatabase, FleetVerdict, SweepConfig, SweepReport};
use accubench::journal::{CancelToken, Journal, Record};
use accubench::protocol::Protocol;
use accubench::supervise::{
    DeviceStatus, OnFailure, SessionChaos, SupervisionError, SupervisionPolicy,
};
use accubench::BenchError;
use pv_json::ToJson;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::{Celsius, Seconds};
use std::path::PathBuf;

/// Pins std's process-global backtrace decision to "disabled" before any
/// injected panic can capture one. Backtrace capture is the one documented
/// source of thread-dependent journal bytes, so the determinism contract
/// (and the CI chaos job, which exports `RUST_BACKTRACE=0`) holds with it
/// off; this makes the tests immune to the developer's shell environment.
/// Every test calls this first — std caches the decision at the first
/// capture, so it must run before any panic fires.
fn disable_backtraces() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("RUST_BACKTRACE");
        std::env::remove_var("RUST_LIB_BACKTRACE");
        let _ = std::backtrace::Backtrace::capture();
    });
}

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

fn db() -> CrowdDatabase {
    CrowdDatabase::new(5.0).unwrap()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv-chaos-{tag}-{}", std::process::id()))
}

/// Serialized fingerprint of a sweep: compact report JSON + compact
/// database JSON. String equality here is byte equality.
fn fingerprint(report: &SweepReport, db: &CrowdDatabase) -> (String, String) {
    (
        report.to_json().to_string_compact(),
        db.to_json().to_string_compact(),
    )
}

/// A clean-base sweep (no instrument faults, so only chaos victims can
/// become holes) with seeded session chaos.
fn chaos_cfg(panics: usize, stalls: usize) -> SweepConfig {
    SweepConfig::clean(quick(), 2).with_chaos(SessionChaos::new(0xBAD_5EED, panics, stalls))
}

/// Chaos layered over instrument faults: sessions also retry, quarantine
/// iterations, and fail at uneven speeds — the adversarial schedule for
/// determinism checks.
fn faulty_chaos_cfg(panics: usize, stalls: usize) -> SweepConfig {
    SweepConfig::clean(quick(), 2)
        .with_faults(0xC0FFEE, Seconds(1500.0), pv_faults::ALL_KINDS.to_vec())
        .with_chaos(SessionChaos::new(0xBAD_5EED, panics, stalls))
}

fn run(
    cfg: &SweepConfig,
    n: usize,
    threads: usize,
) -> (accubench::crowd::JournaledSweep, CrowdDatabase) {
    let mut d = db();
    let sweep = populate_parallel(
        &mut d,
        "Pixel",
        fleet(n),
        cfg,
        None,
        &CancelToken::new(),
        threads,
    )
    .unwrap();
    (sweep, d)
}

/// Panic chaos: exactly the seeded victims are quarantined as `panicked`,
/// the fleet completes `degraded`, and the result is thread-count
/// independent.
#[test]
fn panic_chaos_quarantines_exact_victims() {
    disable_backtraces();
    const N: usize = 12;
    let cfg = chaos_cfg(3, 0);
    let (panic_victims, _) = cfg.chaos.as_ref().unwrap().victims(N);
    assert_eq!(panic_victims.len(), 3);

    let (serial, serial_db) = run(&cfg, N, 1);
    assert!(serial.complete);
    let report = &serial.report;
    assert_eq!(report.fleet_verdict(), FleetVerdict::Degraded);
    assert_eq!(report.quarantined_devices(), 3);
    assert_eq!(report.panicked(), 3);
    assert_eq!(report.timed_out(), 0);
    for (i, o) in report.outcomes.iter().enumerate() {
        if panic_victims.contains(&i) {
            assert_eq!(o.status, DeviceStatus::Panicked, "device {i}");
            assert!(o.is_hole(), "device {i}");
            assert_eq!(o.verdict, None, "device {i}");
            assert_eq!(o.attempts, 1, "device {i}");
            let err = o.error.as_deref().unwrap();
            assert!(
                err.contains("injected session panic"),
                "device {i}: unexpected error {err:?}"
            );
            // Deterministic headline: payload + file:line, no backtrace.
            assert!(err.starts_with("panic:"), "device {i}: {err:?}");
        } else {
            assert_eq!(o.status, DeviceStatus::Completed, "device {i}");
            assert!(o.verdict.is_some(), "device {i}");
        }
    }
    // Survivor statistics exist and exclude the holes.
    let ci = report.survivor_ci(&serial_db, "Pixel").unwrap();
    assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    assert_eq!(serial_db.scores().len(), N - 3);

    let (parallel, parallel_db) = run(&cfg, N, 4);
    assert!(parallel.complete);
    assert_eq!(
        fingerprint(&parallel.report, &parallel_db),
        fingerprint(report, &serial_db),
        "panic chaos diverged between threads 1 and 4"
    );
}

/// Stall chaos: wedged sessions burn only the fault clock until the
/// always-armed simulated-time budget trips, yielding `timed-out` holes —
/// at every thread count.
#[test]
fn stall_chaos_times_out_exact_victims() {
    disable_backtraces();
    const N: usize = 10;
    let cfg = chaos_cfg(0, 2);
    let (_, stall_victims) = cfg.chaos.as_ref().unwrap().victims(N);
    assert_eq!(stall_victims.len(), 2);

    let (serial, serial_db) = run(&cfg, N, 1);
    assert!(serial.complete);
    let report = &serial.report;
    assert_eq!(report.fleet_verdict(), FleetVerdict::Degraded);
    assert_eq!(report.quarantined_devices(), 2);
    assert_eq!(report.timed_out(), 2);
    assert_eq!(report.panicked(), 0);
    for (i, o) in report.outcomes.iter().enumerate() {
        if stall_victims.contains(&i) {
            assert_eq!(o.status, DeviceStatus::TimedOut, "device {i}");
            let err = o.error.as_deref().unwrap();
            assert!(
                err.contains("simulated-time budget"),
                "device {i}: unexpected error {err:?}"
            );
        } else {
            assert_eq!(o.status, DeviceStatus::Completed, "device {i}");
        }
    }

    let (parallel, parallel_db) = run(&cfg, N, 4);
    assert_eq!(
        fingerprint(&parallel.report, &parallel_db),
        fingerprint(report, &serial_db),
        "stall chaos diverged between threads 1 and 4"
    );
}

/// Mixed chaos over an already-faulty fleet, journaled: supervision
/// records land in the journal, outcome indices stay gapless, and killing
/// the journal at seeded random offsets then resuming (at 1 and 4
/// threads) heals to the uninterrupted bytes.
#[test]
fn chaos_journals_are_gapless_and_kill_resume_converges() {
    disable_backtraces();
    const N: usize = 10;
    let cfg = faulty_chaos_cfg(2, 1);

    let full_path = tmp_path("kill-full");
    let _ = std::fs::remove_file(&full_path);
    let mut base_db = db();
    let mut journal = Journal::open(&full_path).unwrap();
    let baseline = populate_parallel(
        &mut base_db,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        1,
    )
    .unwrap();
    assert!(baseline.complete);
    assert_eq!(baseline.report.fleet_verdict(), FleetVerdict::Degraded);
    assert!(baseline.report.quarantined_devices() >= 3);
    drop(journal);
    let full_bytes = std::fs::read(&full_path).unwrap();

    // The journal's outcome indices are the gapless prefix 0..N, and every
    // chaos victim carries at least one supervision record.
    let records = Journal::read_records(&full_path).unwrap();
    let indices: Vec<usize> = records
        .iter()
        .filter_map(|r| match r {
            Record::Outcome { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(indices, (0..N).collect::<Vec<_>>());
    let (panics, stalls) = cfg.chaos.as_ref().unwrap().victims(N);
    for victim in panics.iter().chain(stalls.iter()) {
        assert!(
            records.iter().any(|r| matches!(
                r,
                Record::Supervision { index, .. } if index == victim
            )),
            "device {victim} has no supervision record"
        );
    }

    // Kill at seeded random byte offsets, then resume at 1 and 4 threads.
    let mut rng = StdRng::seed_from_u64(0xFEED_FACE);
    let resume_path = tmp_path("kill-resume");
    for round in 0..6 {
        let cut = rng.gen_range(1..full_bytes.len());
        let threads = if round % 2 == 0 { 1 } else { 4 };
        std::fs::write(&resume_path, &full_bytes[..cut]).unwrap();

        let mut rdb = db();
        let mut journal = Journal::open(&resume_path).unwrap();
        let resumed = populate_parallel(
            &mut rdb,
            "Pixel",
            fleet(N),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            threads,
        )
        .unwrap();
        assert!(resumed.complete, "round {round} (cut {cut})");
        assert_eq!(resumed.report, baseline.report, "round {round} (cut {cut})");
        assert_eq!(rdb.scores(), base_db.scores(), "round {round} (cut {cut})");
        drop(journal);
        assert_eq!(
            std::fs::read(&resume_path).unwrap(),
            full_bytes,
            "round {round} (cut {cut}, threads {threads}): healed journal bytes diverged"
        );
    }
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);
}

/// Retry escalation: injected chaos is deterministic, so a panic victim
/// granted `max_attempts = 2` fails twice identically, and both attempts
/// are journaled before the device is quarantined.
#[test]
fn retries_fail_deterministically_and_are_journaled() {
    disable_backtraces();
    const N: usize = 6;
    let policy = SupervisionPolicy {
        max_attempts: 2,
        ..SupervisionPolicy::default()
    };
    let cfg = chaos_cfg(1, 0).with_supervision(policy);
    let (panic_victims, _) = cfg.chaos.as_ref().unwrap().victims(N);
    let victim = *panic_victims.iter().next().unwrap();

    let path = tmp_path("retry");
    let _ = std::fs::remove_file(&path);
    let mut d = db();
    let mut journal = Journal::open(&path).unwrap();
    let sweep = populate_parallel(
        &mut d,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        2,
    )
    .unwrap();
    drop(journal);
    assert!(sweep.complete);
    let o = &sweep.report.outcomes[victim];
    assert_eq!(o.status, DeviceStatus::Panicked);
    assert_eq!(o.attempts, 2);
    for (i, o) in sweep.report.outcomes.iter().enumerate() {
        if i != victim {
            assert_eq!(o.attempts, 1, "device {i}");
        }
    }

    let supervision: Vec<(usize, u32, DeviceStatus)> = Journal::read_records(&path)
        .unwrap()
        .iter()
        .filter_map(|r| match r {
            Record::Supervision {
                index,
                attempt,
                status,
                ..
            } => Some((*index, *attempt, *status)),
            _ => None,
        })
        .collect();
    assert_eq!(
        supervision,
        vec![
            (victim, 1, DeviceStatus::Panicked),
            (victim, 2, DeviceStatus::Panicked),
        ]
    );
    let _ = std::fs::remove_file(&path);
}

/// The `abort` escalation policy: the sweep fails on the first hole — but
/// only after journaling it, so the journal still ends on a gapless
/// prefix that includes the fatal device.
#[test]
fn abort_policy_fails_the_sweep_after_journaling_the_hole() {
    disable_backtraces();
    const N: usize = 8;
    let policy = SupervisionPolicy {
        on_failure: OnFailure::Abort,
        ..SupervisionPolicy::default()
    };
    let cfg = chaos_cfg(1, 0).with_supervision(policy);
    let (panic_victims, _) = cfg.chaos.as_ref().unwrap().victims(N);
    let victim = *panic_victims.iter().next().unwrap();

    let path = tmp_path("abort");
    let _ = std::fs::remove_file(&path);
    let mut d = db();
    let mut journal = Journal::open(&path).unwrap();
    let err = populate_parallel(
        &mut d,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        4,
    )
    .unwrap_err();
    drop(journal);
    match err {
        BenchError::Supervision(SupervisionError::FleetAborted {
            device, attempts, ..
        }) => {
            assert_eq!(device, format!("pixel-crowd-{victim:03}"));
            assert_eq!(attempts, 1);
        }
        other => panic!("expected FleetAborted, got {other}"),
    }

    // The journal holds the contiguous prefix through the fatal device,
    // whose outcome (the hole) is the last one journaled.
    let records = Journal::read_records(&path).unwrap();
    let outcomes: Vec<(usize, DeviceStatus)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Outcome { index, outcome, .. } => Some((*index, outcome.status)),
            _ => None,
        })
        .collect();
    assert_eq!(
        outcomes.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        (0..=victim).collect::<Vec<_>>()
    );
    assert_eq!(outcomes.last().unwrap().1, DeviceStatus::Panicked);
    assert!(!records.iter().any(|r| matches!(r, Record::Complete { .. })));
    let _ = std::fs::remove_file(&path);
}

/// The acceptance scenario: a 1000-device sweep with 5 panicking and 3
/// stalling devices completes `degraded` with exactly 8 quarantined
/// holes, produces survivor bootstrap CIs, and its journal and database
/// bytes are identical across thread counts and across a kill + resume.
/// Ignored by default (minutes of work); CI's chaos job runs it in
/// release mode.
#[test]
#[ignore = "acceptance-scale; run explicitly or via the CI chaos job"]
fn thousand_device_fleet_degrades_gracefully() {
    disable_backtraces();
    const N: usize = 1000;
    // Long and hot enough to throttle, so process grade differentiates
    // scores (quick() never warms the die, every grade scores identically,
    // and the bootstrap interval would degenerate to ulp noise).
    let protocol = Protocol::unconstrained()
        .with_warmup(Seconds(60.0))
        .with_workload(Seconds(120.0));
    let mut cfg = SweepConfig::clean(protocol, 1).with_chaos(SessionChaos::new(0xACCE55, 5, 3));
    cfg.ambient = Celsius(35.0);
    let (panics, stalls) = cfg.chaos.as_ref().unwrap().victims(N);
    assert_eq!((panics.len(), stalls.len()), (5, 3));

    // Serial journaled reference.
    let serial_path = tmp_path("acc-serial");
    let _ = std::fs::remove_file(&serial_path);
    let mut serial_db = db();
    let mut journal = Journal::open(&serial_path).unwrap();
    let serial = populate_parallel(
        &mut serial_db,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        1,
    )
    .unwrap();
    drop(journal);
    assert!(serial.complete);
    let report = &serial.report;
    assert_eq!(report.fleet_verdict(), FleetVerdict::Degraded);
    assert_eq!(report.quarantined_devices(), 8);
    assert_eq!(report.panicked(), 5);
    assert_eq!(report.timed_out(), 3);
    assert_eq!(report.completed(), N - 8);
    let ci = report.survivor_ci(&serial_db, "Pixel").unwrap();
    assert!(ci.lo < ci.hi && ci.lo <= ci.point && ci.point <= ci.hi);
    assert_eq!(serial_db.scores().len(), N - 8);
    let serial_bytes = std::fs::read(&serial_path).unwrap();

    // Same sweep at 4 threads: byte-identical journal and database.
    let par_path = tmp_path("acc-par");
    let _ = std::fs::remove_file(&par_path);
    let mut par_db = db();
    let mut journal = Journal::open(&par_path).unwrap();
    let parallel = populate_parallel(
        &mut par_db,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        4,
    )
    .unwrap();
    drop(journal);
    assert!(parallel.complete);
    assert_eq!(
        fingerprint(&parallel.report, &par_db),
        fingerprint(report, &serial_db)
    );
    assert_eq!(std::fs::read(&par_path).unwrap(), serial_bytes);

    // Kill the journal at a seeded offset and resume at 4 threads: the
    // healed journal converges on the reference bytes.
    let mut rng = StdRng::seed_from_u64(0xFEED_FACE);
    let cut = rng.gen_range(1..serial_bytes.len());
    let resume_path = tmp_path("acc-resume");
    std::fs::write(&resume_path, &serial_bytes[..cut]).unwrap();
    let mut rdb = db();
    let mut journal = Journal::open(&resume_path).unwrap();
    let resumed = populate_parallel(
        &mut rdb,
        "Pixel",
        fleet(N),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        4,
    )
    .unwrap();
    drop(journal);
    assert!(resumed.complete);
    assert_eq!(resumed.report, serial.report);
    assert_eq!(rdb.scores(), serial_db.scores());
    assert_eq!(std::fs::read(&resume_path).unwrap(), serial_bytes);

    for p in [&serial_path, &par_path, &resume_path] {
        let _ = std::fs::remove_file(p);
    }
}
