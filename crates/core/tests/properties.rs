//! Property-style tests for the measurement-core invariants, swept over
//! seeded random samples (deterministic across runs).

use accubench::crowd::{CrowdDatabase, CrowdScore};
use accubench::protocol::{CooldownTarget, Protocol};
use accubench::report::TextTable;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_units::{Celsius, MegaHertz, Seconds, TempDelta};

const CASES: usize = 200;

fn word(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let n = rng.gen_range(1..13usize);
    (0..n)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

#[test]
fn scaled_protocols_stay_valid() {
    let mut rng = StdRng::seed_from_u64(601);
    for _ in 0..CASES {
        let scale = rng.gen_range(0.01..1.0);
        let freq = rng.gen_range(100.0..3000.0);
        for base in [
            Protocol::unconstrained(),
            Protocol::fixed_frequency(MegaHertz(freq)),
        ] {
            let p = base
                .with_warmup(Seconds(base.warmup.value() * scale))
                .with_workload(Seconds(base.workload.value() * scale));
            assert!(p.validate().is_ok());
            assert!(p.warmup.value() <= base.warmup.value());
        }
    }
}

#[test]
fn cooldown_target_resolution_is_consistent() {
    let mut rng = StdRng::seed_from_u64(602);
    for _ in 0..CASES {
        let ambient = rng.gen_range(-10.0..50.0);
        let margin = rng.gen_range(0.1..20.0);
        let rel = CooldownTarget::AboveAmbient(TempDelta(margin));
        let resolved = rel.resolve(Celsius(ambient));
        assert!((resolved.value() - ambient - margin).abs() < 1e-12);
        let abs = CooldownTarget::Absolute(Celsius(32.0));
        assert_eq!(abs.resolve(Celsius(ambient)), Celsius(32.0));
    }
}

#[test]
fn text_table_always_renders_every_row() {
    let mut rng = StdRng::seed_from_u64(603);
    for _ in 0..CASES {
        let n_rows = rng.gen_range(0..20usize);
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|_| {
                let cols = rng.gen_range(1..5usize);
                (0..cols).map(|_| word(&mut rng)).collect()
            })
            .collect();
        let mut t = TextTable::new(vec!["c1", "c2", "c3"]);
        for row in &rows {
            t.row(row.clone());
        }
        let rendered = t.to_string();
        assert_eq!(t.len(), rows.len());
        // Header + separator + one line per row.
        assert_eq!(rendered.lines().count(), 2 + rows.len());
        for row in &rows {
            if let Some(first) = row.first() {
                assert!(rendered.contains(first.as_str()));
            }
        }
    }
}

#[test]
fn crowd_percentiles_are_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(604);
    for _ in 0..CASES {
        let n = rng.gen_range(2..30usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1000.0)).collect();
        let probe1 = rng.gen_range(1.0..1000.0);
        let probe2 = rng.gen_range(1.0..1000.0);
        let mut db = CrowdDatabase::new(5.0).unwrap();
        for (i, &s) in scores.iter().enumerate() {
            db.submit(CrowdScore {
                model: "M".into(),
                device: format!("d{i}"),
                score: s,
                rsd: 0.5,
            });
        }
        let (lo, hi) = if probe1 <= probe2 {
            (probe1, probe2)
        } else {
            (probe2, probe1)
        };
        let p_lo = db.percentile("M", lo).unwrap();
        let p_hi = db.percentile("M", hi).unwrap();
        assert!(p_lo <= p_hi);
        assert!((0.0..=100.0).contains(&p_lo));
        assert!((0.0..=100.0).contains(&p_hi));
        // Spread is non-negative and matches the summary definition.
        let spread = db.model_spread_percent("M").unwrap();
        assert!((0.0..100.0).contains(&spread));
    }
}

#[test]
fn crowd_filter_never_admits_above_threshold() {
    let mut rng = StdRng::seed_from_u64(605);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let rsds: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let threshold = rng.gen_range(0.5..5.0);
        let mut db = CrowdDatabase::new(threshold).unwrap();
        for (i, &rsd) in rsds.iter().enumerate() {
            db.submit(CrowdScore {
                model: "M".into(),
                device: format!("d{i}"),
                score: 100.0,
                rsd,
            });
        }
        for s in db.scores() {
            assert!(s.rsd <= threshold);
        }
        let expected_admitted = rsds.iter().filter(|&&r| r <= threshold).count();
        assert_eq!(db.scores().len(), expected_admitted);
        assert_eq!(db.rejected(), rsds.len() - expected_admitted);
    }
}
