//! Property-based tests for the measurement-core invariants.

use accubench::crowd::{CrowdDatabase, CrowdScore};
use accubench::protocol::{CooldownTarget, Protocol};
use accubench::report::TextTable;
use proptest::prelude::*;
use pv_units::{Celsius, MegaHertz, Seconds, TempDelta};

proptest! {
    #[test]
    fn scaled_protocols_stay_valid(scale in 0.01..1.0f64, freq in 100.0..3000.0f64) {
        for base in [Protocol::unconstrained(), Protocol::fixed_frequency(MegaHertz(freq))] {
            let p = base
                .with_warmup(Seconds(base.warmup.value() * scale))
                .with_workload(Seconds(base.workload.value() * scale));
            prop_assert!(p.validate().is_ok());
            prop_assert!(p.warmup.value() <= base.warmup.value());
        }
    }

    #[test]
    fn cooldown_target_resolution_is_consistent(ambient in -10.0..50.0f64, margin in 0.1..20.0f64) {
        let rel = CooldownTarget::AboveAmbient(TempDelta(margin));
        let resolved = rel.resolve(Celsius(ambient));
        prop_assert!((resolved.value() - ambient - margin).abs() < 1e-12);
        let abs = CooldownTarget::Absolute(Celsius(32.0));
        prop_assert_eq!(abs.resolve(Celsius(ambient)), Celsius(32.0));
    }

    #[test]
    fn text_table_always_renders_every_row(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9]{1,12}", 1..5),
            0..20,
        ),
    ) {
        let mut t = TextTable::new(vec!["c1", "c2", "c3"]);
        for row in &rows {
            t.row(row.clone());
        }
        let rendered = t.to_string();
        prop_assert_eq!(t.len(), rows.len());
        // Header + separator + one line per row.
        prop_assert_eq!(rendered.lines().count(), 2 + rows.len());
        for row in &rows {
            if let Some(first) = row.first() {
                prop_assert!(rendered.contains(first.as_str()));
            }
        }
    }

    #[test]
    fn crowd_percentiles_are_monotone_and_bounded(
        scores in proptest::collection::vec(1.0..1000.0f64, 2..30),
        probe1 in 1.0..1000.0f64,
        probe2 in 1.0..1000.0f64,
    ) {
        let mut db = CrowdDatabase::new(5.0).unwrap();
        for (i, &s) in scores.iter().enumerate() {
            db.submit(CrowdScore {
                model: "M".into(),
                device: format!("d{i}"),
                score: s,
                rsd: 0.5,
            });
        }
        let (lo, hi) = if probe1 <= probe2 { (probe1, probe2) } else { (probe2, probe1) };
        let p_lo = db.percentile("M", lo).unwrap();
        let p_hi = db.percentile("M", hi).unwrap();
        prop_assert!(p_lo <= p_hi);
        prop_assert!((0.0..=100.0).contains(&p_lo));
        prop_assert!((0.0..=100.0).contains(&p_hi));
        // Spread is non-negative and matches the summary definition.
        let spread = db.model_spread_percent("M").unwrap();
        prop_assert!((0.0..100.0).contains(&spread));
    }

    #[test]
    fn crowd_filter_never_admits_above_threshold(
        rsds in proptest::collection::vec(0.0..10.0f64, 1..40),
        threshold in 0.5..5.0f64,
    ) {
        let mut db = CrowdDatabase::new(threshold).unwrap();
        for (i, &rsd) in rsds.iter().enumerate() {
            db.submit(CrowdScore {
                model: "M".into(),
                device: format!("d{i}"),
                score: 100.0,
                rsd,
            });
        }
        for s in db.scores() {
            prop_assert!(s.rsd <= threshold);
        }
        let expected_admitted = rsds.iter().filter(|&&r| r <= threshold).count();
        prop_assert_eq!(db.scores().len(), expected_admitted);
        prop_assert_eq!(db.rejected(), rsds.len() - expected_admitted);
    }
}
