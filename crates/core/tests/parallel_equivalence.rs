//! Determinism contract of the parallel sweep executor: for any thread
//! count, the merged report, the crowd database, and the journal bytes are
//! **bit-identical** to the serial path's — and killing or cancelling a
//! parallel sweep mid-flight resumes to the same bytes.
//!
//! These tests are scheduling-independent by construction (they assert
//! equality against a serial reference, not against a recorded schedule),
//! so they are also the target of CI's 100-iteration stress loop and
//! ThreadSanitizer run.

use accubench::crowd::{
    populate_batched, populate_journaled, populate_parallel, CrowdDatabase, SweepConfig,
    SweepReport,
};
use accubench::supervise::SessionChaos;
use accubench::journal::{CancelToken, Journal};
use accubench::protocol::Protocol;
use pv_faults::ALL_KINDS;
use pv_json::ToJson;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::path::PathBuf;

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

/// Faulty enough that devices quarantine, fail, and finish at uneven
/// speeds — the workloads where a scheduling-dependent merge would show.
fn faulty_cfg() -> SweepConfig {
    SweepConfig::clean(quick(), 2).with_faults(0xC0FFEE, Seconds(1500.0), ALL_KINDS.to_vec())
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv-par-{tag}-{}", std::process::id()))
}

fn db() -> CrowdDatabase {
    CrowdDatabase::new(5.0).unwrap()
}

/// Serialized fingerprint of a sweep: compact report JSON + compact
/// database JSON. String equality here is byte equality.
fn fingerprint(report: &SweepReport, db: &CrowdDatabase) -> (String, String) {
    (
        report.to_json().to_string_compact(),
        db.to_json().to_string_compact(),
    )
}

const DEVICES: usize = 10;

/// The acceptance test: the same sweep at 1, 2, 3 and 8 threads produces a
/// byte-identical report, database, and journal file.
#[test]
fn serial_parallel_reports_and_journals_bit_identical() {
    let cfg = faulty_cfg();

    // Serial journaled reference.
    let serial_path = tmp_path("serial");
    let _ = std::fs::remove_file(&serial_path);
    let mut serial_db = db();
    let mut journal = Journal::open(&serial_path).unwrap();
    let serial = populate_journaled(
        &mut serial_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(serial.complete);
    drop(journal);
    let serial_bytes = std::fs::read(&serial_path).unwrap();
    let serial_print = fingerprint(&serial.report, &serial_db);

    for threads in [1usize, 2, 3, 8] {
        let path = tmp_path(&format!("par{threads}"));
        let _ = std::fs::remove_file(&path);
        let mut pdb = db();
        let mut journal = Journal::open(&path).unwrap();
        let parallel = populate_parallel(
            &mut pdb,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            threads,
        )
        .unwrap();
        assert!(parallel.complete, "threads={threads}");
        assert_eq!(parallel.resumed, 0, "threads={threads}");
        drop(journal);

        assert_eq!(
            fingerprint(&parallel.report, &pdb),
            serial_print,
            "threads={threads}: report/database JSON diverged"
        );
        assert_eq!(parallel.report, serial.report, "threads={threads}");
        assert_eq!(pdb.scores(), serial_db.scores(), "threads={threads}");
        assert_eq!(pdb.rejected(), serial_db.rejected(), "threads={threads}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            serial_bytes,
            "threads={threads}: journal bytes diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&serial_path);
}

/// Kill a 4-thread journaled sweep at seeded random byte offsets (what a
/// power cut leaves on disk), resume with 4 threads, and require the
/// result — and the healed journal's bytes — to match the uninterrupted
/// serial run exactly.
#[test]
fn kill_mid_parallel_sweep_resume_is_deterministic() {
    let cfg = faulty_cfg();

    // Serial unjournaled baseline.
    let mut base_db = db();
    let baseline_journal_path = tmp_path("kill-full");
    let _ = std::fs::remove_file(&baseline_journal_path);
    let mut journal = Journal::open(&baseline_journal_path).unwrap();
    let baseline = populate_journaled(
        &mut base_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    drop(journal);
    let full_bytes = std::fs::read(&baseline_journal_path).unwrap();

    let mut rng = StdRng::seed_from_u64(0xFEED_FACE);
    let resume_path = tmp_path("kill-resume");
    for round in 0..6 {
        let cut = rng.gen_range(1..full_bytes.len());
        std::fs::write(&resume_path, &full_bytes[..cut]).unwrap();

        let mut rdb = db();
        let mut journal = Journal::open(&resume_path).unwrap();
        let resumed = populate_parallel(
            &mut rdb,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            4,
        )
        .unwrap();
        assert!(resumed.complete, "round {round} (cut {cut})");
        assert_eq!(resumed.report, baseline.report, "round {round} (cut {cut})");
        assert_eq!(rdb.scores(), base_db.scores(), "round {round} (cut {cut})");
        drop(journal);
        assert_eq!(
            std::fs::read(&resume_path).unwrap(),
            full_bytes,
            "round {round} (cut {cut}): healed journal bytes diverged"
        );
    }
    let _ = std::fs::remove_file(&baseline_journal_path);
    let _ = std::fs::remove_file(&resume_path);
}

/// Cancellation under parallelism: the journal holds a contiguous prefix
/// of outcome indices (never a gap), and a resume converges byte-exactly
/// on the uninterrupted journal.
#[test]
fn cancelled_parallel_sweep_is_resumable() {
    let cfg = faulty_cfg();

    let full_path = tmp_path("cancel-full");
    let _ = std::fs::remove_file(&full_path);
    let mut base_db = db();
    let mut journal = Journal::open(&full_path).unwrap();
    let baseline = populate_journaled(
        &mut base_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    drop(journal);
    let full_bytes = std::fs::read(&full_path).unwrap();

    // Pre-cancelled: nothing runs, nothing but the header is journaled.
    let path = tmp_path("cancel");
    let _ = std::fs::remove_file(&path);
    let cancel = CancelToken::new();
    cancel.cancel();
    let mut journal = Journal::open(&path).unwrap();
    let stopped = populate_parallel(
        &mut db(),
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &cancel,
        4,
    )
    .unwrap();
    assert!(!stopped.complete);
    assert!(stopped.report.outcomes.is_empty());
    drop(journal);

    // Mid-flight cancel from another thread (as SIGINT would): however far
    // the sweep got, its journaled outcome indices are the contiguous
    // prefix 0..n.
    let mid_path = tmp_path("cancel-mid");
    let _ = std::fs::remove_file(&mid_path);
    let cancel = CancelToken::new();
    let trigger = cancel.clone();
    let arm = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(5));
        trigger.cancel();
    });
    let mut journal = Journal::open(&mid_path).unwrap();
    let mid = populate_parallel(
        &mut db(),
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &cancel,
        4,
    )
    .unwrap();
    arm.join().unwrap();
    drop(journal);
    let indices: Vec<usize> = Journal::read_records(&mid_path)
        .unwrap()
        .iter()
        .filter_map(|r| match r {
            accubench::journal::Record::Outcome { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(
        indices,
        (0..indices.len()).collect::<Vec<_>>(),
        "cancelled journal must hold a contiguous prefix"
    );
    assert_eq!(mid.report.outcomes.len(), indices.len());

    // Resuming either interrupted journal converges byte-exactly.
    for p in [&path, &mid_path] {
        let mut rdb = db();
        let mut journal = Journal::open(p).unwrap();
        let resumed = populate_parallel(
            &mut rdb,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            4,
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.report, baseline.report);
        assert_eq!(rdb.scores(), base_db.scores());
        drop(journal);
        assert_eq!(std::fs::read(p).unwrap(), full_bytes);
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&full_path);
}

/// A clean sweep (every device batch-admissible) across the full
/// `--batch` × `--threads` grid — including a width that doesn't divide
/// the fleet and one larger than it — produces byte-identical report,
/// database, and journal output.
#[test]
fn batched_sweep_bit_identical_across_widths_and_threads() {
    let cfg = SweepConfig::clean(quick(), 2);

    let serial_path = tmp_path("batch-serial");
    let _ = std::fs::remove_file(&serial_path);
    let mut serial_db = db();
    let mut journal = Journal::open(&serial_path).unwrap();
    let serial = populate_journaled(
        &mut serial_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(serial.complete);
    drop(journal);
    let serial_bytes = std::fs::read(&serial_path).unwrap();
    let serial_print = fingerprint(&serial.report, &serial_db);

    for batch in [1usize, 3, 8, 64] {
        for threads in [1usize, 4] {
            let path = tmp_path(&format!("batch{batch}t{threads}"));
            let _ = std::fs::remove_file(&path);
            let mut bdb = db();
            let mut journal = Journal::open(&path).unwrap();
            let batched = populate_batched(
                &mut bdb,
                "Pixel",
                fleet(DEVICES),
                &cfg,
                Some(&mut journal),
                &CancelToken::new(),
                threads,
                batch,
            )
            .unwrap();
            assert!(batched.complete, "batch={batch} threads={threads}");
            drop(journal);
            assert_eq!(
                fingerprint(&batched.report, &bdb),
                serial_print,
                "batch={batch} threads={threads}: report/database diverged"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                serial_bytes,
                "batch={batch} threads={threads}: journal bytes diverged"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_file(&serial_path);
}

/// Mixed fleets — injected faults quarantining some devices and chaos
/// panicking another — must resolve identically whether the chunk width
/// is 1 (pure scalar) or covers several devices (lockstep + scalar
/// fallback inside one chunk).
#[test]
fn batched_faulted_chaos_sweep_matches_scalar() {
    let cfg = faulty_cfg().with_chaos(SessionChaos::new(3, 1, 0).striking_at(30.0));

    let mut serial_db = db();
    let serial = populate_parallel(
        &mut serial_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        None,
        &CancelToken::new(),
        1,
    )
    .unwrap();
    let serial_print = fingerprint(&serial.report, &serial_db);

    for batch in [3usize, 8] {
        for threads in [1usize, 4] {
            let mut bdb = db();
            let batched = populate_batched(
                &mut bdb,
                "Pixel",
                fleet(DEVICES),
                &cfg,
                None,
                &CancelToken::new(),
                threads,
                batch,
            )
            .unwrap();
            assert_eq!(
                fingerprint(&batched.report, &bdb),
                serial_print,
                "batch={batch} threads={threads}"
            );
        }
    }
}

/// Batch width is a scheduling knob, not a configuration: a journal
/// written at one width must resume at any other (the config digest —
/// still v3 — does not cover it), killing a batched sweep at arbitrary
/// byte offsets included.
#[test]
fn batched_kill_resume_across_widths_is_deterministic() {
    let cfg = faulty_cfg();

    let full_path = tmp_path("batch-kill-full");
    let _ = std::fs::remove_file(&full_path);
    let mut base_db = db();
    let mut journal = Journal::open(&full_path).unwrap();
    let baseline = populate_batched(
        &mut base_db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        1,
        64,
    )
    .unwrap();
    assert!(baseline.complete);
    drop(journal);
    let full_bytes = std::fs::read(&full_path).unwrap();

    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let resume_path = tmp_path("batch-kill-resume");
    for (round, resume_batch) in [1usize, 8, 64, 8].into_iter().enumerate() {
        let cut = rng.gen_range(1..full_bytes.len());
        std::fs::write(&resume_path, &full_bytes[..cut]).unwrap();

        let mut rdb = db();
        let mut journal = Journal::open(&resume_path).unwrap();
        let resumed = populate_batched(
            &mut rdb,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            4,
            resume_batch,
        )
        .unwrap();
        assert!(resumed.complete, "round {round} (cut {cut})");
        assert_eq!(resumed.report, baseline.report, "round {round} (cut {cut})");
        assert_eq!(rdb.scores(), base_db.scores(), "round {round} (cut {cut})");
        drop(journal);
        assert_eq!(
            std::fs::read(&resume_path).unwrap(),
            full_bytes,
            "round {round} (cut {cut}, batch {resume_batch}): journal bytes diverged"
        );
    }
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);
}

/// Small, fast serial-vs-parallel check — the target of CI's 100-iteration
/// stress loop (`cargo test ... stress_quick_parallel_equivalence`).
#[test]
fn stress_quick_parallel_equivalence() {
    let cfg = faulty_cfg();
    let mut serial_db = db();
    let serial = populate_parallel(
        &mut serial_db,
        "Pixel",
        fleet(8),
        &cfg,
        None,
        &CancelToken::new(),
        1,
    )
    .unwrap();
    let mut par_db = db();
    let parallel = populate_parallel(
        &mut par_db,
        "Pixel",
        fleet(8),
        &cfg,
        None,
        &CancelToken::new(),
        4,
    )
    .unwrap();
    assert_eq!(
        fingerprint(&parallel.report, &par_db),
        fingerprint(&serial.report, &serial_db)
    );
}
