//! Figure-level integrator equivalence: a full repeatability (§VII
//! "repro rsd") run must produce the *same verdicts and structure* under
//! every integrator, with summary statistics agreeing within the
//! documented tolerance (DESIGN.md §11: Euler/RK4/Exponential differ
//! only by time-discretisation error of the thermal trajectory, which at
//! the protocol's `busy_dt = 0.1 s` against die time constants of ~7 s
//! is far below the quality-gate thresholds).

use accubench::experiments::{rsd, ExperimentConfig};
use pv_thermal::network::Integrator;

fn run_with(integrator: Integrator) -> rsd::Repeatability {
    let cfg = ExperimentConfig {
        iterations: 3,
        ..ExperimentConfig::quick()
    }
    .with_integrator(integrator);
    rsd::run(&cfg).unwrap()
}

/// Documented figure-level tolerance on the per-session RSD statistic
/// (absolute percentage points) between any two integrators.
const RSD_TOLERANCE_PP: f64 = 0.25;

#[test]
fn repro_rsd_figure_matches_across_integrators() {
    let reference = run_with(Integrator::Rk4);
    for integrator in [Integrator::Euler, Integrator::Exponential] {
        let other = run_with(integrator);
        assert_eq!(
            reference.rows.len(),
            other.rows.len(),
            "{integrator}: row count diverged"
        );
        for (a, b) in reference.rows.iter().zip(other.rows.iter()) {
            assert_eq!(a.label, b.label, "{integrator}: device order diverged");
            assert_eq!(a.workload, b.workload, "{integrator}: workload diverged");
            assert_eq!(
                a.verdict, b.verdict,
                "{integrator}: verdict diverged on {} {}",
                a.label, a.workload
            );
            assert_eq!(
                a.iterations, b.iterations,
                "{integrator}: iteration count diverged on {} {}",
                a.label, a.workload
            );
            assert!(
                (a.perf_rsd - b.perf_rsd).abs() <= RSD_TOLERANCE_PP,
                "{integrator}: {} {} RSD {:.4}% vs reference {:.4}% (tolerance {} pp)",
                a.label,
                a.workload,
                b.perf_rsd,
                a.perf_rsd,
                RSD_TOLERANCE_PP
            );
        }
        assert!(
            (reference.average_rsd() - other.average_rsd()).abs() <= RSD_TOLERANCE_PP,
            "{integrator}: average RSD {:.4}% vs reference {:.4}%",
            other.average_rsd(),
            reference.average_rsd()
        );
    }
}

/// The same integrator must reproduce the figure bit-identically run to
/// run — the fast path is deterministic, not just statistically close.
#[test]
fn repro_rsd_figure_is_deterministic_per_integrator() {
    for integrator in [Integrator::Euler, Integrator::Rk4, Integrator::Exponential] {
        let a = run_with(integrator);
        let b = run_with(integrator);
        assert_eq!(a, b, "{integrator}: repeated run diverged");
    }
}
