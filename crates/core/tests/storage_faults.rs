//! Storage-fault chaos for the journaled sweep: inject ENOSPC, transient
//! and persistent EIO, short writes and lying fsyncs into the journal's
//! filesystem and require the sweep to heal in place, degrade gracefully,
//! or abort — exactly as the escalation policy says — while the journal's
//! sealed prefix stays resumable.

use accubench::crowd::{populate_parallel, CrowdDatabase, FleetVerdict, SweepConfig};
use accubench::journal::{fsck_with, CancelToken, Journal};
use accubench::protocol::Protocol;
use accubench::storage::{CrashVariant, FaultyStorage, MemStorage, Storage, StorageEscalation};
use accubench::BenchError;
use pv_faults::{FaultEvent, FaultKind, FaultPlan, ALL_KINDS};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::path::Path;
use std::sync::Arc;

const DEVICES: usize = 4;
const JOURNAL: &str = "/chaos/run.journal";

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet() -> Vec<Device> {
    (0..DEVICES)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (DEVICES.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

fn cfg() -> SweepConfig {
    SweepConfig::clean(quick(), 2).with_faults(0xC0FFEE, Seconds(1500.0), ALL_KINDS.to_vec())
}

fn db() -> CrowdDatabase {
    CrowdDatabase::new(5.0).unwrap()
}

/// A plan holding one storage fault window. `at`/`duration` count storage
/// operations, not seconds.
fn storage_plan(kind: FaultKind, at: f64, duration: f64) -> FaultPlan {
    FaultPlan {
        seed: 0,
        events: vec![FaultEvent {
            at,
            duration,
            kind,
            magnitude: 0.0,
        }],
    }
}

fn sweep(
    db: &mut CrowdDatabase,
    journal: &mut Journal,
    escalation: StorageEscalation,
) -> Result<accubench::crowd::JournaledSweep, BenchError> {
    populate_parallel(
        db,
        "Pixel",
        fleet(),
        &cfg().with_storage_escalation(escalation),
        Some(journal),
        &CancelToken::new(),
        2,
    )
}

/// The uninterrupted journal bytes, report and scores on a pristine disk.
fn reference() -> (Vec<u8>, accubench::crowd::SweepReport, Vec<f64>) {
    let mem = MemStorage::new();
    let storage = Storage::new(Arc::new(mem.clone()));
    let mut refdb = db();
    let mut journal = Journal::open_with(storage.clone(), JOURNAL).unwrap();
    let s = sweep(&mut refdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(s.complete && s.storage_degraded.is_none());
    let scores = refdb.scores().iter().map(|s| s.score).collect();
    (
        mem.file_bytes(Path::new(JOURNAL)).unwrap(),
        s.report,
        scores,
    )
}

/// ENOSPC mid-sweep with no room to rotate: under `degrade` the sweep
/// still completes with exit-0 semantics (an `Ok` result), the verdict is
/// `storage-degraded`, and the journal holds a clean, resumable prefix of
/// the uninterrupted run.
#[test]
fn enospc_mid_sweep_degrades_and_leaves_resumable_prefix() {
    let (ref_bytes, ref_report, ref_scores) = reference();

    let mem = MemStorage::new();
    let faulty = Storage::new(Arc::new(FaultyStorage::new(
        Storage::new(Arc::new(mem.clone())),
        &storage_plan(FaultKind::StorageEnospc, 5.0, 1e9),
    )));
    let mut ddb = db();
    let mut journal = Journal::open_with(faulty.clone(), JOURNAL).unwrap();
    let degraded = sweep(&mut ddb, &mut journal, StorageEscalation::Degrade).unwrap();
    drop(journal);

    assert!(degraded.complete);
    let detail = degraded.storage_degraded.as_deref().unwrap();
    assert!(detail.contains("no space left"), "{detail}");
    assert_eq!(degraded.fleet_verdict(), FleetVerdict::StorageDegraded);
    // The sweep itself is whole: every device simulated, scores submitted.
    assert_eq!(degraded.report, ref_report);
    assert_eq!(
        ddb.scores().iter().map(|s| s.score).collect::<Vec<_>>(),
        ref_scores
    );

    // The journal is a clean prefix of the uninterrupted run's bytes.
    let prefix = mem.file_bytes(Path::new(JOURNAL)).unwrap();
    assert!(!prefix.is_empty() && prefix.len() < ref_bytes.len());
    assert!(ref_bytes.starts_with(&prefix));
    let clean = Storage::new(Arc::new(mem.clone()));
    assert!(fsck_with(&clean, JOURNAL).unwrap().is_clean());

    // And once space returns, a resume converges on the reference.
    let mut rdb = db();
    let mut journal = Journal::open_with(clean.clone(), JOURNAL).unwrap();
    let resumed = sweep(&mut rdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(resumed.complete && resumed.storage_degraded.is_none());
    assert!(resumed.resumed > 0);
    assert_eq!(resumed.report, ref_report);
    assert_eq!(mem.file_bytes(Path::new(JOURNAL)).unwrap(), ref_bytes);
}

/// The same ENOSPC under `abort` escalation surfaces the I/O error.
#[test]
fn enospc_respects_abort_escalation() {
    let mem = MemStorage::new();
    let faulty = Storage::new(Arc::new(FaultyStorage::new(
        Storage::new(Arc::new(mem)),
        &storage_plan(FaultKind::StorageEnospc, 5.0, 1e9),
    )));
    let mut journal = Journal::open_with(faulty.clone(), JOURNAL).unwrap();
    let err = sweep(&mut db(), &mut journal, StorageEscalation::Abort).unwrap_err();
    assert!(matches!(err, BenchError::Journal(_)), "{err}");
    assert!(err.to_string().contains("no space left"), "{err}");
}

/// A bounded transient-EIO window is retried away inside the journal: the
/// sweep completes fully journaled and the bytes are identical to the
/// fault-free run's.
#[test]
fn transient_eio_window_heals_in_place() {
    let (ref_bytes, ref_report, _) = reference();

    let mem = MemStorage::new();
    let faulty = Storage::new(Arc::new(FaultyStorage::new(
        Storage::new(Arc::new(mem.clone())),
        &storage_plan(FaultKind::StorageEioTransient, 4.0, 3.0),
    )));
    let mut sdb = db();
    let mut journal = Journal::open_with(faulty.clone(), JOURNAL).unwrap();
    let s = sweep(&mut sdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(s.complete && s.storage_degraded.is_none());
    assert_eq!(s.report, ref_report);
    let health = journal.health();
    assert!(health.retries > 0, "window never hit a journal write");
    assert_eq!(health.rotations, 0);
    assert!(health.backoff_sim_s > 0.0);
    drop(journal);
    assert_eq!(mem.file_bytes(Path::new(JOURNAL)).unwrap(), ref_bytes);
}

/// A short write (half the batch lands, then the device errors) is
/// repaired by truncating the torn tail and recommitting — no duplicate
/// or interleaved records survive.
#[test]
fn short_write_repairs_tail_and_recommits() {
    let (ref_bytes, ref_report, _) = reference();

    let mem = MemStorage::new();
    let faulty = Storage::new(Arc::new(FaultyStorage::new(
        Storage::new(Arc::new(mem.clone())),
        &storage_plan(FaultKind::StorageShortWrite, 3.0, 0.0),
    )));
    let mut sdb = db();
    let mut journal = Journal::open_with(faulty.clone(), JOURNAL).unwrap();
    let s = sweep(&mut sdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(s.complete && s.storage_degraded.is_none());
    assert_eq!(s.report, ref_report);
    assert!(journal.health().retries > 0);
    drop(journal);
    assert_eq!(mem.file_bytes(Path::new(JOURNAL)).unwrap(), ref_bytes);
}

/// An fsync that lies (reports success without flushing) is undetectable
/// while power holds — but after a power cycle the unflushed suffix is
/// gone, and a resume heals the journal back to the reference bytes.
#[test]
fn fsync_lie_is_healed_by_resume_after_power_cycle() {
    let (ref_bytes, ref_report, _) = reference();

    // Learn the op index of the final sync (the completion marker's) so
    // the lie can target exactly it; every earlier sync would be masked by
    // a later one flushing the whole file.
    let probe_mem = MemStorage::new();
    let probe = FaultyStorage::new(Storage::new(Arc::new(probe_mem)), &FaultPlan::default());
    let probe_storage = Storage::new(Arc::new(probe.clone()));
    let mut journal = Journal::open_with(probe_storage.clone(), JOURNAL).unwrap();
    sweep(&mut db(), &mut journal, StorageEscalation::Abort).unwrap();
    drop(journal);
    let last_sync = probe.ops() as f64 - 1.0;

    let mem = MemStorage::new();
    let faulty = Storage::new(Arc::new(FaultyStorage::new(
        Storage::new(Arc::new(mem.clone())),
        &storage_plan(FaultKind::StorageFsyncLie, last_sync, 0.0),
    )));
    let mut sdb = db();
    let mut journal = Journal::open_with(faulty.clone(), JOURNAL).unwrap();
    let s = sweep(&mut sdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(s.complete && s.storage_degraded.is_none());
    drop(journal);
    // The lie is invisible live...
    assert_eq!(mem.file_bytes(Path::new(JOURNAL)).unwrap(), ref_bytes);
    // ...but the completion marker never reached the platter.
    mem.power_cycle(CrashVariant::Clean);
    let after = mem.file_bytes(Path::new(JOURNAL)).unwrap();
    assert!(after.len() < ref_bytes.len(), "power cycle lost nothing");

    let clean = Storage::new(Arc::new(mem.clone()));
    let mut rdb = db();
    let mut journal = Journal::open_with(clean.clone(), JOURNAL).unwrap();
    let resumed = sweep(&mut rdb, &mut journal, StorageEscalation::Abort).unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, DEVICES);
    assert_eq!(resumed.report, ref_report);
    drop(journal);
    assert_eq!(mem.file_bytes(Path::new(JOURNAL)).unwrap(), ref_bytes);
}
