//! Determinism and equivalence contract of the streaming sweep engine:
//! [`populate_streamed`] must journal byte-identically to the exact
//! [`populate_batched`] oracle path, agree with the full-fleet
//! [`CrowdDatabase`] on every count and (within documented float bounds)
//! every statistic, and produce a bit-identical aggregate across thread
//! counts, batch widths, and kill+resume — while holding constant memory.

use accubench::aggregate::ScoreAggregate;
use accubench::crowd::{
    populate_batched, populate_streamed, CrowdDatabase, FleetVerdict, SweepConfig, STREAM_GROUP,
};
use accubench::journal::{CancelToken, Journal};
use accubench::protocol::Protocol;
use accubench::supervise::SessionChaos;
use pv_faults::ALL_KINDS;
use pv_json::ToJson;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_stats::Summary;
use pv_units::Seconds;
use std::path::PathBuf;

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

fn faulty_cfg() -> SweepConfig {
    SweepConfig::clean(quick(), 2).with_faults(0xC0FFEE, Seconds(1500.0), ALL_KINDS.to_vec())
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv-stream-{tag}-{}", std::process::id()))
}

fn agg() -> ScoreAggregate {
    ScoreAggregate::new(5.0).unwrap()
}

/// Byte fingerprint of a streaming aggregate: compact JSON of every field,
/// moments bits included. String equality here is bit equality.
fn print_of(a: &ScoreAggregate) -> String {
    a.to_json().to_string_compact()
}

const DEVICES: usize = 10;

/// The streaming engine against the exact oracle: identical admission
/// decisions, identical journal bytes, identical holes, and moments that
/// match the retained-score [`Summary`] to float round-off.
#[test]
fn streaming_matches_oracle_database_and_journal_bytes() {
    let cfg = faulty_cfg();

    // Oracle: the full-fleet CrowdDatabase path.
    let oracle_path = tmp_path("oracle");
    let _ = std::fs::remove_file(&oracle_path);
    let mut db = CrowdDatabase::new(5.0).unwrap();
    let mut journal = Journal::open(&oracle_path).unwrap();
    let oracle = populate_batched(
        &mut db,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        2,
        8,
    )
    .unwrap();
    assert!(oracle.complete);
    drop(journal);
    let oracle_bytes = std::fs::read(&oracle_path).unwrap();

    // Streaming, journaled, same config.
    let stream_path = tmp_path("streamed");
    let _ = std::fs::remove_file(&stream_path);
    let mut a = agg();
    let mut journal = Journal::open(&stream_path).unwrap();
    let streamed = populate_streamed(
        &mut a,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        2,
        8,
        true,
    )
    .unwrap();
    assert!(streamed.complete);
    drop(journal);

    // Same journal bytes: a streaming journal and an oracle journal are
    // interchangeable for resume.
    assert_eq!(std::fs::read(&stream_path).unwrap(), oracle_bytes);

    // Same admission outcome on every device.
    let scores = db.model_scores("Pixel");
    assert_eq!(streamed.aggregate.accepted() as usize, scores.len());
    assert_eq!(streamed.aggregate.rejected() as usize, db.rejected());
    assert_eq!(streamed.completed, oracle.report.completed());
    assert_eq!(streamed.holes.len(), oracle.report.quarantined_devices());
    assert_eq!(streamed.fleet_verdict(), oracle.fleet_verdict());

    // Retained scores are exactly the oracle's accepted scores, in device
    // order.
    let retained: Vec<f64> = streamed.retained.iter().map(|&(_, s)| s).collect();
    assert_eq!(retained, scores);

    // Moments agree with the exact Summary to round-off.
    let summary = Summary::from_slice(scores).unwrap();
    let m = streamed.aggregate.moments();
    assert!((m.mean().unwrap() - summary.mean()).abs() <= 1e-9 * summary.mean().abs());
    assert!((m.sample_std().unwrap() - summary.std()).abs() <= 1e-9 * summary.std().max(1.0));

    // The streaming leaderboard is the oracle ranking's prefix.
    let mut ranked: Vec<f64> = scores.to_vec();
    ranked.sort_by(|a, b| b.total_cmp(a));
    let top: Vec<f64> = streamed
        .aggregate
        .leaderboard()
        .entries()
        .iter()
        .map(|e| e.score)
        .collect();
    assert_eq!(top, ranked[..ranked.len().min(10)]);

    let _ = std::fs::remove_file(&oracle_path);
    let _ = std::fs::remove_file(&stream_path);
}

/// The aggregate's bits — not just its rounded statistics — are identical
/// across every thread count and batch width, for clean, faulted, and
/// chaos-striken fleets alike.
#[test]
fn streamed_aggregate_bit_identical_across_threads_and_widths() {
    for (tag, cfg) in [
        ("clean", SweepConfig::clean(quick(), 2)),
        ("faulty", faulty_cfg()),
        (
            "chaos",
            faulty_cfg().with_chaos(SessionChaos::new(3, 1, 0).striking_at(30.0)),
        ),
    ] {
        let mut reference = agg();
        let serial = populate_streamed(
            &mut reference,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            None,
            &CancelToken::new(),
            1,
            1,
            true,
        )
        .unwrap();
        let reference_print = print_of(&reference);

        for threads in [1usize, 4] {
            for batch in [1usize, 3, 8, 64] {
                let mut a = agg();
                let run = populate_streamed(
                    &mut a,
                    "Pixel",
                    fleet(DEVICES),
                    &cfg,
                    None,
                    &CancelToken::new(),
                    threads,
                    batch,
                    true,
                )
                .unwrap();
                assert_eq!(
                    print_of(&a),
                    reference_print,
                    "{tag}: threads={threads} batch={batch}: aggregate bits diverged"
                );
                assert_eq!(run.holes, serial.holes, "{tag}: t={threads} b={batch}");
                assert_eq!(run.retained, serial.retained, "{tag}: t={threads} b={batch}");
            }
        }
    }
}

/// Kill a streaming journaled sweep at seeded random byte offsets, resume
/// with a different thread count, and require the aggregate bits and the
/// healed journal to match the uninterrupted run exactly. This exercises
/// the resume-straddle path: a cut rarely lands on the [`STREAM_GROUP`]
/// grid, so the sink must top up the open group partial device-by-device.
#[test]
fn streamed_kill_resume_is_bit_deterministic() {
    let cfg = faulty_cfg();

    let full_path = tmp_path("kill-full");
    let _ = std::fs::remove_file(&full_path);
    let mut base = agg();
    let mut journal = Journal::open(&full_path).unwrap();
    let baseline = populate_streamed(
        &mut base,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        1,
        1,
        true,
    )
    .unwrap();
    assert!(baseline.complete);
    drop(journal);
    let full_bytes = std::fs::read(&full_path).unwrap();
    let base_print = print_of(&base);

    let mut rng = StdRng::seed_from_u64(0x57EA_4001);
    let resume_path = tmp_path("kill-resume");
    for round in 0..6 {
        let cut = rng.gen_range(1..full_bytes.len());
        std::fs::write(&resume_path, &full_bytes[..cut]).unwrap();

        let mut a = agg();
        let mut journal = Journal::open(&resume_path).unwrap();
        let resumed = populate_streamed(
            &mut a,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
            4,
            8,
            true,
        )
        .unwrap();
        assert!(resumed.complete, "round {round} (cut {cut})");
        drop(journal);
        assert_eq!(
            print_of(&a),
            base_print,
            "round {round} (cut {cut}): resumed aggregate bits diverged"
        );
        assert_eq!(resumed.holes, baseline.holes, "round {round} (cut {cut})");
        assert_eq!(
            resumed.retained, baseline.retained,
            "round {round} (cut {cut})"
        );
        assert_eq!(
            std::fs::read(&resume_path).unwrap(),
            full_bytes,
            "round {round} (cut {cut}): healed journal bytes diverged"
        );
    }
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);
}

/// A streaming sweep can resume a journal the oracle path wrote, and vice
/// versa — the two engines share one journal format and digest.
#[test]
fn streaming_resumes_oracle_journal_and_vice_versa() {
    let cfg = faulty_cfg();

    // Oracle writes a partial journal (cancel mid-flight).
    let path = tmp_path("cross");
    let _ = std::fs::remove_file(&path);
    let cancel = CancelToken::new();
    let trigger = cancel.clone();
    let arm = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(5));
        trigger.cancel();
    });
    let mut journal = Journal::open(&path).unwrap();
    let _ = populate_batched(
        &mut CrowdDatabase::new(5.0).unwrap(),
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &cancel,
        4,
        8,
    )
    .unwrap();
    arm.join().unwrap();
    drop(journal);

    // Streaming finishes it.
    let mut a = agg();
    let mut journal = Journal::open(&path).unwrap();
    let finished = populate_streamed(
        &mut a,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        2,
        8,
        false,
    )
    .unwrap();
    assert!(finished.complete);
    drop(journal);
    let cross_bytes = std::fs::read(&path).unwrap();

    // And the bytes equal an uninterrupted streaming (or oracle) journal.
    let clean_path = tmp_path("cross-clean");
    let _ = std::fs::remove_file(&clean_path);
    let mut journal = Journal::open(&clean_path).unwrap();
    let clean = populate_streamed(
        &mut agg(),
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
        1,
        1,
        false,
    )
    .unwrap();
    assert!(clean.complete);
    drop(journal);
    assert_eq!(cross_bytes, std::fs::read(&clean_path).unwrap());

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&clean_path);
}

/// Memory boundedness: the aggregate's resident footprint does not grow
/// with the fleet (only with histogram bins, leaderboard K, and holes),
/// and a fleet larger than one [`STREAM_GROUP`] exercises multi-group
/// merging without growing the footprint either.
#[test]
fn streamed_memory_is_fleet_size_independent() {
    let cfg = SweepConfig::clean(quick(), 1);
    // Both fleets overfill the K=10 leaderboard, so the only admissible
    // footprint difference is label lengths — of which there is none here.
    let mut small = agg();
    let small_run = populate_streamed(
        &mut small,
        "Pixel",
        fleet(17),
        &cfg,
        None,
        &CancelToken::new(),
        2,
        4,
        false,
    )
    .unwrap();
    let mut large = agg();
    let large_run = populate_streamed(
        &mut large,
        "Pixel",
        fleet(STREAM_GROUP + 17),
        &cfg,
        None,
        &CancelToken::new(),
        2,
        4,
        false,
    )
    .unwrap();
    assert_eq!(small_run.fleet_verdict(), FleetVerdict::Clean);
    assert_eq!(large_run.fleet_verdict(), FleetVerdict::Clean);
    assert_eq!(large.accepted(), (STREAM_GROUP + 17) as u64);
    // Same layout, same saturated K ⇒ same bounded footprint.
    assert_eq!(
        large.approx_bytes(),
        small.approx_bytes(),
        "footprint grew with fleet size"
    );
    assert!(large_run.retained.is_empty());

    // Streaming survivor CI is a well-formed normal-approximation interval
    // containing the mean.
    let ci = large_run.survivor_ci().unwrap();
    assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    assert!(ci.contains(large.mean().unwrap()));
}
