//! Crash-safety contract of the journaled sweep: kill the process at an
//! arbitrary byte of the write-ahead journal, resume, and the final report
//! is bit-identical to an uninterrupted run's.
//!
//! The "kill" is simulated by truncating a completed journal at a seeded
//! random byte offset — exactly what a power cut mid-`write` leaves on
//! disk — and handing the mutilated file back to [`populate_journaled`].

use accubench::crowd::{
    populate_journaled, populate_resilient, CrowdDatabase, SweepConfig, SweepReport,
};
use accubench::journal::{CancelToken, Journal};
use accubench::protocol::Protocol;
use accubench::BenchError;
use pv_faults::ALL_KINDS;
use pv_rng::{Rng, SeedableRng, StdRng};
use pv_soc::catalog;
use pv_soc::device::Device;
use pv_units::Seconds;
use std::path::PathBuf;

fn quick() -> Protocol {
    Protocol::unconstrained()
        .with_warmup(Seconds(20.0))
        .with_workload(Seconds(30.0))
}

fn fleet(n: usize) -> Vec<Device> {
    (0..n)
        .map(|i| {
            let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
            catalog::pixel(grade, format!("pixel-crowd-{i:03}")).unwrap()
        })
        .collect()
}

/// Faulty enough that outcomes differ across devices, so a resume that
/// desynchronised the per-device seeding would be caught.
fn faulty_cfg() -> SweepConfig {
    SweepConfig::clean(quick(), 2).with_faults(0xC0FFEE, Seconds(1500.0), ALL_KINDS.to_vec())
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv-journal-{tag}-{}", std::process::id()))
}

fn db() -> CrowdDatabase {
    CrowdDatabase::new(5.0).unwrap()
}

const DEVICES: usize = 10;

/// The acceptance test: journal a sweep, truncate the journal at a random
/// byte offset (seeded, 12 distinct kill points), resume, and require the
/// resumed report and crowd database to equal the uninterrupted run's.
#[test]
fn kill_at_random_offset_resumes_to_identical_result() {
    let cfg = faulty_cfg();

    // Uninterrupted, unjournaled baseline.
    let mut base_db = db();
    let baseline = populate_resilient(&mut base_db, "Pixel", fleet(DEVICES), &cfg).unwrap();

    // Uninterrupted journaled run: same report, and the journal alone
    // reconstructs it.
    let full_path = tmp_path("full");
    let _ = std::fs::remove_file(&full_path);
    let mut journal = Journal::open(&full_path).unwrap();
    let mut jdb = db();
    let sweep = populate_journaled(
        &mut jdb,
        "Pixel",
        fleet(DEVICES),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(sweep.complete);
    assert_eq!(sweep.resumed, 0);
    assert_eq!(sweep.report, baseline);
    assert_eq!(jdb.scores(), base_db.scores());
    drop(journal);
    let full_bytes = std::fs::read(&full_path).unwrap();
    let records = Journal::read_records(&full_path).unwrap();
    assert_eq!(SweepReport::from_journal(&records).unwrap(), baseline);

    // Kill at 12 seeded random byte offsets and resume each time.
    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    let resume_path = tmp_path("resume");
    for round in 0..12 {
        let cut = rng.gen_range(1..full_bytes.len());
        std::fs::write(&resume_path, &full_bytes[..cut]).unwrap();

        let mut journal = Journal::open(&resume_path).unwrap();
        let recovered = journal.recovered().len();
        assert!(
            recovered < records.len(),
            "round {round}: cut {cut} dropped nothing"
        );
        let mut rdb = db();
        let resumed = populate_journaled(
            &mut rdb,
            "Pixel",
            fleet(DEVICES),
            &cfg,
            Some(&mut journal),
            &CancelToken::new(),
        );
        // A cut inside the header leaves an empty journal, which a resume
        // treats as a fresh sweep — still converging on the baseline.
        let resumed = resumed.unwrap();
        assert!(resumed.complete, "round {round} (cut {cut})");
        assert_eq!(resumed.report, baseline, "round {round} (cut {cut})");
        assert_eq!(rdb.scores(), base_db.scores(), "round {round} (cut {cut})");

        // And the healed journal itself reconstructs the same report.
        drop(journal);
        let healed = Journal::read_records(&resume_path).unwrap();
        assert_eq!(
            SweepReport::from_journal(&healed).unwrap(),
            baseline,
            "round {round} (cut {cut})"
        );
    }
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);
}

/// Resuming under a changed configuration (different fault seed, different
/// fleet size) is a hard error before anything runs.
#[test]
fn resume_refuses_changed_configuration() {
    let cfg = faulty_cfg();
    let path = tmp_path("digest");
    let _ = std::fs::remove_file(&path);

    let mut journal = Journal::open(&path).unwrap();
    populate_journaled(
        &mut db(),
        "Pixel",
        fleet(4),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    drop(journal);

    // Different fault seed.
    let other = SweepConfig::clean(quick(), 2).with_faults(1, Seconds(1500.0), ALL_KINDS.to_vec());
    let mut journal = Journal::open(&path).unwrap();
    let err = populate_journaled(
        &mut db(),
        "Pixel",
        fleet(4),
        &other,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap_err();
    assert!(matches!(err, BenchError::Journal(_)), "{err}");
    assert!(format!("{err}").contains("refusing to resume"), "{err}");
    drop(journal);

    // Different fleet size under the same config.
    let mut journal = Journal::open(&path).unwrap();
    let err = populate_journaled(
        &mut db(),
        "Pixel",
        fleet(5),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap_err();
    assert!(format!("{err}").contains("refusing to resume"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// Cooperative cancellation: a cancelled sweep journals what it finished,
/// reports `complete = false`, and a later resume converges on the full
/// uninterrupted result.
#[test]
fn cancelled_sweep_resumes_cleanly() {
    let cfg = faulty_cfg();
    let mut base_db = db();
    let baseline = populate_resilient(&mut base_db, "Pixel", fleet(6), &cfg).unwrap();

    let path = tmp_path("cancel");
    let _ = std::fs::remove_file(&path);
    let cancel = CancelToken::new();
    cancel.cancel();
    let mut journal = Journal::open(&path).unwrap();
    let stopped = populate_journaled(
        &mut db(),
        "Pixel",
        fleet(6),
        &cfg,
        Some(&mut journal),
        &cancel,
    )
    .unwrap();
    assert!(!stopped.complete);
    assert!(stopped.report.outcomes.is_empty());
    drop(journal);

    let mut rdb = db();
    let mut journal = Journal::open(&path).unwrap();
    let resumed = populate_journaled(
        &mut rdb,
        "Pixel",
        fleet(6),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.report, baseline);
    assert_eq!(rdb.scores(), base_db.scores());
    let _ = std::fs::remove_file(&path);
}

/// A journal sealed with its completion marker replays entirely from disk:
/// every device is restored, none re-simulated, and the crowd database
/// matches the live run's.
#[test]
fn complete_journal_replays_without_simulation() {
    let cfg = faulty_cfg();
    let path = tmp_path("replay");
    let _ = std::fs::remove_file(&path);

    let mut live_db = db();
    let mut journal = Journal::open(&path).unwrap();
    let live = populate_journaled(
        &mut live_db,
        "Pixel",
        fleet(5),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    drop(journal);
    let before = std::fs::read(&path).unwrap();

    let mut replay_db = db();
    let mut journal = Journal::open(&path).unwrap();
    let replay = populate_journaled(
        &mut replay_db,
        "Pixel",
        fleet(5),
        &cfg,
        Some(&mut journal),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(replay.complete);
    assert_eq!(replay.resumed, 5);
    assert_eq!(replay.report, live.report);
    assert_eq!(replay_db.scores(), live_db.scores());
    drop(journal);
    // A pure replay appends nothing.
    assert_eq!(std::fs::read(&path).unwrap(), before);
    let _ = std::fs::remove_file(&path);
}
