//! Virtual filesystem seam with storage-fault injection and crash
//! simulation.
//!
//! The [`Journal`](crate::journal::Journal) and
//! [`FigureExporter`](crate::export::FigureExporter) promised crash
//! safety, but until this module every `std::io::Error` on the write path
//! was fail-stop, and recovery could only be tested against files mutilated
//! *after* the fact. This module puts a small trait seam —
//! [`StorageBackend`] over open/read/rename plus [`StorageFile`] over
//! write/sync/truncate — under every durable write, with three
//! implementations:
//!
//! * [`OsStorage`] — the real filesystem, byte-for-byte what the code did
//!   before the seam existed;
//! * [`MemStorage`] — an in-memory disk that distinguishes *cached* from
//!   *durable* bytes, counts every mutating operation, and can simulate a
//!   power loss before any chosen operation (with seeded torn/corrupt-tail
//!   variants). The crash-consistency torture harness enumerates every
//!   I/O boundary of a sweep on top of it;
//! * [`FaultyStorage`] — a wrapper that injects the storage fault kinds of
//!   `pv-faults` (`ENOSPC`, transient/persistent `EIO`, short writes,
//!   fsync-that-lies) on an operation-indexed clock, over any inner
//!   backend — including the real one, which is how `repro sweep
//!   --storage-faults` exercises degradation end to end.
//!
//! [`classify`] sorts an `io::Error` into transient vs persistent so the
//! journal's bounded retry/backoff ([`StoragePolicy`]) knows whether to
//! retry, rotate to a fresh segment, or give up and let the sweep degrade
//! ([`StorageEscalation`]).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use pv_faults::{FaultEvent, FaultKind, FaultPlan};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// An open file behind the storage seam. Only the operations the journal
/// and exporter actually use — sequential reads, appending writes, sync,
/// truncate, seek — so in-memory and fault-injecting implementations stay
/// small and obviously correct.
///
/// `len` takes `&mut self` (the OS cursor may move), so the usual
/// `is_empty` pairing does not apply.
#[allow(clippy::len_without_is_empty)]
pub trait StorageFile: Send + fmt::Debug {
    /// Writes all of `buf` at the current cursor.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes written data to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates (or extends with zeros) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Moves the cursor to absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
    /// Reads up to `buf.len()` bytes at the cursor; `Ok(0)` means EOF.
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Current length of the file in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// A filesystem namespace behind the storage seam.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Opens `path` read/write, creating it if missing (never truncating).
    fn open(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Creates `path` read/write, truncating any existing contents.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Reads the whole of `path` into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parent directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Whether anything exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Whether `path` exists and is a directory.
    fn is_dir(&self, path: &Path) -> bool;
}

/// Cloneable handle to a [`StorageBackend`] — what [`Journal`] and
/// [`FigureExporter`] actually hold.
///
/// [`Journal`]: crate::journal::Journal
/// [`FigureExporter`]: crate::export::FigureExporter
#[derive(Debug, Clone)]
pub struct Storage(Arc<dyn StorageBackend>);

impl Storage {
    /// The real filesystem.
    pub fn os() -> Self {
        Storage(Arc::new(OsStorage))
    }

    /// Wraps any backend.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        Storage(backend)
    }

    /// The backend, for wrappers that need to delegate.
    pub fn backend(&self) -> &dyn StorageBackend {
        self.0.as_ref()
    }

    /// See [`StorageBackend::open`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn open(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.0.open(path)
    }

    /// See [`StorageBackend::create`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.0.create(path)
    }

    /// See [`StorageBackend::read`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.0.read(path)
    }

    /// Reads `path` as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error; non-UTF-8 contents are
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let bytes = self.0.read(path)?;
        String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not valid utf-8"))
    }

    /// See [`StorageBackend::rename`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.0.rename(from, to)
    }

    /// See [`StorageBackend::remove_file`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.0.remove_file(path)
    }

    /// See [`StorageBackend::create_dir_all`].
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.0.create_dir_all(path)
    }

    /// See [`StorageBackend::exists`].
    pub fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }

    /// See [`StorageBackend::is_dir`].
    pub fn is_dir(&self, path: &Path) -> bool {
        self.0.is_dir(path)
    }
}

impl Default for Storage {
    fn default() -> Self {
        Storage::os()
    }
}

// ---------------------------------------------------------------------------
// OsStorage — the real filesystem.
// ---------------------------------------------------------------------------

/// The real filesystem: every operation maps 1:1 onto `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsStorage;

#[derive(Debug)]
struct OsFile(std::fs::File);

impl StorageFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(io::SeekFrom::Start(pos)).map(|_| ())
    }

    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl StorageBackend for OsStorage {
    fn open(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
}

// ---------------------------------------------------------------------------
// MemStorage — in-memory disk with a durability model and crash simulation.
// ---------------------------------------------------------------------------

/// How the unsynced suffix of each file lands on disk at a simulated power
/// loss ([`MemStorage::power_cycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVariant {
    /// Only fsynced bytes survive — the kernel flushed nothing extra.
    Clean,
    /// Half of the unsynced suffix reached the platter before power died —
    /// a classic torn multi-sector write.
    Partial,
    /// Half reached the platter *and* the tail of what landed was
    /// corrupted in flight: seeded deterministic bit flips, modelling a
    /// torn sector whose contents are garbage.
    Torn {
        /// Seed for the deterministic corruption pattern.
        seed: u64,
    },
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Current visible contents (the page cache).
    cache: Vec<u8>,
    /// Contents guaranteed to survive power loss (as of the last sync).
    durable: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: Vec<PathBuf>,
    /// Mutating operations performed so far.
    ops: u64,
    /// When `Some(k)`: the k-th mutating operation (0-based) and everything
    /// after it fails as if the machine lost power at that boundary.
    crash_at: Option<u64>,
    crashed: bool,
}

/// An in-memory filesystem that models durability: every file tracks both
/// its cached and its durable (last-synced) contents, every mutating
/// operation is counted, and [`MemStorage::power_cycle`] simulates a power
/// loss — optionally mid-write, with seeded torn/corrupt tails.
///
/// Clones share the same disk, so a test can keep a handle while the
/// journal owns another.
///
/// Model notes: `sync_data` flushes the *whole* file (like an OS page
/// cache, which may also flush earlier writes); `rename` and
/// `remove_file` are treated as atomic and immediately durable (journals
/// never rename, and the exporter's rename follows an fsync of the file
/// itself).
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    state: Arc<Mutex<MemState>>,
}

fn crashed_err() -> io::Error {
    io::Error::other("simulated power loss")
}

impl MemStorage {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutating operations performed so far (writes, syncs, truncates,
    /// renames, removals, creations). The torture harness runs a sweep
    /// once to learn this count, then enumerates a crash before every one.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Arms a crash before mutating operation `op` (0-based): that
    /// operation and every later one fail, as if power died at exactly
    /// that I/O boundary. Follow with [`MemStorage::power_cycle`].
    pub fn arm_crash(&self, op: u64) {
        let mut s = self.lock();
        s.crash_at = Some(op);
        s.crashed = false;
    }

    /// Simulates the reboot after a power loss: every file reverts to its
    /// durable contents plus whatever `variant` says survived of the
    /// unsynced suffix; the crash arming is cleared and the op counter
    /// keeps running.
    pub fn power_cycle(&self, variant: CrashVariant) {
        let mut s = self.lock();
        for f in s.files.values_mut() {
            let mut disk = f.durable.clone();
            // The unsynced appended suffix, when the cache still extends
            // the durable prefix. Overwrites of synced bytes and unsynced
            // truncations revert wholesale to the durable image.
            let extra: &[u8] = if f.cache.len() > disk.len() && f.cache[..disk.len()] == disk[..] {
                &f.cache[disk.len()..]
            } else {
                &[]
            };
            match variant {
                CrashVariant::Clean => {}
                CrashVariant::Partial => {
                    let keep = extra.len().div_ceil(2);
                    disk.extend_from_slice(&extra[..keep]);
                }
                CrashVariant::Torn { seed } => {
                    let keep = extra.len().div_ceil(2);
                    let start = disk.len();
                    disk.extend_from_slice(&extra[..keep]);
                    // Corrupt up to 8 bytes of the torn sector with
                    // deterministic pseudo-random flips.
                    let mut h = seed | 1;
                    let lo = start + keep.saturating_sub(8);
                    for b in &mut disk[lo..] {
                        h = h.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
                        *b ^= (h >> 33) as u8 | 1;
                    }
                }
            }
            f.cache = disk.clone();
            f.durable = disk;
        }
        s.crash_at = None;
        s.crashed = false;
    }

    /// Current (cached) contents of `path`, if it exists.
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.cache.clone())
    }

    /// Durable contents of `path` — what a power loss right now would
    /// leave (under [`CrashVariant::Clean`]).
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.durable.clone())
    }
}

impl MemState {
    /// Gatekeeper for every mutating operation: trips the armed crash,
    /// rejects everything after it, and otherwise ticks the op counter.
    fn mutate(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(crashed_err());
        }
        if let Some(k) = self.crash_at {
            if self.ops >= k {
                self.crashed = true;
                return Err(crashed_err());
            }
        }
        self.ops += 1;
        Ok(())
    }

    fn read_ok(&self) -> io::Result<()> {
        if self.crashed {
            return Err(crashed_err());
        }
        Ok(())
    }
}

#[derive(Debug)]
struct MemHandle {
    storage: MemStorage,
    path: PathBuf,
    cursor: u64,
}

impl MemHandle {
    fn with_file<T>(
        &self,
        mutating: bool,
        f: impl FnOnce(&mut MemFile) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut s = self.storage.lock();
        if mutating {
            s.mutate()?;
        } else {
            s.read_ok()?;
        }
        let file = s
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file was removed"))?;
        f(file)
    }
}

impl StorageFile for MemHandle {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let cursor = self.cursor as usize;
        self.with_file(true, |f| {
            if f.cache.len() < cursor {
                f.cache.resize(cursor, 0);
            }
            f.cache.truncate(cursor);
            f.cache.extend_from_slice(buf);
            Ok(())
        })?;
        self.cursor += buf.len() as u64;
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.with_file(true, |f| {
            f.durable = f.cache.clone();
            Ok(())
        })
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.with_file(true, |f| {
            f.cache.resize(len as usize, 0);
            Ok(())
        })
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.cursor = pos;
        Ok(())
    }

    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cursor = self.cursor as usize;
        let n = self.with_file(false, |f| {
            if cursor >= f.cache.len() {
                return Ok(0);
            }
            let n = buf.len().min(f.cache.len() - cursor);
            buf[..n].copy_from_slice(&f.cache[cursor..cursor + n]);
            Ok(n)
        })?;
        self.cursor += n as u64;
        Ok(n)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.with_file(false, |f| Ok(f.cache.len() as u64))
    }
}

impl StorageBackend for MemStorage {
    fn open(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        {
            let mut s = self.lock();
            if s.files.contains_key(path) {
                s.read_ok()?;
            } else {
                // Creating the file is itself a mutating operation (and a
                // crash boundary the torture harness enumerates).
                s.mutate()?;
                s.files.insert(path.to_path_buf(), MemFile::default());
            }
        }
        Ok(Box::new(MemHandle {
            storage: self.clone(),
            path: path.to_path_buf(),
            cursor: 0,
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        {
            let mut s = self.lock();
            s.mutate()?;
            let f = s.files.entry(path.to_path_buf()).or_default();
            f.cache.clear();
        }
        Ok(Box::new(MemHandle {
            storage: self.clone(),
            path: path.to_path_buf(),
            cursor: 0,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.lock();
        s.read_ok()?;
        s.files
            .get(path)
            .map(|f| f.cache.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        let f = s
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        s.files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.mutate()?;
        let path = path.to_path_buf();
        if !s.dirs.contains(&path) {
            s.dirs.push(path);
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.lock();
        s.files.contains_key(path) || s.dirs.iter().any(|d| d == path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.lock().dirs.iter().any(|d| d == path)
    }
}

// ---------------------------------------------------------------------------
// FaultyStorage — plan-driven fault injection over any backend.
// ---------------------------------------------------------------------------

/// Marker payload attached to every injected storage error, so
/// [`classify`] can tell injected faults (and their kinds) from real I/O
/// failures.
#[derive(Debug)]
pub struct InjectedFault {
    /// Which storage fault kind fired.
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::StorageEnospc => write!(f, "injected: no space left on device"),
            FaultKind::StorageEioTransient => write!(f, "injected: transient i/o error"),
            FaultKind::StorageEioPersistent => write!(f, "injected: persistent i/o error"),
            FaultKind::StorageShortWrite => write!(f, "injected: short write"),
            other => write!(f, "injected: {other}"),
        }
    }
}

impl std::error::Error for InjectedFault {}

fn injected(kind: FaultKind) -> io::Error {
    let k = match kind {
        FaultKind::StorageEnospc => io::ErrorKind::StorageFull,
        FaultKind::StorageShortWrite => io::ErrorKind::WriteZero,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(k, InjectedFault { kind })
}

/// Whether a failed storage operation is worth retrying in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Expected to clear on its own — retry with backoff.
    Transient,
    /// Will not clear by retrying at the same spot — rotate or give up.
    Persistent,
}

/// Classifies an I/O error for the retry machinery: injected transient
/// EIO and short writes are [`FaultClass::Transient`]; injected `ENOSPC`
/// and persistent EIO are [`FaultClass::Persistent`]; among real errors
/// only [`io::ErrorKind::Interrupted`] is transient.
pub fn classify(e: &io::Error) -> FaultClass {
    if let Some(injected) = e.get_ref().and_then(|r| r.downcast_ref::<InjectedFault>()) {
        return match injected.kind {
            FaultKind::StorageEioTransient | FaultKind::StorageShortWrite => FaultClass::Transient,
            _ => FaultClass::Persistent,
        };
    }
    if e.kind() == io::ErrorKind::Interrupted {
        FaultClass::Transient
    } else {
        FaultClass::Persistent
    }
}

#[derive(Debug)]
struct FaultClock {
    events: Vec<FaultEvent>,
    /// Fault-relevant operations observed so far — the storage plan's
    /// clock. Storage fault events interpret [`FaultEvent::at`] as an
    /// operation ordinal and [`FaultEvent::duration`] as an operation
    /// count.
    ops: u64,
    injected: u64,
}

impl FaultClock {
    /// Ticks the clock and returns the storage fault kind active at this
    /// operation, if any. Persistent-EIO windows never close: once the
    /// clock passes `at`, the device is gone for good.
    fn tick(&mut self) -> Option<FaultKind> {
        let t = self.ops as f64;
        self.ops += 1;
        let hit = self
            .events
            .iter()
            .find(|e| {
                if e.kind == FaultKind::StorageEioPersistent {
                    t >= e.at
                } else {
                    e.active_at(t)
                }
            })
            .map(|e| e.kind);
        if hit.is_some() {
            self.injected += 1;
        }
        hit
    }
}

/// A [`StorageBackend`] wrapper that injects the storage fault kinds of a
/// [`FaultPlan`] on a deterministic per-operation clock, over any inner
/// backend.
///
/// Per kind: `storage-enospc` fails writes, creations and renames (space
/// cannot be allocated) but lets shrinking truncates and syncs through;
/// `storage-eio-transient` fails any operation inside its window;
/// `storage-eio-persistent` fails every operation from its start forever;
/// `storage-short-write` writes only a prefix before failing (transient —
/// the journal repairs its tail and retries); `storage-fsync-lie` makes
/// `sync_data` report success *without* syncing, which only becomes
/// observable when the inner backend is a [`MemStorage`] that later
/// crashes. `storage-torn-write` is ignored here — tearing happens at
/// crash time and belongs to [`MemStorage::power_cycle`].
#[derive(Debug, Clone)]
pub struct FaultyStorage {
    inner: Storage,
    clock: Arc<Mutex<FaultClock>>,
}

impl FaultyStorage {
    /// Wraps `inner`, injecting the storage events of `plan` (non-storage
    /// events are ignored).
    pub fn new(inner: Storage, plan: &FaultPlan) -> Self {
        let events = plan
            .events
            .iter()
            .filter(|e| e.kind.is_storage())
            .cloned()
            .collect();
        Self {
            inner,
            clock: Arc::new(Mutex::new(FaultClock {
                events,
                ops: 0,
                injected: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FaultClock> {
        self.clock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fault-relevant operations observed so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// How many operations had a fault injected.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Ticks the shared clock for one operation named `op`, returning the
    /// error to inject, if any.
    fn gate(&self, op: Op) -> io::Result<()> {
        let Some(kind) = self.lock().tick() else {
            return Ok(());
        };
        match (kind, op) {
            // Releasing space always works on a full disk; fsync of
            // already-written data does too.
            (FaultKind::StorageEnospc, Op::Shrink | Op::Sync | Op::Remove) => Ok(()),
            (FaultKind::StorageEnospc, _) => Err(injected(kind)),
            (FaultKind::StorageEioTransient | FaultKind::StorageEioPersistent, _) => {
                Err(injected(kind))
            }
            // Short writes and fsync lies are handled at the call site.
            (FaultKind::StorageShortWrite, Op::Write) => Err(injected(kind)),
            (FaultKind::StorageFsyncLie, Op::Sync) => Err(injected(kind)),
            _ => Ok(()),
        }
    }
}

/// Operation categories the fault gate distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Write,
    Sync,
    Shrink,
    Create,
    Rename,
    Remove,
}

#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn StorageFile>,
    storage: FaultyStorage,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.storage.gate(Op::Write) {
            Ok(()) => self.inner.write_all(buf),
            Err(e) => {
                let is_short = e
                    .get_ref()
                    .and_then(|r| r.downcast_ref::<InjectedFault>())
                    .is_some_and(|f| f.kind == FaultKind::StorageShortWrite);
                if is_short {
                    // A short write leaves a real partial prefix behind —
                    // exactly the garbage the journal's tail repair must
                    // clean up before retrying.
                    let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                }
                Err(e)
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.storage.gate(Op::Sync) {
            Ok(()) => self.inner.sync_data(),
            Err(e) => {
                let lies = e
                    .get_ref()
                    .and_then(|r| r.downcast_ref::<InjectedFault>())
                    .is_some_and(|f| f.kind == FaultKind::StorageFsyncLie);
                if lies {
                    // The firmware said "durable" and did nothing. The
                    // caller cannot tell; only a later crash can.
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.storage.gate(Op::Shrink)?;
        self.inner.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.inner.seek_to(pos)
    }

    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read_chunk(buf)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl StorageBackend for FaultyStorage {
    fn open(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if !self.inner.exists(path) {
            self.gate(Op::Create)?;
        }
        Ok(Box::new(FaultyFile {
            inner: self.inner.open(path)?,
            storage: self.clone(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.gate(Op::Create)?;
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            storage: self.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(Op::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(Op::Remove)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate(Op::Create)?;
        self.inner.create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.inner.is_dir(path)
    }
}

// ---------------------------------------------------------------------------
// Retry policy and escalation.
// ---------------------------------------------------------------------------

/// What a sweep does when the journal's storage gives out entirely
/// (retries and segment rotation exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageEscalation {
    /// Seal the journaled prefix, stop journaling, and finish the sweep in
    /// memory — the fleet verdict becomes storage-degraded but no computed
    /// work is discarded. The default: a crowd campaign should not abort
    /// because a disk filled up.
    Degrade,
    /// Fail the sweep with the storage error. What the crash-consistency
    /// torture harness uses, so an injected crash stops the run promptly.
    Abort,
}

impl StorageEscalation {
    /// Stable name used by `--on-storage-failure`.
    pub fn as_str(self) -> &'static str {
        match self {
            StorageEscalation::Degrade => "degrade",
            StorageEscalation::Abort => "abort",
        }
    }

    /// Inverse of [`StorageEscalation::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "degrade" => Some(StorageEscalation::Degrade),
            "abort" => Some(StorageEscalation::Abort),
            _ => None,
        }
    }
}

impl fmt::Display for StorageEscalation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounded recovery budget for journal appends: how often to retry a
/// transient error, how much *simulated* backoff to book-keep (nothing
/// ever wall-clock sleeps — determinism is sacred), and how many segments
/// rotation may create before the journal gives up.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePolicy {
    /// Transient-error retries per commit before escalating to rotation.
    pub max_retries: u32,
    /// First simulated backoff in seconds; doubles per retry. Recorded in
    /// [`StorageHealth::backoff_sim_s`], never slept.
    pub backoff_start_s: f64,
    /// Maximum journal segments (including the base file). Rotation past
    /// this budget fails the append.
    pub max_segments: u32,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            backoff_start_s: 0.05,
            max_segments: 4,
        }
    }
}

/// What the journal's self-healing machinery actually did — surfaced by
/// `repro sweep` and the chaos tests so silent recovery still leaves an
/// audit trail.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageHealth {
    /// Transient errors retried away.
    pub retries: u64,
    /// Segments rotated to after a poisoned one was quarantined.
    pub rotations: u32,
    /// Total simulated backoff booked while retrying.
    pub backoff_sim_s: f64,
    /// One line per recovery action, in order.
    pub events: Vec<String>,
}

impl StorageHealth {
    /// Whether any recovery action happened at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.rotations == 0
    }
}

// ---------------------------------------------------------------------------
// TempDir — unique per-test temporary directories.
// ---------------------------------------------------------------------------

/// A unique temporary directory, removed (best effort) on drop.
///
/// Test-support: the journal/export suites used to share fixed temp-file
/// paths keyed only by pid and clean up with `remove_file(..).unwrap()`,
/// which flakes under parallel test runs and poisons reruns after a
/// failure. Every [`TempDir`] is unique per process *and* per call, and
/// cleanup is best-effort on drop, so tests cannot cross-contaminate.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir, its name
    /// combining `tag`, the pid, and a process-wide counter.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — in a test, failing
    /// loudly beats writing into a shared location.
    pub fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("pv-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let created = std::fs::create_dir_all(&path);
        assert!(created.is_ok(), "cannot create temp dir {}", path.display());
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_storage_round_trips_and_counts_ops() {
        let m = MemStorage::new();
        let storage = Storage::new(Arc::new(m.clone()));
        let mut f = storage.open(&p("a")).unwrap(); // op 0: create
        f.write_all(b"hello ").unwrap(); // op 1
        f.write_all(b"world").unwrap(); // op 2
        f.sync_data().unwrap(); // op 3
        assert_eq!(m.ops(), 4);
        assert_eq!(storage.read(&p("a")).unwrap(), b"hello world");
        assert_eq!(f.len().unwrap(), 11);
        // Reopen does not tick (file exists) and reads back.
        let mut g = storage.open(&p("a")).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(g.read_chunk(&mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(m.ops(), 4);
    }

    #[test]
    fn unsynced_bytes_die_in_a_clean_crash() {
        let m = MemStorage::new();
        let storage = Storage::new(Arc::new(m.clone()));
        let mut f = storage.open(&p("j")).unwrap();
        f.write_all(b"durable\n").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"pending\n").unwrap(); // never synced
        m.power_cycle(CrashVariant::Clean);
        assert_eq!(m.file_bytes(&p("j")).unwrap(), b"durable\n");
    }

    #[test]
    fn partial_and_torn_crashes_keep_half_the_tail() {
        for variant in [CrashVariant::Partial, CrashVariant::Torn { seed: 7 }] {
            let m = MemStorage::new();
            let storage = Storage::new(Arc::new(m.clone()));
            let mut f = storage.open(&p("j")).unwrap();
            f.write_all(b"base").unwrap();
            f.sync_data().unwrap();
            f.write_all(b"0123456789").unwrap();
            m.power_cycle(variant);
            let bytes = m.file_bytes(&p("j")).unwrap();
            assert_eq!(bytes.len(), 4 + 5, "{variant:?}");
            assert_eq!(&bytes[..4], b"base", "synced prefix untouched");
            if let CrashVariant::Torn { .. } = variant {
                assert_ne!(&bytes[4..], b"01234", "torn tail must be corrupted");
            } else {
                assert_eq!(&bytes[4..], b"01234");
            }
        }
    }

    #[test]
    fn armed_crash_fails_the_chosen_op_and_everything_after() {
        let m = MemStorage::new();
        let storage = Storage::new(Arc::new(m.clone()));
        let mut f = storage.open(&p("j")).unwrap(); // op 0
        f.write_all(b"a").unwrap(); // op 1
        m.arm_crash(2);
        assert!(f.write_all(b"b").is_err()); // op 2 dies
        assert!(f.sync_data().is_err(), "post-crash ops fail too");
        assert!(storage.read(&p("j")).is_err(), "reads fail after the crash");
        m.power_cycle(CrashVariant::Clean);
        assert!(storage.read(&p("j")).is_ok());
    }

    #[test]
    fn faulty_storage_injects_enospc_in_window() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 2.0,
            duration: 2.0,
            kind: FaultKind::StorageEnospc,
            magnitude: 0.0,
        });
        let faulty = FaultyStorage::new(Storage::new(Arc::new(MemStorage::new())), &plan);
        let storage = Storage::new(Arc::new(faulty.clone()));
        let mut f = storage.open(&p("j")).unwrap(); // op 0
        f.write_all(b"ok").unwrap(); // op 1
        let e = f.write_all(b"no").unwrap_err(); // op 2: ENOSPC
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(classify(&e), FaultClass::Persistent);
        // Shrinking truncates pass even while the disk is full (op 3).
        f.set_len(2).unwrap();
        f.write_all(b"again").unwrap(); // op 4: window closed
        assert_eq!(faulty.injected(), 2);
    }

    #[test]
    fn short_write_leaves_a_partial_prefix_and_is_transient() {
        let mem = MemStorage::new();
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 1.0,
            duration: 1.0,
            kind: FaultKind::StorageShortWrite,
            magnitude: 0.0,
        });
        let faulty = FaultyStorage::new(Storage::new(Arc::new(mem.clone())), &plan);
        let storage = Storage::new(Arc::new(faulty));
        let mut f = storage.open(&p("j")).unwrap(); // op 0
        let e = f.write_all(b"0123456789").unwrap_err(); // op 1
        assert_eq!(classify(&e), FaultClass::Transient);
        assert_eq!(mem.file_bytes(&p("j")).unwrap(), b"01234");
    }

    #[test]
    fn fsync_lie_reports_success_without_syncing() {
        let mem = MemStorage::new();
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 2.0,
            duration: 1.0,
            kind: FaultKind::StorageFsyncLie,
            magnitude: 0.0,
        });
        let faulty = FaultyStorage::new(Storage::new(Arc::new(mem.clone())), &plan);
        let storage = Storage::new(Arc::new(faulty));
        let mut f = storage.open(&p("j")).unwrap(); // op 0
        f.write_all(b"data").unwrap(); // op 1
        f.sync_data().unwrap(); // op 2: the lie
        assert_eq!(mem.durable_bytes(&p("j")).unwrap(), b"");
        mem.power_cycle(CrashVariant::Clean);
        assert_eq!(mem.file_bytes(&p("j")).unwrap(), b"");
    }

    #[test]
    fn persistent_eio_never_clears() {
        let plan = FaultPlan::empty().with_event(FaultEvent {
            at: 1.0,
            duration: 1.0, // window length is ignored for persistent EIO
            kind: FaultKind::StorageEioPersistent,
            magnitude: 0.0,
        });
        let faulty = FaultyStorage::new(Storage::new(Arc::new(MemStorage::new())), &plan);
        let storage = Storage::new(Arc::new(faulty));
        let mut f = storage.open(&p("j")).unwrap(); // op 0
        for _ in 0..5 {
            let e = f.write_all(b"x").unwrap_err();
            assert_eq!(classify(&e), FaultClass::Persistent);
        }
    }

    #[test]
    fn classify_handles_real_errors() {
        assert_eq!(
            classify(&io::Error::from(io::ErrorKind::Interrupted)),
            FaultClass::Transient
        );
        assert_eq!(classify(&io::Error::other("boom")), FaultClass::Persistent);
    }

    #[test]
    fn escalation_names_round_trip() {
        for esc in [StorageEscalation::Degrade, StorageEscalation::Abort] {
            assert_eq!(StorageEscalation::parse(esc.as_str()), Some(esc));
            assert_eq!(format!("{esc}"), esc.as_str());
        }
        assert_eq!(StorageEscalation::parse("nope"), None);
    }

    #[test]
    fn temp_dirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("storage-test");
        let b = TempDir::new("storage-test");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.file("x"), "1").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().exists());
    }
}
