//! Batched lockstep fleet stepping — the sweep-level driver over
//! [`pv_soc::batch::DeviceBatch`] (DESIGN.md §15).
//!
//! A sweep chunk's devices all run the *same* protocol, so their sessions
//! are the same sequence of `(dt, demand, mode)` rounds — ideal lockstep
//! work. This module drives a chunk's **batch-admissible** devices through
//! one session in lockstep, hoisting the thermal integration of every lane
//! into a single shared-propagator mat-mat per round, while producing
//! [`Session`]s bit-identical to the scalar supervised path.
//!
//! # Admissibility
//!
//! The scalar path wraps every device in fault gates, a fault-clocked
//! meter, a watchdog, and `catch_unwind` isolation. All of that machinery
//! is a **bit-identical pass-through** when nothing can ever fire, which
//! is decidable up front from the sweep config alone. A device is
//! batch-admissible iff:
//!
//! * its regenerated per-device [`FaultPlan`] is empty, and no session
//!   chaos targets its index (nothing can fire ⇒ fault gates, retry,
//!   panic isolation are pass-throughs, and `fault_reports == 0`);
//! * the protocol does not record traces (lockstep lanes share one report
//!   scratch, not per-step trace buffers);
//! * the supervision policy uses the default watchdog budgets (the
//!   implicit sim budget is the fault horizon, which a clean session
//!   cannot approach, and there is no wall-clock limit — so the watchdog
//!   is also a pass-through).
//!
//! Inadmissible devices run the untouched scalar
//! [`supervise_device`] path inside the same chunk task. Faulted,
//! chaos-panicked, and chaos-stalled devices therefore resolve exactly as
//! before — per-device, with per-attempt isolation — and the journal,
//! report, and database bytes cannot depend on the batch width.
//!
//! # Eviction
//!
//! If a lockstep lane fails anyway (a step error, a meter error, or the
//! conservative watchdog-budget check), the lane is **evicted**: its
//! partial state is discarded and the pristine original device re-runs
//! through the scalar supervised path, which reproduces the failure — and
//! its exact bytes — by definition. The batch path therefore only ever
//! has to be bit-identical for clean completed sessions; everything else
//! is delegated to the reference implementation. A spurious eviction
//! costs time, never correctness.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::crowd::{run_from_session, supervise_device, DeviceRun, SweepConfig, SweepOutcome};
use crate::harness::{judge_session, QualityGates};
use crate::protocol::Protocol;
use crate::session::{Event, Iteration, Session};
use pv_faults::FaultPlan;
use pv_power::EnergyMeter;
use pv_soc::batch::{BatchReport, DeviceBatch};
use pv_soc::device::{CpuDemand, Device};
use pv_soc::trace::Trace;
use pv_units::{Celsius, MegaHertz, Seconds};
use pv_workload::WorkloadSpec;
use std::collections::BTreeMap;

/// Whether device `index` may run in a lockstep batch — see the
/// [module docs](self) for why each condition makes the scalar path's
/// resilience machinery a pass-through.
pub(crate) fn batch_admissible(cfg: &SweepConfig, index: usize, fleet: usize) -> bool {
    if cfg.protocol.record_trace {
        return false;
    }
    if cfg.supervision.max_sim_seconds.is_some() || cfg.supervision.max_wall_seconds.is_some() {
        return false;
    }
    if let Some(chaos) = &cfg.chaos {
        if !chaos.events_for(index, fleet).is_empty() {
            return false;
        }
    }
    if let Some(seed) = cfg.fault_seed {
        let plan = FaultPlan::generate(
            seed.wrapping_add(index as u64),
            cfg.fault_horizon(),
            cfg.fault_mean_interval.value(),
            &cfg.fault_kinds,
        );
        if !plan.events.is_empty() {
            return false;
        }
    }
    true
}

/// Runs one chunk of a batched sweep: replays restored outcomes, runs
/// inadmissible devices through the scalar [`supervise_device`] path, and
/// steps the admissible remainder in lockstep (with eviction back to the
/// scalar path on any anomaly). Returns one [`DeviceRun`] per chunk entry,
/// in chunk order, each bit-identical to what the scalar path produces.
pub(crate) fn supervise_chunk(
    cfg: &SweepConfig,
    fleet: usize,
    chunk: Vec<(usize, Device)>,
    restored: &BTreeMap<usize, (SweepOutcome, Option<f64>, Option<f64>)>,
) -> Vec<DeviceRun> {
    let mut results: Vec<Option<DeviceRun>> = (0..chunk.len()).map(|_| None).collect();
    // (chunk slot, fleet index, pristine device) per lockstep lane.
    let mut lane_slots: Vec<(usize, usize, Device)> = Vec::new();
    let mut lanes: Vec<Device> = Vec::new();
    for (slot, (index, device)) in chunk.into_iter().enumerate() {
        if let Some((outcome, score, rsd)) = restored.get(&index) {
            results[slot] = Some(DeviceRun {
                outcome: outcome.clone(),
                score: *score,
                rsd: *rsd,
                fresh: false,
                failures: Vec::new(),
            });
        } else if batch_admissible(cfg, index, fleet) {
            lane_slots.push((slot, index, device.clone()));
            lanes.push(device);
        } else {
            results[slot] = Some(supervise_device(cfg, index, fleet, &device));
        }
    }

    if !lanes.is_empty() {
        let sessions = run_cohort(cfg, lanes);
        for ((slot, index, pristine), session) in lane_slots.into_iter().zip(sessions) {
            results[slot] = Some(match session {
                // Admitted lanes succeed on their first attempt with zero
                // fault reports — exactly the scalar path's clean case.
                Some(session) => {
                    run_from_session(pristine.label().to_owned(), session, 0, 1, Vec::new())
                }
                // Evicted: the pristine original re-runs the reference
                // path, which reproduces whatever went wrong bit-for-bit.
                None => supervise_device(cfg, index, fleet, &pristine),
            });
        }
    }

    results
        .into_iter()
        .map(|r| match r {
            Some(run) => run,
            // Unreachable: every slot is filled above. Synthesize a
            // defensive eviction-equivalent rather than panicking a chunk.
            None => DeviceRun {
                outcome: SweepOutcome {
                    device: String::new(),
                    verdict: None,
                    accepted: false,
                    quarantined: 0,
                    fault_reports: 0,
                    error: Some("batch slot left unfilled".into()),
                    status: crate::supervise::DeviceStatus::Failed,
                    attempts: 1,
                },
                score: None,
                rsd: None,
                fresh: true,
                failures: Vec::new(),
            },
        })
        .collect()
}

/// Per-lane per-iteration accumulator scratch, allocated once per cohort
/// and reused across rounds and iterations (the steady-state step loop
/// allocates nothing).
struct LaneScratch {
    t: Seconds,
    meter: EnergyMeter,
    work_cycles: f64,
    temp_weighted: f64,
    freq_weighted: Vec<f64>,
    throttled_time: f64,
    workload_time: f64,
    band_time: f64,
    timed_out: bool,
    cooldown_duration: Seconds,
    events: Vec<(Seconds, Event)>,
    /// Cumulative simulated seconds across the whole session — the mirror
    /// of the scalar watchdog's charge counter.
    sim_spent: f64,
}

impl LaneScratch {
    fn new() -> Self {
        Self {
            t: Seconds::ZERO,
            meter: EnergyMeter::new(),
            work_cycles: 0.0,
            temp_weighted: 0.0,
            freq_weighted: Vec::new(),
            throttled_time: 0.0,
            workload_time: 0.0,
            band_time: 0.0,
            timed_out: true,
            cooldown_duration: Seconds::ZERO,
            events: Vec::new(),
            sim_spent: 0.0,
        }
    }
}

/// Drives `lanes` through one full session in lockstep. Returns, per lane,
/// `Some(session)` bit-identical to the scalar supervised run, or `None`
/// when the lane was evicted (any step/meter/budget anomaly) and must be
/// re-run through the scalar path.
fn run_cohort(cfg: &SweepConfig, lanes: Vec<Device>) -> Vec<Option<Session>> {
    let width = lanes.len();
    let protocol: &Protocol = &cfg.protocol;
    let ambient: Celsius = cfg.ambient;
    let gates = QualityGates::default();
    let workload_spec = WorkloadSpec::pi_digits_default();
    let sim_budget = cfg.sim_budget();
    let labels: Vec<String> = lanes.iter().map(|d| d.label().to_owned()).collect();

    let mut batch = DeviceBatch::new(lanes);
    let mut reports = BatchReport::new(width);
    let mut failures = Vec::new();
    let mut live = vec![true; width];
    let mut active = vec![false; width];
    let mut scratch: Vec<LaneScratch> = (0..width).map(|_| LaneScratch::new()).collect();
    let mut runs: Vec<Vec<Iteration>> = (0..width)
        .map(|_| Vec::with_capacity(cfg.iterations))
        .collect();

    // The ambient is a fixed boundary temperature for the whole session;
    // re-pinning it every step (as the scalar coupled step does) is
    // idempotent, so once per lane up front is bit-equivalent.
    for (lane, alive) in live.iter_mut().enumerate().take(width) {
        if batch.lane_mut(lane).set_ambient(ambient).is_err() {
            *alive = false;
        }
    }

    // One lockstep round: evict lanes whose watchdog budget would trip,
    // step the rest, evict lanes that failed the step.
    macro_rules! step_round {
        ($dt:expr, $demand:expr) => {{
            let dt: Seconds = $dt;
            for lane in 0..width {
                if active[lane] && scratch[lane].sim_spent + dt.value() > sim_budget {
                    live[lane] = false;
                    active[lane] = false;
                }
            }
            batch.step_active(dt, $demand, protocol.mode, &active, &mut reports, &mut failures);
            for &(lane, _) in failures.iter() {
                live[lane] = false;
                active[lane] = false;
            }
            for lane in 0..width {
                if active[lane] {
                    scratch[lane].sim_spent += dt.value();
                }
            }
        }};
    }

    for _ in 0..cfg.iterations {
        if !live.iter().any(|&l| l) {
            break;
        }
        // Per-iteration reset, mirroring the scalar `run_iteration` prologue.
        for lane in 0..width {
            if !live[lane] {
                continue;
            }
            batch.lane_mut(lane).set_integrator(protocol.integrator);
            let s = &mut scratch[lane];
            s.t = Seconds::ZERO;
            s.events = Vec::new();
            s.events.push((s.t, Event::WakelockAcquired));
        }

        // --- Warmup: all live lanes busy, identical dt sequence. ---
        let mut remaining = protocol.warmup.value();
        while remaining > 0.0 {
            let dt = Seconds(remaining.min(protocol.busy_dt.value()));
            active.copy_from_slice(&live);
            step_round!(dt, CpuDemand::busy());
            for lane in 0..width {
                if active[lane] {
                    scratch[lane].t += dt;
                }
            }
            remaining -= dt.value();
        }

        // --- Cooldown: shared poll schedule, per-lane break-out. ---
        for lane in 0..width {
            if live[lane] {
                let s = &mut scratch[lane];
                s.events.push((s.t, Event::WakelockReleased));
                s.timed_out = true;
            }
        }
        let mut cooling = live.clone();
        let mut elapsed = 0.0f64;
        let mut since_poll = f64::INFINITY; // poll immediately
        let target = protocol.cooldown_target.resolve(ambient);
        let dt_cd = Seconds(
            protocol
                .idle_dt
                .value()
                .min(protocol.cooldown_poll.value()),
        );
        while elapsed < protocol.cooldown_timeout.value() {
            if since_poll >= protocol.cooldown_poll.value() {
                since_poll = 0.0;
                for lane in 0..width {
                    if !(cooling[lane] && live[lane]) {
                        continue;
                    }
                    let reading = batch.lane_mut(lane).read_sensor();
                    let s = &mut scratch[lane];
                    s.events.push((s.t, Event::CooldownPoll(reading)));
                    if reading < target {
                        s.timed_out = false;
                        s.cooldown_duration = Seconds(elapsed);
                        cooling[lane] = false;
                    }
                }
                if !cooling.iter().zip(&live).any(|(&c, &l)| c && l) {
                    break;
                }
            }
            for lane in 0..width {
                active[lane] = cooling[lane] && live[lane];
            }
            step_round!(dt_cd, CpuDemand::Idle);
            for lane in 0..width {
                if active[lane] {
                    scratch[lane].t += dt_cd;
                } else if cooling[lane] && !live[lane] {
                    cooling[lane] = false; // evicted mid-cooldown
                }
            }
            elapsed += dt_cd.value();
            since_poll += dt_cd.value();
        }
        let timeout_armed = protocol.cooldown_timeout.value() > 0.0;
        for lane in 0..width {
            if !live[lane] {
                continue;
            }
            let s = &mut scratch[lane];
            if cooling[lane] {
                s.cooldown_duration = Seconds(elapsed);
            }
            s.events.push((
                s.t,
                if s.timed_out && timeout_armed {
                    Event::CooldownTimedOut
                } else {
                    Event::WorkloadStarted
                },
            ));
        }

        // --- Workload: metered lockstep window. ---
        for lane in 0..width {
            if live[lane] {
                let s = &mut scratch[lane];
                s.meter = EnergyMeter::new();
                s.work_cycles = 0.0;
                s.temp_weighted = 0.0;
                s.freq_weighted.clear();
                s.throttled_time = 0.0;
                s.workload_time = 0.0;
                s.band_time = 0.0;
            }
        }
        let mut remaining = protocol.workload.value();
        while remaining > 0.0 {
            let dt = Seconds(remaining.min(protocol.busy_dt.value()));
            active.copy_from_slice(&live);
            step_round!(dt, CpuDemand::busy());
            for lane in 0..width {
                if !active[lane] {
                    continue;
                }
                let rep = reports.lane(lane);
                let s = &mut scratch[lane];
                s.t += dt;
                if s.meter.record(rep.supply_power, dt).is_err() {
                    live[lane] = false;
                    continue;
                }
                s.work_cycles += rep.work_cycles;
                s.temp_weighted += rep.die_temp.value() * dt.value();
                if s.freq_weighted.is_empty() {
                    s.freq_weighted.resize(rep.cluster_freqs.len(), 0.0);
                }
                for (acc, f) in s.freq_weighted.iter_mut().zip(&rep.cluster_freqs) {
                    *acc += f.value() * dt.value();
                }
                s.workload_time += dt.value();
                if rep.throttled {
                    s.throttled_time += dt.value();
                }
                // An idealised fixed ambient is always inside its band.
                s.band_time += dt.value();
            }
            remaining -= dt.value();
        }

        for lane in 0..width {
            if !live[lane] {
                continue;
            }
            let peak_temp = batch.lane(lane).die_temp();
            let s = &mut scratch[lane];
            s.events.push((s.t, Event::WorkloadEnded));
            let workload_secs = s.workload_time.max(f64::MIN_POSITIVE);
            runs[lane].push(Iteration {
                iterations_completed: s.work_cycles / workload_spec.cycles_per_iteration(),
                energy: s.meter.energy(),
                cooldown_duration: s.cooldown_duration,
                cooldown_timed_out: s.timed_out && timeout_armed,
                workload_mean_freqs: s
                    .freq_weighted
                    .iter()
                    .map(|w| MegaHertz(w / workload_secs))
                    .collect(),
                workload_mean_temp: Celsius(s.temp_weighted / workload_secs),
                // No trace is recorded, so the peak falls back to the die
                // temperature at iteration end — as the scalar path does.
                peak_temp,
                throttled_fraction: s.throttled_time / workload_secs,
                band_occupancy: s.band_time / workload_secs,
                full_trace: Trace::new(),
                workload_trace: Trace::new(),
                events: std::mem::take(&mut s.events),
            });
        }
    }

    (0..width)
        .map(|lane| {
            if !live[lane] {
                return None;
            }
            let iterations = std::mem::take(&mut runs[lane]);
            let verdict = judge_session(&gates, &iterations, &[], cfg.iterations);
            Some(Session {
                device_label: labels[lane].clone(),
                iterations,
                quarantined: Vec::new(),
                verdict,
            })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::harness::{Ambient, Harness};
    use crate::supervise::{SessionChaos, SupervisionPolicy};
    use pv_faults::ALL_KINDS;
    use pv_soc::catalog;
    use pv_thermal::network::Integrator;

    fn fleet(n: usize) -> Vec<Device> {
        (0..n)
            .map(|i| {
                let grade = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
                catalog::pixel(grade, format!("pixel-core-batch-{i:03}")).unwrap()
            })
            .collect()
    }

    fn quick_cfg() -> SweepConfig {
        SweepConfig::clean(
            Protocol::unconstrained()
                .with_warmup(Seconds(20.0))
                .with_workload(Seconds(30.0))
                .with_integrator(Integrator::Exponential),
            2,
        )
    }

    /// The core bit-identity claim at the session level: a lockstep cohort
    /// produces `Session`s equal (PartialEq covers every f64) to scalar
    /// `Harness::run_session` runs of the same devices.
    #[test]
    fn cohort_sessions_match_scalar_harness_bitwise() {
        let cfg = quick_cfg();
        for width in [1usize, 3, 8] {
            let sessions = run_cohort(&cfg, fleet(width));
            for (i, session) in sessions.into_iter().enumerate() {
                let session = session.expect("clean lanes never evict");
                let mut device = fleet(width).remove(i);
                let mut harness =
                    Harness::new(cfg.protocol, Ambient::Fixed(cfg.ambient)).unwrap();
                let scalar = harness.run_session(&mut device, cfg.iterations).unwrap();
                assert_eq!(session, scalar, "lane {i} of width {width}");
            }
        }
    }

    #[test]
    fn admissibility_follows_the_config() {
        let clean = quick_cfg();
        assert!(batch_admissible(&clean, 0, 10));
        assert!(batch_admissible(&clean, 9, 10));

        let mut traced = quick_cfg();
        traced.protocol = traced.protocol.with_trace();
        assert!(!batch_admissible(&traced, 0, 10));

        let budgeted = quick_cfg().with_supervision(SupervisionPolicy {
            max_sim_seconds: Some(1e9),
            ..SupervisionPolicy::default()
        });
        assert!(!batch_admissible(&budgeted, 0, 10));

        // Chaos only blocks the targeted devices.
        let chaos = quick_cfg().with_chaos(SessionChaos::new(7, 1, 0));
        let fleet = 10;
        let blocked: Vec<usize> = (0..fleet)
            .filter(|&i| !batch_admissible(&chaos, i, fleet))
            .collect();
        assert_eq!(blocked.len(), 1, "exactly the panicked device: {blocked:?}");

        // A dense fault plan blocks nearly every device; admissibility must
        // agree exactly with the generated plan.
        let faulted = quick_cfg().with_faults(0xC0FFEE, Seconds(60.0), ALL_KINDS.to_vec());
        for i in 0..fleet {
            let plan = FaultPlan::generate(
                0xC0FFEEu64.wrapping_add(i as u64),
                faulted.fault_horizon(),
                60.0,
                &ALL_KINDS,
            );
            assert_eq!(
                batch_admissible(&faulted, i, fleet),
                plan.events.is_empty(),
                "device {i}"
            );
        }
    }

    /// A chunk mixing admissible and inadmissible devices produces, per
    /// device, the same `DeviceRun` outcome as the scalar path.
    #[test]
    fn mixed_chunk_matches_scalar_supervision() {
        let cfg = quick_cfg().with_chaos(SessionChaos::new(3, 1, 0).striking_at(30.0));
        let devices = fleet(6);
        let chunk: Vec<(usize, Device)> = devices.iter().cloned().enumerate().collect();
        let batched = supervise_chunk(&cfg, 6, chunk, &BTreeMap::new());
        for (i, device) in devices.iter().enumerate() {
            let scalar = supervise_device(&cfg, i, 6, device);
            assert_eq!(batched[i].outcome, scalar.outcome, "device {i}");
            assert_eq!(batched[i].score, scalar.score, "device {i}");
            assert_eq!(batched[i].rsd, scalar.rsd, "device {i}");
        }
    }
}
