//! Results of ACCUBENCH iterations and sessions.

use crate::BenchError;
use core::fmt;
use pv_soc::trace::Trace;
use pv_stats::Summary;
use pv_units::{Celsius, Joules, MegaHertz, Seconds};

/// A protocol event, as the paper's app logs them (Fig 4 annotates the
/// timeline with exactly these transitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Wakelock acquired; warmup begins.
    WakelockAcquired,
    /// Warmup finished; wakelock released; device enters sleep.
    WakelockReleased,
    /// A cooldown wakeup polled the sensor and read this temperature.
    CooldownPoll(Celsius),
    /// A cooldown wakeup tried to poll the sensor but got no reading
    /// (transient probe dropout); the loop keeps waiting.
    CooldownPollMissed,
    /// Cooldown target reached; workload begins.
    WorkloadStarted,
    /// Cooldown gave up; workload begins warm.
    CooldownTimedOut,
    /// Workload window complete.
    WorkloadEnded,
}

impl pv_json::ToJson for Event {
    /// Unit variants render as their name, `CooldownPoll` as a
    /// single-entry object tagging the polled temperature.
    fn to_json(&self) -> pv_json::Json {
        match self {
            Event::CooldownPoll(t) => {
                let mut obj = pv_json::Json::object();
                obj.insert("CooldownPoll", pv_json::ToJson::to_json(t));
                obj
            }
            other => pv_json::Json::String(format!("{other:?}")),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::WakelockAcquired => write!(f, "wakelock acquired, warmup start"),
            Event::WakelockReleased => write!(f, "wakelock released, cooldown start"),
            Event::CooldownPoll(t) => write!(f, "cooldown poll: {t:.1}"),
            Event::CooldownPollMissed => write!(f, "cooldown poll missed (sensor dropout)"),
            Event::WorkloadStarted => write!(f, "workload start"),
            Event::CooldownTimedOut => write!(f, "cooldown timed out"),
            Event::WorkloadEnded => write!(f, "workload end"),
        }
    }
}

/// Result of one ACCUBENCH iteration (warmup → cooldown → workload).
#[derive(Debug, Clone, PartialEq)]
pub struct Iteration {
    /// π-loop iterations completed during the workload window — the paper's
    /// performance metric.
    pub iterations_completed: f64,
    /// Energy drawn from the supply during the workload window only.
    pub energy: Joules,
    /// How long the cooldown phase took.
    pub cooldown_duration: Seconds,
    /// Whether cooldown gave up before reaching the target (the workload
    /// then started warm; the paper would discard such iterations).
    pub cooldown_timed_out: bool,
    /// Time-weighted mean frequency of each cluster during the workload.
    pub workload_mean_freqs: Vec<MegaHertz>,
    /// Time-weighted mean die temperature during the workload.
    pub workload_mean_temp: Celsius,
    /// Peak die temperature over the whole iteration.
    pub peak_temp: Celsius,
    /// Fraction of workload time any throttle was engaged.
    pub throttled_fraction: f64,
    /// Fraction of workload time the ambient was inside its acceptance band
    /// (1.0 under an idealised fixed ambient). The paper's methodology is
    /// only valid while the chamber holds its band; quality gates reject
    /// iterations measured during excursions.
    pub band_occupancy: f64,
    /// Full per-step trace of the whole iteration (empty unless the protocol
    /// enabled tracing).
    pub full_trace: Trace,
    /// Trace restricted to the workload phase (empty unless tracing).
    pub workload_trace: Trace,
    /// Protocol events with their timestamps (wakelock transitions,
    /// cooldown polls, phase boundaries) — the annotations of Fig 4.
    pub events: Vec<(Seconds, Event)>,
}

impl Iteration {
    /// Iterations per joule — the efficiency metric of Fig 13.
    pub fn efficiency(&self) -> f64 {
        if self.energy.value() > 0.0 {
            self.iterations_completed / self.energy.value()
        } else {
            0.0
        }
    }
}

impl fmt::Display for Iteration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} iters, {:.1}, cooldown {:.0}{}",
            self.iterations_completed,
            self.energy,
            self.cooldown_duration,
            if self.cooldown_timed_out {
                " (timed out)"
            } else {
                ""
            }
        )
    }
}

/// How much a finished session can be trusted.
///
/// Produced by the harness's quality gates: a session that lost iterations
/// to faults, timed out a cooldown, measured through a chamber excursion,
/// or spread beyond the RSD ceiling is flagged rather than silently mixed
/// into clean data — the paper's "strict filters" applied at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Every requested iteration completed cleanly and all gates passed.
    #[default]
    Valid,
    /// Usable but impaired: some iterations were quarantined, a cooldown
    /// timed out, the chamber left its band, or the spread exceeds the RSD
    /// ceiling. Downstream consumers should weigh it accordingly.
    Degraded,
    /// Too few valid iterations survived to trust any summary statistic.
    Invalid,
}

impl Verdict {
    /// Stable lowercase name (used in JSON and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Valid => "valid",
            Verdict::Degraded => "degraded",
            Verdict::Invalid => "invalid",
        }
    }

    /// Inverse of [`Verdict::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        [Verdict::Valid, Verdict::Degraded, Verdict::Invalid]
            .into_iter()
            .find(|v| v.as_str() == s)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl pv_json::ToJson for Verdict {
    fn to_json(&self) -> pv_json::Json {
        pv_json::Json::String(self.as_str().to_owned())
    }
}

impl pv_json::FromJson for Verdict {
    fn from_json(value: &pv_json::Json) -> Option<Self> {
        Verdict::parse(value.as_str()?)
    }
}

/// Record of an iteration slot that was abandoned after exhausting its
/// retry budget. Quarantined slots never contribute to session summaries —
/// they are kept only so reports can account for every requested iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedIteration {
    /// Zero-based index of the iteration slot that was abandoned.
    pub index: usize,
    /// How many attempts were made before giving up.
    pub attempts: u32,
    /// Human-readable description of the last failure.
    pub reason: String,
}

impl fmt::Display for QuarantinedIteration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} quarantined after {} attempts: {}",
            self.index, self.attempts, self.reason
        )
    }
}

/// A back-to-back sequence of iterations on one device (the paper ran 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Label of the device measured.
    pub device_label: String,
    /// The iterations that completed, in run order. Quarantined slots are
    /// *not* here — summaries never see them.
    pub iterations: Vec<Iteration>,
    /// Iteration slots abandoned after exhausting their retry budget.
    pub quarantined: Vec<QuarantinedIteration>,
    /// The quality-gate verdict for the whole session.
    pub verdict: Verdict,
}

// Sessions are produced on worker threads during parallel fleet sweeps and
// handed to the merge thread; keep them (and what they contain) `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<Iteration>();
    assert_send::<Verdict>();
};

impl Session {
    /// Summary statistics of the performance metric across iterations.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Stats`] for an empty session.
    pub fn performance_summary(&self) -> Result<Summary, BenchError> {
        Ok(Summary::from_iter(
            self.iterations.iter().map(|i| i.iterations_completed),
        )?)
    }

    /// Summary statistics of workload energy across iterations.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Stats`] for an empty session.
    pub fn energy_summary(&self) -> Result<Summary, BenchError> {
        Ok(Summary::from_iter(
            self.iterations.iter().map(|i| i.energy.value()),
        )?)
    }

    /// Mean efficiency (iterations per joule) across iterations.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Stats`] for an empty session.
    pub fn efficiency_summary(&self) -> Result<Summary, BenchError> {
        Ok(Summary::from_iter(
            self.iterations.iter().map(Iteration::efficiency),
        )?)
    }

    /// Whether any iteration started its workload warm.
    pub fn any_cooldown_timed_out(&self) -> bool {
        self.iterations.iter().any(|i| i.cooldown_timed_out)
    }

    /// Iteration slots that were requested but abandoned to faults.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

impl fmt::Display for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session [{}]: {} iterations, {}",
            self.device_label,
            self.iterations.len(),
            self.verdict
        )?;
        for (i, it) in self.iterations.iter().enumerate() {
            writeln!(f, "  #{i}: {it}")?;
        }
        for q in &self.quarantined {
            writeln!(f, "  {q}")?;
        }
        Ok(())
    }
}

pv_json::impl_to_json!(Iteration {
    iterations_completed,
    energy,
    cooldown_duration,
    cooldown_timed_out,
    workload_mean_freqs,
    workload_mean_temp,
    peak_temp,
    throttled_fraction,
    band_occupancy,
    full_trace,
    workload_trace,
    events
});
pv_json::impl_to_json!(QuarantinedIteration {
    index,
    attempts,
    reason
});
pv_json::impl_to_json!(Session {
    device_label,
    iterations,
    quarantined,
    verdict
});

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration(perf: f64, energy: f64) -> Iteration {
        Iteration {
            iterations_completed: perf,
            energy: Joules(energy),
            cooldown_duration: Seconds(120.0),
            cooldown_timed_out: false,
            workload_mean_freqs: vec![MegaHertz(2000.0)],
            workload_mean_temp: Celsius(60.0),
            peak_temp: Celsius(78.0),
            throttled_fraction: 0.4,
            band_occupancy: 1.0,
            full_trace: Trace::new(),
            workload_trace: Trace::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn efficiency_is_iters_per_joule() {
        let it = iteration(1200.0, 600.0);
        assert!((it.efficiency() - 2.0).abs() < 1e-12);
        let broken = iteration(1200.0, 0.0);
        assert_eq!(broken.efficiency(), 0.0);
    }

    #[test]
    fn session_summaries() {
        let s = Session {
            device_label: "bin-0".into(),
            iterations: vec![
                iteration(1000.0, 500.0),
                iteration(1010.0, 505.0),
                iteration(990.0, 495.0),
            ],
            quarantined: Vec::new(),
            verdict: Verdict::Valid,
        };
        let perf = s.performance_summary().unwrap();
        assert!((perf.mean() - 1000.0).abs() < 1e-9);
        assert!(perf.rsd_percent() < 2.0);
        let energy = s.energy_summary().unwrap();
        assert!((energy.mean() - 500.0).abs() < 1e-9);
        let eff = s.efficiency_summary().unwrap();
        assert!((eff.mean() - 2.0).abs() < 1e-9);
        assert!(!s.any_cooldown_timed_out());
    }

    #[test]
    fn empty_session_summaries_error() {
        let s = Session {
            device_label: "x".into(),
            iterations: vec![],
            quarantined: Vec::new(),
            verdict: Verdict::Invalid,
        };
        assert!(s.performance_summary().is_err());
        assert!(s.energy_summary().is_err());
        assert!(s.efficiency_summary().is_err());
    }

    #[test]
    fn timed_out_flag_propagates() {
        let mut it = iteration(1.0, 1.0);
        it.cooldown_timed_out = true;
        let s = Session {
            device_label: "x".into(),
            iterations: vec![it],
            quarantined: Vec::new(),
            verdict: Verdict::Degraded,
        };
        assert!(s.any_cooldown_timed_out());
        assert!(format!("{s}").contains("timed out"));
    }

    #[test]
    fn events_render() {
        assert!(format!("{}", Event::WakelockAcquired).contains("warmup"));
        assert!(format!("{}", Event::CooldownPoll(Celsius(31.0))).contains("31.0"));
        assert!(format!("{}", Event::WorkloadEnded).contains("end"));
    }

    #[test]
    fn displays_are_informative() {
        let it = iteration(42.0, 10.0);
        assert!(format!("{it}").contains("42.0 iters"));
        let s = Session {
            device_label: "bin-3".into(),
            iterations: vec![it],
            quarantined: Vec::new(),
            verdict: Verdict::Valid,
        };
        assert!(format!("{s}").contains("bin-3"));
        assert!(format!("{s}").contains("valid"));
    }

    #[test]
    fn verdict_names_and_json() {
        use pv_json::{FromJson, ToJson};
        assert_eq!(Verdict::Valid.as_str(), "valid");
        assert_eq!(Verdict::Degraded.as_str(), "degraded");
        assert_eq!(Verdict::Invalid.as_str(), "invalid");
        assert_eq!(Verdict::default(), Verdict::Valid);
        assert_eq!(
            Verdict::Degraded.to_json().to_string_compact(),
            "\"degraded\""
        );
        for v in [Verdict::Valid, Verdict::Degraded, Verdict::Invalid] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
            assert_eq!(Verdict::from_json(&v.to_json()), Some(v));
        }
        assert_eq!(Verdict::parse("bogus"), None);
    }

    #[test]
    fn quarantined_slots_render_and_serialize() {
        use pv_json::ToJson;
        let q = QuarantinedIteration {
            index: 2,
            attempts: 3,
            reason: "chamber: controller stalled".into(),
        };
        assert!(format!("{q}").contains("#2"));
        assert!(format!("{q}").contains("3 attempts"));
        let s = Session {
            device_label: "x".into(),
            iterations: vec![iteration(10.0, 5.0)],
            quarantined: vec![q],
            verdict: Verdict::Degraded,
        };
        assert_eq!(s.quarantined_count(), 1);
        let json = s.to_json().to_string_compact();
        assert!(json.contains("\"quarantined\""));
        assert!(json.contains("\"verdict\":\"degraded\""));
        assert!(format!("{s}").contains("quarantined after"));
    }
}
